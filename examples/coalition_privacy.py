#!/usr/bin/env python3
"""What attackers of increasing power learn from PAG (sections III, VII-E).

Three perspectives on the same session:

1. the **global passive observer** — a full wiretap that sees every
   message: it reconstructs the communication graph but no content;
2. **coalitions** of corrupted nodes of growing size — the Fig. 10
   experiment on a concrete topology, next to the closed-form curves;
3. the comparison with **AcTinG**, whose audited logs leak everything
   once a small fraction of the membership is corrupted.

Run:
    python examples/coalition_privacy.py
"""

from repro.adversary.coalition import Coalition
from repro.adversary.observer import GlobalObserver
from repro.analysis.privacy import (
    acting_discovery_probability,
    pag_discovery_probability,
    theoretical_minimum,
)
from repro.core import PagSession
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.rng import SeedSequence


def observer_demo() -> None:
    print("--- The global passive observer (wiretap on every link) ---")
    session = PagSession.create(20)
    observer = GlobalObserver()
    session.simulator.network.add_tap(observer)
    session.run(8)

    graph = observer.communication_graph()
    print(f"  sees {len(observer.trace)} messages on {len(graph)} links")
    print(f"  message kinds: {dict(observer.message_kind_histogram())}")
    serving = observer.serving_relations(4)
    print(f"  infers {len(serving)} serving relations in round 4")
    print(
        "  but every Serve body is encrypted and every verification "
        "artefact is a hash under link-private primes:"
    )
    print(
        f"  plaintext traffic kinds: "
        f"{sorted(observer.visible_plaintext_fields())}"
    )
    print(
        f"  accusation-path exposures (failure path): "
        f"{len(observer.accusation_exposures())}"
    )


def coalition_demo() -> None:
    print("\n--- Coalitions of corrupted nodes (Fig. 10) ---")
    n = 300
    views = ViewProvider(
        directory=Directory.of_size(n),
        seeds=SeedSequence(11),
        fanout=3,
        monitors_per_node=3,
    )
    rng = SeedSequence(13).stream("pick")
    print(
        f"  {'attackers':>9}  {'PAG measured':>12}  {'PAG model':>9}  "
        f"{'AcTinG model':>12}  {'theoretical min':>15}"
    )
    for percent in (5, 10, 20, 40, 60):
        c = percent / 100.0
        members = set(
            rng.sample(list(views.directory.consumers()), int(n * c))
        )
        coalition = Coalition(members=members)
        rate, _, _ = coalition.discovery_rate(views, rounds=[1, 2])
        print(
            f"  {percent:>8}%  {rate:>11.1%}  "
            f"{pag_discovery_probability(c, 3):>9.1%}  "
            f"{acting_discovery_probability(c):>12.1%}  "
            f"{theoretical_minimum(c):>15.1%}"
        )
    print(
        "\n  PAG tracks the theoretical minimum; AcTinG saturates by 10% "
        "because audited logs carry interactions in clear."
    )


if __name__ == "__main__":
    observer_demo()
    coalition_demo()
