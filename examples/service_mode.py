"""Drive a session through the service supervisor and a live endpoint.

Two views of the same machinery behind ``repro serve``:

1. ``api.supervise`` — run a scenario under the supervisor with a
   *scripted* operator schedule (the library form of ``repro ctl``),
   and show that it collects the same ScenarioResult a plain run does.
2. ``api.serve`` over an in-process ``mem://`` endpoint — poll health,
   stream a few NDJSON events and inject churn through the control
   channel while the session runs.

Run with::

    PYTHONPATH=src python examples/service_mode.py
"""

import asyncio
import threading

from repro import api
from repro.service import ControlOp, ServiceClient, render_event


def scripted_supervision() -> None:
    print("-- supervised run with a scripted operator schedule --")
    schedule = (
        # Flip node 7 deviant before round 0, crash node 5 after
        # round 3 — same semantics as live `repro ctl` ops.
        ControlOp("strategy", node_id=7, arg="free-rider", after_round=-1),
        ControlOp("churn", node_id=5, after_round=3),
    )
    result = api.supervise(
        "fig7", nodes=24, rounds=8, schedule=schedule,
    )
    print(f"  rounds run : {result.spec.rounds}")
    print(f"  verdicts   : {result.verdicts}")
    print(f"  convicted  : {sorted(set(result.convicted))}")


async def observe(endpoint: str) -> None:
    async with ServiceClient(endpoint) as client:
        report = await client.health()
        print(f"  health     : state={report.state} "
              f"nodes={report.nodes} rounds={report.total_rounds}")
        response = await client.control("churn", node_id=5)
        print(f"  control    : churn node 5 -> "
              f"{'ok' if response.ok else 'error'} ({response.detail})")
    async with ServiceClient(endpoint) as client:
        shown = 0
        async for event in client.subscribe(kinds=("round", "verdict")):
            print("  " + render_event(event))
            shown += 1
            if shown >= 6:
                break


def live_service() -> None:
    print("\n-- live service over mem:// --")
    listening = threading.Event()
    resolved = []

    def on_listening(endpoint: str) -> None:
        resolved.append(endpoint)
        listening.set()

    server = threading.Thread(
        target=lambda: api.serve(
            "fig7",
            "mem://service-mode-example",
            nodes=24,
            rounds=8,
            round_delay=0.02,
            on_listening=on_listening,
        ),
    )
    server.start()
    listening.wait(timeout=10)
    asyncio.run(observe(resolved[0]))
    server.join()
    print("  session drained; server thread exited")


def main() -> None:
    scripted_supervision()
    live_service()


if __name__ == "__main__":
    main()
