"""Drive the paper's evaluation matrix through the scenario registry.

Runs three registered scenarios — the honest Fig. 7 workload, a
free-rider conviction, and mid-stream churn — then declares and runs a
custom scenario, all through the repro.api facade the CLI and
benchmarks are built on.  Run with::

    PYTHONPATH=src python examples/scenario_registry.py
"""

from repro import api
from repro.scenarios import (
    AdversaryGroup,
    ChurnEvent,
    ScenarioSpec,
    register_scenario,
    scenario_names,
)


def main() -> None:
    print("registered scenarios:", ", ".join(scenario_names()))

    print("\n-- fig7 (scaled down), sharded execution --")
    result = api.run_scenario(
        "fig7", nodes=24, rounds=10, policy="sharded", shards=4,
    )
    for key, value in result.summary().items():
        print(f"  {key:<16}: {value}")

    print("\n-- selfish: one free-rider, convicted --")
    result = api.run_scenario("selfish")
    print(f"  convicted {list(result.convicted)} "
          f"(deviants were {sorted(result.spec.deviant_nodes())})")

    print("\n-- a custom scenario: churn plus a coalition --")
    register_scenario(ScenarioSpec(
        name="flash-crowd",
        description="free-riding fifth while a relay crashes",
        nodes=20,
        rounds=14,
        warmup_rounds=3,
        adversaries=(AdversaryGroup(strategy="free-rider", fraction=0.2),),
        churn=(ChurnEvent(after_round=6, node_id=9),),
    ))
    result = api.run_scenario("flash-crowd")
    print(f"  mean download : {result.mean_kbps:.0f} Kbps")
    print(f"  continuity    : {result.continuity:.1%}")
    print(f"  convicted     : {list(result.convicted)}")


if __name__ == "__main__":
    main()
