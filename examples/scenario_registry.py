"""Drive the paper's evaluation matrix through the scenario registry.

Runs three registered scenarios — the honest Fig. 7 workload, a
free-rider conviction, and mid-stream churn — then declares and runs a
custom scenario, all through the same declarative interface the CLI
and benchmarks use.  Run with::

    PYTHONPATH=src python examples/scenario_registry.py
"""

from repro.scenarios import (
    AdversaryGroup,
    ChurnEvent,
    ScenarioSpec,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.sim.execution import ShardedPolicy


def main() -> None:
    print("registered scenarios:", ", ".join(scenario_names()))

    print("\n-- fig7 (scaled down), sharded execution --")
    result = run_scenario(
        "fig7", nodes=24, rounds=10,
        execution_policy=ShardedPolicy(shards=4),
    )
    for key, value in result.summary().items():
        print(f"  {key:<16}: {value}")

    print("\n-- selfish: one free-rider, convicted --")
    result = run_scenario("selfish")
    print(f"  convicted {list(result.convicted)} "
          f"(deviants were {sorted(result.spec.deviant_nodes())})")

    print("\n-- a custom scenario: churn plus a coalition --")
    register_scenario(ScenarioSpec(
        name="flash-crowd",
        description="free-riding fifth while a relay crashes",
        nodes=20,
        rounds=14,
        warmup_rounds=3,
        adversaries=(AdversaryGroup(strategy="free-rider", fraction=0.2),),
        churn=(ChurnEvent(after_round=6, node_id=9),),
    ))
    result = run_scenario("flash-crowd")
    print(f"  mean download : {result.mean_kbps:.0f} Kbps")
    print(f"  continuity    : {result.continuity:.1%}")
    print(f"  convicted     : {list(result.convicted)}")


if __name__ == "__main__":
    main()
