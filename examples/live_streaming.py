#!/usr/bin/env python3
"""Live streaming across protocols: PAG vs AcTinG vs plain gossip.

The paper's motivating scenario (section VII): a source streams video to
a membership; we compare what each node pays in bandwidth and what
stream quality it experiences, across the accountable+private protocol
(PAG), the accountable-only baseline (AcTinG), and unprotected push
gossip.  RAC is evaluated analytically (it cannot stream at all — see
Table II and benchmarks/bench_table2_video_quality.py).

Run:
    python examples/live_streaming.py [n_nodes] [rate_kbps]
"""

import sys

from repro.baselines.acting import ActingSession
from repro.baselines.rac import rac_max_payload_kbps
from repro.core import PagConfig, PagSession
from repro.gossip.dissemination import PlainGossipNode, PlainSourceNode
from repro.gossip.source import StreamSchedule
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import SeedSequence
from repro.streaming.player import evaluate_playback

ROUNDS = 15
WARMUP = 4


def run_pag(n: int, rate: float):
    config = PagConfig.for_system_size(n, stream_rate_kbps=rate)
    session = PagSession.create(n, config=config)
    session.run(ROUNDS)
    return (
        session.mean_bandwidth_kbps(WARMUP, direction="down"),
        session.mean_continuity(),
    )


def run_acting(n: int, rate: float):
    from repro.baselines.acting import ActingConfig

    session = ActingSession.create(
        n, config=ActingConfig(stream_rate_kbps=rate)
    )
    session.run(ROUNDS)
    continuities = []
    for node in session.nodes.values():
        report = evaluate_playback(
            session.source.released,
            node.store,
            current_round=ROUNDS,
            warmup_rounds=5,
        )
        continuities.append(report.continuity)
    return (
        session.mean_bandwidth_kbps(WARMUP, direction="down"),
        sum(continuities) / len(continuities),
    )


def run_plain(n: int, rate: float):
    directory = Directory.of_size(n)
    views = ViewProvider(
        directory=directory,
        seeds=SeedSequence(7),
        fanout=3,
        monitors_per_node=3,
    )
    network = Network()
    sim = Simulator(network=network)
    source = PlainSourceNode(
        0, network, views, StreamSchedule(rate_kbps=rate)
    )
    sim.add_node(source)
    nodes = {}
    for node_id in directory.consumers():
        nodes[node_id] = PlainGossipNode(node_id, network, views)
        sim.add_node(nodes[node_id])
    sim.run(ROUNDS)
    bw = network.meter.mean_kbps(
        sorted(nodes), first_round=WARMUP, direction="down"
    )
    continuities = []
    for node in nodes.values():
        report = evaluate_playback(
            source.released, node.store, current_round=ROUNDS,
            warmup_rounds=5,
        )
        continuities.append(report.continuity)
    return bw, sum(continuities) / len(continuities)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 300.0

    print(f"Streaming {rate:.0f} Kbps to {n} nodes, {ROUNDS} rounds\n")
    print(f"{'protocol':<14} {'privacy':<9} {'accountable':<12} "
          f"{'down Kbps':>10} {'continuity':>11}")
    print("-" * 60)

    rows = [
        ("plain gossip", "no", "no", run_plain(n, rate)),
        ("AcTinG", "no", "yes", run_acting(n, rate)),
        ("PAG", "partial", "yes", run_pag(n, rate)),
    ]
    for name, priv, acct, (bw, cont) in rows:
        print(
            f"{name:<14} {priv:<9} {acct:<12} {bw:>10.0f} {cont:>10.1%}"
        )

    rac_nodes = max(n, 1000)
    rac_capacity = rac_max_payload_kbps(10_000_000, rac_nodes)
    print(
        f"{'RAC':<14} {'yes':<9} {'yes':<12} "
        f"{'(analytic)':>10} {'unusable':>11}"
    )
    print(
        f"\nRAC could carry at most {rac_capacity:.0f} Kbps of payload on "
        f"a 10 Gbps link at the paper's {rac_nodes}-node scale — far "
        f"below the {rate:.0f} Kbps stream (Table II's empty cells)."
    )
    print(
        "\nPAG buys privacy over AcTinG for a bandwidth premium, while "
        "remaining streamable — the paper's headline trade-off."
    )


if __name__ == "__main__":
    main()
