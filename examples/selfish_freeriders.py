#!/usr/bin/env python3
"""Free-riders under PAG: detection, proofs, and the incentive argument.

Reproduces the accountability story of sections IV/VI-B on a live
session: a population of selfish nodes runs every deviation strategy in
the catalogue; the monitoring infrastructure convicts each of them (and
nobody else), and the utility analysis shows why a rational node gives
up: whatever bandwidth a deviation saves, the conviction costs more.

Run:
    python examples/selfish_freeriders.py
"""

from repro.adversary.selfish import (
    ContactAvoider,
    DeclarationSkipper,
    FreeRider,
    PartialForwarder,
    SilentReceiver,
)
from repro.analysis.nash import evaluate_deviation
from repro.core import PagSession

ROUNDS = 14


def detection_demo() -> None:
    behaviors = {
        5: FreeRider(),
        9: PartialForwarder(keep_fraction=0.5, seed=2),
        13: SilentReceiver(),
        17: DeclarationSkipper(),
        21: ContactAvoider(),
    }
    print(f"Session of 28 nodes, {len(behaviors)} deviants:")
    for node_id, behavior in behaviors.items():
        print(f"  node {node_id:>2}: {type(behavior).__name__}")

    session = PagSession.create(28, behaviors=behaviors)
    session.run(ROUNDS)

    print("\nVerdicts (deduplicated across monitors):")
    for verdict in sorted(
        session.all_verdicts(), key=lambda v: (v.node, v.exchange_round)
    )[:12]:
        print(
            f"  node {verdict.node:>2} GUILTY of {verdict.reason.value:<26}"
            f" (round {verdict.exchange_round}, monitor "
            f"{verdict.detected_by})"
        )
    more = len(session.all_verdicts()) - 12
    if more > 0:
        print(f"  ... and {more} more")

    convicted = session.convicted_nodes()
    print(f"\nConvicted: {sorted(convicted)}")
    print(f"Expected : {sorted(behaviors)}")
    assert convicted == set(behaviors), "detection error!"
    print("Every deviant convicted; zero false positives.")


def incentive_demo() -> None:
    print("\n--- Why deviating does not pay (section VI-B) ---")
    print(
        f"{'deviation':<22} {'saved Kbps':>10} {'honest u':>9} "
        f"{'deviant u':>10} {'profitable':>11}"
    )
    print("-" * 68)
    for behavior in (
        FreeRider(),
        PartialForwarder(keep_fraction=0.5, seed=2),
        SilentReceiver(),
        DeclarationSkipper(),
        ContactAvoider(),
    ):
        outcome = evaluate_deviation(behavior, n_nodes=20, rounds=12)
        print(
            f"{outcome.deviation:<22} {outcome.bandwidth_saved_kbps:>10.0f}"
            f" {outcome.correct_utility:>9.1f}"
            f" {outcome.deviant_utility:>10.1f}"
            f" {str(outcome.deviation_profitable):>11}"
        )
    print(
        "\nNo deviation is profitable: PAG is a Nash equilibrium under "
        "this utility model."
    )


if __name__ == "__main__":
    detection_demo()
    incentive_demo()
