#!/usr/bin/env python3
"""Quickstart: run a PAG live-streaming session and inspect the results.

Builds a 30-node session (one source, 29 consumers) streaming 300 Kbps
of 938-byte chunks — the paper's base workload — runs 15 one-second
rounds, and prints what the paper's evaluation measures: per-node
bandwidth, playback quality, cryptographic operation counts, and the
monitors' verdicts (none, since everyone is honest here).

Run:
    python examples/quickstart.py
"""

from repro.core import PagSession


def main() -> None:
    print("Building a 30-node PAG session (300 Kbps stream)...")
    session = PagSession.create(30)
    print(
        f"  fanout={session.context.config.fanout}, "
        f"monitors/node={session.context.config.monitors_per_node}, "
        f"round={session.context.config.round_seconds:.0f}s"
    )

    rounds = 15
    print(f"Running {rounds} rounds...")
    session.run(rounds)

    print("\n--- Bandwidth (the paper's Fig. 7 metric) ---")
    per_node = session.bandwidth_kbps(warmup_rounds=4, direction="down")
    values = sorted(per_node.values())
    mean = sum(values) / len(values)
    print(f"  mean     : {mean:7.1f} Kbps")
    print(f"  median   : {values[len(values) // 2]:7.1f} Kbps")
    print(f"  min/max  : {values[0]:7.1f} / {values[-1]:7.1f} Kbps")
    print(f"  (stream payload is 300 Kbps; PAG overhead is the rest)")

    print("\n--- Playback quality ---")
    report = session.playback_report(node_id=5)
    print(f"  node 5 continuity : {report.continuity:6.1%}")
    print(f"  chunks on time    : {report.chunks_on_time}")
    print(f"  chunks missing    : {report.chunks_missing}")
    print(f"  mean lag          : {report.mean_lag_rounds:.1f} rounds")
    print(f"  session mean      : {session.mean_continuity():6.1%}")

    print("\n--- Cryptographic operations (Table I units) ---")
    crypto = session.crypto_report()
    node_rounds = len(session.nodes) * session.current_round
    for op in ("signatures", "homomorphic_hashes", "prime_generations"):
        print(
            f"  {op:20s}: {crypto[op]:8d} total, "
            f"{crypto[op] / node_rounds:6.1f} per node-second"
        )

    print("\n--- Accountability ---")
    verdicts = session.all_verdicts()
    print(f"  verdicts against correct nodes: {len(verdicts)} (expected 0)")
    assert not verdicts, "BUG: a correct node was convicted"
    print("  all nodes honest, none convicted — as it should be.")


if __name__ == "__main__":
    main()
