#!/usr/bin/env python3
"""The paper's future-work extension: hiding interests with decoy sessions.

PAG's property P1 hides *which updates* travel from monitors, but
session membership itself is public: joining the "channel 5" session
announces an interest in channel 5.  The paper's conclusion sketches
the obfuscation approach — "hide the interests of nodes by making them
receive several contents at the same time" — and calls improving on it
future work, because every decoy session costs a full dissemination's
bandwidth.

This example quantifies both sides on real sessions: the attacker's
posterior over each node's true interest, and the measured per-node
bandwidth as the cover factor grows.

Run:
    python examples/obfuscated_sessions.py
"""

from repro.core import PagConfig
from repro.extensions.multisession import MultiSessionRunner
from repro.extensions.obfuscation import (
    ObfuscationPlan,
    anonymity_set_size,
    interest_posterior,
)

CHANNELS = [101, 102, 103, 104, 105]


def privacy_side() -> None:
    print("--- What the observer of session memberships learns ---")
    interests = {node: CHANNELS[node % len(CHANNELS)] for node in range(10)}
    for cover in (1, 2, 3):
        plan = ObfuscationPlan(
            sessions=CHANNELS,
            true_interest=interests,
            cover_factor=cover,
            seed=3,
        )
        sizes = anonymity_set_size(plan.observer_view())
        mean_anonymity = sum(sizes.values()) / len(sizes)
        posterior = interest_posterior(plan.observer_view())
        correct_guess = sum(
            max(p.values()) for p in posterior.values()
        ) / len(posterior)
        print(
            f"  cover factor {cover}: anonymity set {mean_anonymity:.1f}, "
            f"attacker's best-guess confidence {correct_guess:.0%}"
        )

    print("\n  skewed popularity shrinks the protection:")
    plan = ObfuscationPlan(
        sessions=CHANNELS,
        true_interest=interests,
        cover_factor=3,
        seed=3,
    )
    popularity = {c: 1.0 for c in CHANNELS}
    popularity[101] = 30.0  # channel 101 is the hit show
    sizes = anonymity_set_size(plan.observer_view(), popularity)
    fans = [n for n, i in interests.items() if i == 101]
    print(
        f"  a fan of the popular channel keeps anonymity "
        f"{sizes[fans[0]]:.2f} (vs 3.0 uniform) — decoys must look "
        "plausible."
    )


def cost_side() -> None:
    print("\n--- What obfuscation costs (measured) ---")
    for cover in (1, 2, 3):
        runner = MultiSessionRunner(
            n_nodes=12,
            session_configs=[PagConfig(stream_rate_kbps=80.0)] * cover,
        )
        runner.run(10)
        report = runner.report()
        print(
            f"  {cover} session(s): {report.aggregate_mean_kbps:6.0f} Kbps "
            f"per node, continuity "
            f"{min(report.per_session_continuity.values()):.0%}"
        )
    print(
        "\n  Bandwidth scales linearly with the cover factor — the reason "
        "the paper leaves a cheaper scheme as future work."
    )


if __name__ == "__main__":
    privacy_side()
    cost_side()
