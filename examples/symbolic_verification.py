#!/usr/bin/env python3
"""Symbolic verification of privacy property P1 (section VI-A).

Re-runs the paper's ProVerif analysis with the bundled Dolev-Yao engine:

* case (1): a global network attacker finds no attack;
* case (2): coalitions below the threshold find no attack on honest
  links (monitor-only and predecessor-only compositions);
* the threshold attack: the coalition ProVerif found — colluding
  predecessors plus the monitor holding one of their cofactors —
  recovers the victim's prime by dividing known primes out of the
  cofactor, then runs the dictionary test on the observed hashes.

Run:
    python examples/symbolic_verification.py
"""

from repro.verifier import (
    PagScenario,
    case1_network_attacker,
    case2_coalitions,
    check_secrecy,
    f_coalition_attack,
)


def main() -> None:
    print("=== Case (1): global network attacker, f = 3 ===")
    for pred, verdict in case1_network_attacker(fanout=3).items():
        status = "PRIVATE" if verdict.private else "BROKEN"
        print(
            f"  link {pred} -> B: {status} "
            f"(prime derivable: {verdict.prime_derivable}, "
            f"update linkable: {verdict.update_linkable})"
        )

    print("\n=== Case (2): coalitions of f-1 = 2 nodes ===")
    safe = broken = 0
    for coalition, verdicts in case2_coalitions(fanout=3):
        exposed = [
            p
            for p, v in verdicts.items()
            if p not in coalition and not v.private
        ]
        if exposed:
            broken += 1
            print(
                f"  coalition {coalition}: exposes {exposed} "
                "(mixed predecessor+monitor — the section VII-E condition)"
            )
        else:
            safe += 1
    print(f"  {safe} coalitions safe, {broken} expose a link.")
    print(
        "  All monitor-only and predecessor-only coalitions are safe "
        "(the compositions section VI-A enumerates)."
    )

    print("\n=== The threshold attack (found by ProVerif, reproduced) ===")
    coalition, victim = f_coalition_attack(fanout=3)
    print(f"  coalition: {coalition}")
    print(
        f"  victim link A1 -> B: prime recovered = "
        f"{victim.prime_derivable}, dictionary test possible = "
        f"{victim.update_linkable}"
    )
    print(
        "  Mechanism: the monitor holds cofactor p1*p3 for predecessor "
        "A2; dividing out the colluders' primes isolates p1."
    )

    print("\n=== Raising the fanout raises the bar ===")
    for fanout in (3, 5):
        scenario = PagScenario(fanout=fanout)
        pair_breaks = 0
        for monitor in scenario.monitors:
            verdicts = check_secrecy(scenario, corrupted=("A1", monitor))
            if any(
                not v.private
                for p, v in verdicts.items()
                if p != "A1"
            ):
                pair_breaks += 1
        print(
            f"  f={fanout}: (1 predecessor + 1 monitor) coalitions that "
            f"break a link: {pair_breaks}/{len(scenario.monitors)}"
        )
    print(
        "  'Increasing the value of f reinforces the security of the "
        "protocol' — at f=5 no 2-coalition succeeds."
    )


if __name__ == "__main__":
    main()
