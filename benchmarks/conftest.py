"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
rows/series next to the paper's reported values.  Scale knobs:

* ``REPRO_BENCH_NODES`` — membership size for packet-level simulations
  (default 120; the paper's deployment used 432 — set 432 for the full
  run, at several minutes of wall clock).
* ``REPRO_BENCH_ROUNDS`` — rounds per simulation (default 12).
"""

import os

import pytest


def bench_nodes() -> int:
    return int(os.environ.get("REPRO_BENCH_NODES", "120"))


def bench_rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", "15"))


@pytest.fixture(scope="session")
def scale():
    return {"nodes": bench_nodes(), "rounds": bench_rounds(), "warmup": 4}


def print_header(title: str, paper: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print(f"paper reference: {paper}")
    print("=" * 72)
