"""Figure 7 — CDF of per-node bandwidth, PAG vs AcTinG.

Paper setup: 432 nodes on Grid'5000, 300 Kbps stream, 938 B updates,
3 monitors, 1 s rounds.  Paper result: AcTinG nodes consume ~460 Kbps on
average, PAG nodes ~1050 Kbps; both CDFs are steep (homogeneous load).

We rerun the same workload on the packet simulator (default 120 nodes —
set REPRO_BENCH_NODES=432 for the paper's scale) and print the CDF
deciles and means.  Expected shape: PAG mean 2-4x the AcTinG mean, both
well above the 300 Kbps payload floor, tight distributions.
"""


from benchmarks.conftest import print_header
from repro import api
from repro.sim.metrics import cdf_points

_cache = {}


def _run_sessions(scale):
    """Both Fig. 7 workloads, resolved from the scenario registry."""
    key = (scale["nodes"], scale["rounds"])
    if key not in _cache:
        n, rounds = key
        pag = api.run_scenario(
            "fig7", nodes=n, rounds=rounds, warmup_rounds=scale["warmup"]
        )
        acting = api.run_scenario(
            "fig7-acting",
            nodes=n,
            rounds=rounds,
            warmup_rounds=scale["warmup"],
        )
        _cache[key] = (pag.session, acting.session)
    return _cache[key]


def _deciles(points):
    out = []
    for target in range(10, 101, 10):
        value = next(v for v, pct in points if pct >= target)
        out.append((target, value))
    return out


def test_fig07_bandwidth_cdf(benchmark, scale):
    pag, acting = _run_sessions(scale)

    pag_bw = pag.bandwidth_kbps(scale["warmup"], direction="down")
    acting_bw = acting.bandwidth_kbps(scale["warmup"], direction="down")

    def compute_cdfs():
        return cdf_points(pag_bw), cdf_points(acting_bw)

    pag_cdf, acting_cdf = benchmark.pedantic(
        compute_cdfs, rounds=1, iterations=1
    )

    print_header(
        f"Figure 7 — bandwidth CDF ({scale['nodes']} nodes, 300 Kbps "
        "stream, 3 monitors)",
        "AcTinG mean ~460 Kbps, PAG mean ~1050 Kbps (432 nodes)",
    )
    print(f"{'CDF %':>6} {'AcTinG Kbps':>12} {'PAG Kbps':>10}")
    for (pct, acting_v), (_, pag_v) in zip(
        _deciles(acting_cdf), _deciles(pag_cdf)
    ):
        print(f"{pct:>5}% {acting_v:>12.0f} {pag_v:>10.0f}")
    pag_mean = sum(pag_bw.values()) / len(pag_bw)
    acting_mean = sum(acting_bw.values()) / len(acting_bw)
    print(f"{'mean':>6} {acting_mean:>12.0f} {pag_mean:>10.0f}")
    print(
        f"ratio PAG/AcTinG = {pag_mean / acting_mean:.2f} "
        "(paper: 1050/460 = 2.28)"
    )

    # Shape assertions: who wins, by roughly what factor.
    assert acting_mean > 300.0, "AcTinG cannot beat the payload floor"
    assert pag_mean > acting_mean, "PAG must cost more than AcTinG"
    assert 1.5 < pag_mean / acting_mean < 5.0
    # Homogeneous load: the CDF is tight (90th/10th percentile small).
    p90 = next(v for v, pct in pag_cdf if pct >= 90)
    p10 = next(v for v, pct in pag_cdf if pct >= 10)
    assert p90 / p10 < 3.0


def test_fig07_continuity_is_preserved(scale):
    """The bandwidth premium must buy a watchable stream."""
    pag, _ = _run_sessions(scale)
    assert pag.mean_continuity() > 0.99
