"""Figure 8 — PAG bandwidth vs update size (1000 nodes, 300 Kbps).

Paper result: ~1900 Kbps at 1 kb updates, falling steeply to below
~400 Kbps at 100 kb updates, because "more content can be represented
under each hash" — the per-update costs (buffermap hashes, identifiers,
attestation bookkeeping) amortise over bigger chunks.

Regenerated from the validated bandwidth model across the same sweep,
plus a packet-simulator spot check at two sizes.  A second bench sweeps
the buffermap depth — the ablation DESIGN.md calls out (the paper tuned
depth 4; the recirculation-vs-hash-cost trade-off is reproduced by the
simulator).
"""


from benchmarks.conftest import print_header
from repro.analysis.bandwidth import PagBandwidthModel
from repro.core import PagConfig
from repro import api
from repro.scenarios import get_scenario

SIZES_KBIT = [1, 2, 5, 10, 20, 50, 100]


def _model_kbps(update_kbit: float, n_nodes: int = 1000) -> float:
    config = PagConfig.for_system_size(
        n_nodes,
        stream_rate_kbps=300.0,
        update_bytes=int(update_kbit * 1000 / 8),
    )
    return PagBandwidthModel(config=config).total_kbps()


def test_fig08_update_size_sweep(benchmark):
    series = benchmark.pedantic(
        lambda: [(kb, _model_kbps(kb)) for kb in SIZES_KBIT],
        rounds=1,
        iterations=1,
    )
    print_header(
        "Figure 8 — bandwidth vs update size (1000 nodes, 300 Kbps)",
        "~1900 Kbps at 1 kb falling to <400 Kbps at 100 kb [sim]",
    )
    print(f"{'update kb':>10} {'bandwidth Kbps':>15}")
    for kb, kbps in series:
        print(f"{kb:>10} {kbps:>15.0f}")

    values = [kbps for _, kbps in series]
    # Shape: strictly decreasing, steep at first, flattening.
    assert all(a > b for a, b in zip(values, values[1:]))
    assert values[0] / values[-1] > 2.5, "curve must fall substantially"
    first_drop = values[0] - values[1]
    last_drop = values[-2] - values[-1]
    assert first_drop > last_drop, "curve must flatten"
    # Magnitude anchors (paper: ~1900 at ~1 kb, <500 at 100 kb; our
    # floor is higher because the measured duplicate factor applies at
    # every update size — see EXPERIMENTS.md).
    assert 900 < values[0] < 3500
    assert values[-1] < 1200


def test_fig08_simulator_spot_check():
    """The packet simulator confirms the direction at small scale."""
    results = {}
    for update_bytes in (500, 4000):
        result = api.run_scenario(
            "fig8", stream_rate_kbps=150.0, update_bytes=update_bytes
        )
        results[update_bytes] = result.mean_kbps
    print(
        f"\nsimulator: 500 B updates -> {results[500]:.0f} Kbps, "
        f"4000 B -> {results[4000]:.0f} Kbps"
    )
    assert results[4000] < results[500]


def test_fig08_buffermap_depth_ablation(benchmark):
    """DESIGN.md ablation: buffermap depth trades recirculated payload
    against hash volume.  The paper tuned depth 4 for its workload; the
    simulator reproduces the U-shaped cost curve."""

    def sweep():
        out = []
        spec = get_scenario("fig8", stream_rate_kbps=150.0, fanout=3,
                            monitors_per_node=3)
        for depth in (2, 4, 6, 10):
            session = spec.build_pag_with(buffermap_depth=depth)
            session.run(spec.rounds)
            out.append(
                (
                    depth,
                    session.mean_bandwidth_kbps(
                        spec.warmup_rounds, direction="down"
                    ),
                )
            )
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header(
        "Buffermap depth ablation (40 nodes, 150 Kbps)",
        "section V-D: 'best results ... when the updates of the last 4 "
        "rounds were hashed'",
    )
    print(f"{'depth':>6} {'bandwidth Kbps':>15}")
    for depth, kbps in series:
        print(f"{depth:>6} {kbps:>15.0f}")
    by_depth = dict(series)
    # Too shallow: recirculation explodes the payload.
    assert by_depth[2] > 1.5 * by_depth[4]
    # The optimum is interior: going deep enough kills recirculation,
    # then extra depth only adds hash volume.
    assert by_depth[6] <= by_depth[4]
    assert by_depth[10] >= by_depth[6]
