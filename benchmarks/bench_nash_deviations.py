"""Section VI-B — the Nash-equilibrium table.

Not a figure in the paper, but the paper's central accountability claim
("PAG is a Nash equilibrium") made quantitative: for every deviation in
the catalogue, run the protocol, measure the deviant's bandwidth saving,
its playback quality, and whether it was convicted, and compare
utilities.  The claim holds when no row is profitable.
"""


from benchmarks.conftest import print_header
from repro.adversary.selfish import (
    ContactAvoider,
    DeclarationSkipper,
    FreeRider,
    PartialForwarder,
    SilentReceiver,
    StealthyFreeRider,
)
from repro.analysis.nash import evaluate_deviation

DEVIATIONS = [
    FreeRider(),
    PartialForwarder(keep_fraction=0.5, seed=1),
    SilentReceiver(),
    DeclarationSkipper(),
    ContactAvoider(),
    StealthyFreeRider(drop_every=4),
]


def test_nash_deviation_table(benchmark):
    def evaluate_all():
        return [
            evaluate_deviation(behavior, n_nodes=20, rounds=16)
            for behavior in DEVIATIONS
        ]

    outcomes = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    print_header(
        "Nash equilibrium check — every deviation, measured",
        "section VI-B: selfish nodes have no interest in deviating",
    )
    print(
        f"{'deviation':<22} {'convicted':>9} {'saved Kbps':>11} "
        f"{'honest u':>9} {'deviant u':>10} {'profitable':>11}"
    )
    for o in outcomes:
        print(
            f"{o.deviation:<22} {str(o.deviant_convicted):>9} "
            f"{o.bandwidth_saved_kbps:>11.0f} {o.correct_utility:>9.1f} "
            f"{o.deviant_utility:>10.1f} "
            f"{str(o.deviation_profitable):>11}"
        )

    assert all(o.deviant_convicted for o in outcomes)
    assert not any(o.deviation_profitable for o in outcomes)
    # At least the canonical free-rider genuinely saves bandwidth — the
    # equilibrium is non-trivial.
    free_rider = next(o for o in outcomes if o.deviation == "FreeRider")
    assert free_rider.bandwidth_saved_kbps > 0
