"""Section VII-C microbenchmarks — raw cryptographic throughput.

Paper: "Using openssl, we measured that each core of the machines we
used is able to perform 4800 hashes per second with a 512-bits modulus",
so one core sustains up to 720p; "using a 256 bits modulus can also be
considered secure enough in many situations, and it would significantly
reduce the bandwidth overhead".

We measure our pure-Python homomorphic hash at both modulus sizes (and
RSA signing and prime generation for context).  Pure Python is slower
than openssl's C/assembly — the point of this bench is (a) the *ratio*
between modulus sizes and (b) honest reporting of what the reproduction
substrate achieves next to the paper's figure.
"""

import random

import pytest

from benchmarks.conftest import print_header
from repro.crypto.homomorphic import HomomorphicHasher, make_modulus
from repro.crypto.primes import generate_prime
from repro.crypto.rsa import generate_keypair

PAPER_HASHES_PER_SECOND_512 = 4800  # openssl, one Xeon L5420 core


@pytest.fixture(scope="module")
def material():
    rng = random.Random(42)
    prime512 = generate_prime(512, rng)
    prime256 = generate_prime(256, rng)
    return {
        512: HomomorphicHasher(modulus=make_modulus(512, rng)),
        256: HomomorphicHasher(modulus=make_modulus(256, rng)),
        "update": random.Random(1).getrandbits(1024),
        "prime512": prime512,
        "prime256": prime256,
        # Distinct odd exponents of the right width: the hasher memoises
        # repeated (update, exponent) pairs, so a throughput measurement
        # must never reuse a pair (we measure modexp, not dict lookups).
        "exps512": [prime512 + 2 * k for k in range(4096)],
        "exps256": [prime256 + 2 * k for k in range(4096)],
        "rsa": generate_keypair(2048, random.Random(7)),
    }


def _cold_hash_caller(hasher, update, exponents):
    """Closure with a fresh (base, exponent) pair on every call.

    Keeps every evaluation cold: repeated pairs would hit the hasher's
    memo and repeated bases its fixed-base tables, and this bench's
    point is the raw modexp rate next to the paper's openssl figure.
    """
    counter = iter(range(10**9))

    def call():
        i = next(counter)
        return hasher.hash(update + i, exponents[i % len(exponents)])

    return call


def test_hash_throughput_512(benchmark, material):
    hasher = material[512]
    update = material["update"]
    benchmark(_cold_hash_caller(hasher, update, material["exps512"]))
    per_second = 1.0 / benchmark.stats.stats.mean
    print_header(
        "Crypto micro — homomorphic hash, 512-bit modulus",
        f"paper: {PAPER_HASHES_PER_SECOND_512} hashes/s per core (openssl)",
    )
    print(
        f"pure-Python: {per_second:,.0f} hashes/s "
        f"({per_second / PAPER_HASHES_PER_SECOND_512:.1f}x the paper's "
        "openssl figure)"
    )
    # Even pure Python must sustain the paper's 144p workload (133/s).
    assert per_second > 500


def test_hash_throughput_256(benchmark, material):
    hasher = material[256]
    update = material["update"]
    benchmark(_cold_hash_caller(hasher, update, material["exps256"]))
    per_second = 1.0 / benchmark.stats.stats.mean
    print(f"\n256-bit modulus: {per_second:,.0f} hashes/s")


def test_256_bit_modulus_is_cheaper(material):
    """The paper's suggestion: a 256-bit modulus cuts both bandwidth
    (half-size hashes) and CPU."""
    import time

    update = material["update"]
    timings = {}
    for bits in (512, 256):
        hasher = material[bits]
        exponents = material[f"exps{bits}"]
        start = time.perf_counter()
        for i in range(300):
            # Offset the bases away from the throughput benches' range
            # so every pair here is cold as well.
            hasher.hash(update + 10_000_000 + i, exponents[-1 - i])
        timings[bits] = time.perf_counter() - start
    speedup = timings[512] / timings[256]
    print(f"\n256-bit vs 512-bit speedup: {speedup:.1f}x")
    assert speedup > 2.0  # modexp is superlinear in width
    assert material[256].byte_size == material[512].byte_size // 2


def test_rsa_sign_throughput(benchmark, material):
    pair = material["rsa"]
    benchmark(pair.private.sign, b"Ack, R, B, A, H(...)")
    per_second = 1.0 / benchmark.stats.stats.mean
    print(f"\nRSA-2048 signatures: {per_second:,.0f}/s (paper needs 33/s)")
    assert per_second > 33, "must sustain the protocol's signature rate"


def test_prime_generation_throughput(benchmark):
    rng = random.Random(5)
    benchmark(generate_prime, 512, rng)
    per_second = 1.0 / benchmark.stats.stats.mean
    print(f"\n512-bit prime generation: {per_second:,.1f}/s")
    # A node draws ~f primes per round (f=3..6): sub-second is enough.
    assert per_second > 3
