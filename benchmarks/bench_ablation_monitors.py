"""Ablation — monitor-set size vs bandwidth and privacy.

Two claims from the paper, benched together:

* section VII-B: "Increasing the number of monitors does not
  significantly increase the bandwidth cost of the protocol, because
  the messages transmitted between and to monitors are small, and
  allows a better resilience to collective deviations" — we sweep fm
  at fixed fanout and measure the marginal cost per extra monitor;
* Fig. 10: more monitors (coupled with more predecessors) improve the
  privacy bound — quantified via the closed form.
"""


from benchmarks.conftest import print_header
from repro.analysis.privacy import pag_discovery_probability
from repro import api
from repro.scenarios import ScenarioSpec

BASE = ScenarioSpec(
    name="ablation-monitors",
    description="monitor-set size sweep at fixed fanout",
    nodes=40,
    rounds=12,
    warmup_rounds=4,
    fanout=3,
    stream_rate_kbps=150.0,
)


def test_monitor_count_bandwidth_ablation(benchmark):
    def sweep():
        out = []
        for monitors in (3, 4, 5):
            result = api.run_scenario(BASE, monitors_per_node=monitors)
            out.append((monitors, result.mean_kbps, result.verdicts))
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header(
        "Ablation — monitor-set size (fanout 3, 40 nodes, 150 Kbps)",
        "'Increasing the number of monitors does not significantly "
        "increase the bandwidth cost'",
    )
    print(f"{'monitors':>8} {'down Kbps':>10} {'verdicts':>9}")
    for monitors, kbps, verdicts in series:
        print(f"{monitors:>8} {kbps:>10.0f} {verdicts:>9}")

    by_count = {m: k for m, k, _ in series}
    # Bandwidth grows with fm, but mildly: going 3 -> 5 monitors costs
    # well under 40% (the payload path is untouched; only the small
    # monitoring messages multiply).
    assert by_count[5] > by_count[3]
    assert by_count[5] / by_count[3] < 1.4
    # No false convictions at any setting.
    assert all(v == 0 for _, _, v in series)


def test_monitor_count_privacy_gain():
    print("\nprivacy bound by configuration (30% attackers):")
    print(f"{'f = fm':>7} {'P(discovered)':>14}")
    values = {}
    for f in (3, 4, 5, 6):
        values[f] = pag_discovery_probability(0.3, fanout=f)
        print(f"{f:>7} {values[f]:>14.1%}")
    # Strictly improving in the coupled fanout/monitor count.
    assert values[3] > values[4] > values[5] > values[6]
