"""Figure 9 — bandwidth scalability, 10^3 to 10^6 nodes.

Paper result: with a 300 Kbps stream, PAG grows from ~1 Mbps at 10^3
nodes to 2.5 Mbps at 10^6, AcTinG from ~460 Kbps to 840 Kbps — both
logarithmic in N because the fanout is log(N).

Like the paper ("we also computed the scalability of the protocol when
the number of nodes was too high to be simulated"), the large-N points
come from the closed-form model; the model itself is validated against
the packet simulator at small N (here and in
tests/analysis/test_bandwidth_model.py).
"""


import pytest

from benchmarks.conftest import print_header
from repro import api
from repro.analysis.bandwidth import ActingBandwidthModel, PagBandwidthModel
from repro.scenarios import get_scenario

SYSTEM_SIZES = [10**3, 10**4, 10**5, 10**6]


def test_fig09_scalability(benchmark):
    def compute():
        rows = []
        for n in SYSTEM_SIZES:
            pag = PagBandwidthModel.for_system(n, 300.0).total_kbps()
            acting = ActingBandwidthModel.for_system(n, 300.0).total_kbps()
            rows.append((n, pag, acting))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_header(
        "Figure 9 — scalability with a 300 Kbps stream [model]",
        "PAG ~1 Mbps @10^3 -> 2.5 Mbps @10^6; AcTinG ~460 -> 840 Kbps",
    )
    print(f"{'nodes':>9} {'PAG Kbps':>9} {'AcTinG Kbps':>12} {'ratio':>6}")
    for n, pag, acting in rows:
        print(f"{n:>9} {pag:>9.0f} {acting:>12.0f} {pag / acting:>6.2f}")

    pag_series = [pag for _, pag, _ in rows]
    acting_series = [acting for _, _, acting in rows]
    # Both grow monotonically...
    assert pag_series == sorted(pag_series)
    assert acting_series == sorted(acting_series)
    # ...sub-linearly (1000x nodes -> <3x bandwidth: log growth).
    assert pag_series[-1] / pag_series[0] < 3.0
    assert acting_series[-1] / acting_series[0] < 3.0
    # PAG stays above AcTinG everywhere, within the paper's factor band.
    for _, pag, acting in rows:
        assert 1.5 < pag / acting < 8.0
    # Magnitude anchors.
    assert 800 < pag_series[0] < 1_700
    assert 1_800 < pag_series[-1] < 3_600


def test_fig09_model_validated_by_simulator(scale):
    """Anchor the model at simulator scale before extrapolating."""
    n = scale["nodes"]
    spec = get_scenario(
        "fig9",
        nodes=n,
        rounds=scale["rounds"],
        warmup_rounds=scale["warmup"],
    )
    result = api.run_scenario(spec)
    simulated = result.mean_kbps
    modelled = PagBandwidthModel(config=spec.build_config()).total_kbps()
    print(
        f"\nvalidation @N={n}: simulator {simulated:.0f} Kbps, "
        f"model {modelled:.0f} Kbps "
        f"({100 * abs(simulated - modelled) / modelled:.0f}% apart)"
    )
    assert simulated == pytest.approx(modelled, rel=0.5)
