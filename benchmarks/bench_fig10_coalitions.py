"""Figure 10 — resiliency against a global and active attacker.

Paper result: the proportion of interactions a coalition discovers, as a
function of the corrupted fraction.  AcTinG reaches 100% by ~10%
corruption (audited logs are cleartext); PAG with 3 monitors stays close
to the theoretical minimum (an endpoint is corrupted), and PAG with 5
monitors closer still.

Regenerated two ways: closed-form curves (repro.analysis.privacy) and a
Monte-Carlo measurement on concrete per-round topologies
(repro.adversary.coalition); both are printed side by side.
"""

import pytest

from benchmarks.conftest import print_header
from repro.adversary.coalition import Coalition
from repro.analysis.privacy import figure10_series
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.scenarios import get_scenario
from repro.sim.rng import SeedSequence

FRACTIONS = [0.0, 0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90, 1.0]

#: Topology parameters come from the registry's fig10 scenario.
_FIG10 = get_scenario("fig10")


def _monte_carlo(
    fraction: float, n: int = _FIG10.nodes, monitors: int = None
) -> float:
    if monitors is None:
        monitors = _FIG10.monitors_per_node
    views = ViewProvider(
        directory=Directory.of_size(n),
        seeds=SeedSequence(17),
        fanout=monitors,
        monitors_per_node=monitors,
    )
    rng = SeedSequence(19).stream("mc", int(fraction * 100), monitors)
    count = int(n * fraction)
    rates = []
    for _ in range(3):
        members = set(
            rng.sample(list(views.directory.consumers()), count)
        ) if count else set()
        coalition = Coalition(members=members)
        rate, _, _ = coalition.discovery_rate(views, rounds=[1, 2])
        rates.append(rate)
    return sum(rates) / len(rates)


def test_fig10_closed_form_curves(benchmark):
    points = benchmark.pedantic(
        lambda: figure10_series(FRACTIONS), rounds=1, iterations=1
    )
    print_header(
        "Figure 10 — interactions discovered vs attacker fraction",
        "AcTinG hits 100% by ~10%; PAG-3/5 monitors track the minimum",
    )
    print(
        f"{'attackers':>9} {'AcTinG':>8} {'PAG-3':>7} {'PAG-5':>7} "
        f"{'minimum':>8}"
    )
    for p in points:
        print(
            f"{p.attacker_fraction:>8.0%} {p.acting:>8.1%} "
            f"{p.pag_3_monitors:>7.1%} {p.pag_5_monitors:>7.1%} "
            f"{p.theoretical_minimum:>8.1%}"
        )

    for p in points:
        # Ordering of the four curves, everywhere.
        assert (
            p.theoretical_minimum
            <= p.pag_5_monitors + 1e-9
        )
        assert p.pag_5_monitors <= p.pag_3_monitors + 1e-9
        assert p.pag_3_monitors <= p.acting + 1e-9
    # AcTinG saturates early; PAG stays near the minimum.
    at_10 = next(p for p in points if p.attacker_fraction == 0.10)
    assert at_10.acting > 0.97
    assert at_10.pag_3_monitors - at_10.theoretical_minimum < 0.10


def test_fig10_monte_carlo_matches_closed_form():
    print("\nMonte-Carlo cross-validation (300 nodes, 3 monitors):")
    print(f"{'attackers':>9} {'measured':>9} {'closed form':>12}")
    from repro.analysis.privacy import pag_discovery_probability

    for fraction in (0.10, 0.30, 0.50):
        measured = _monte_carlo(fraction)
        closed = pag_discovery_probability(fraction, fanout=3)
        print(f"{fraction:>8.0%} {measured:>9.1%} {closed:>12.1%}")
        assert measured == pytest.approx(closed, abs=0.12)


def test_fig10_more_monitors_better_in_monte_carlo():
    """The PAG-5 curve improvement is structural, not just closed-form:
    with 5 predecessors, 'all but two' is a much taller order."""
    for fraction in (0.3, 0.5):
        three = _monte_carlo(fraction, monitors=3)
        five = _monte_carlo(fraction, monitors=5)
        assert five <= three + 0.03, (fraction, three, five)
