"""The motivating experiment — free-riders degrade the compliant stream.

Section I cites studies showing that "above a given proportion of
selfish clients, the compliant clients observe a major degradation in
the quality of the video stream they obtain" — the reason accountable
gossip exists.  This bench measures the effect on our own substrate:
stream continuity of compliant nodes as the free-rider fraction grows,
with PAG's detection off (the unprotected system) and on (every
free-rider convicted, i.e. expellable), plus the per-strategy detection
latency table.
"""


from benchmarks.conftest import print_header
from repro.adversary.selfish import (
    ContactAvoider,
    DeclarationSkipper,
    FreeRider,
    PartialForwarder,
    SilentReceiver,
)
from repro.analysis.detection import (
    detection_latency,
    selfish_population_impact,
)

FRACTIONS = [0.0, 0.1, 0.3, 0.5, 0.7]


def test_population_degradation(benchmark):
    results = benchmark.pedantic(
        lambda: selfish_population_impact(FRACTIONS, n_nodes=24, rounds=18),
        rounds=1,
        iterations=1,
    )
    print_header(
        "Free-rider population vs compliant stream quality (no detection)",
        "section I: degradation above a threshold of selfish clients",
    )
    print(f"{'selfish':>8} {'compliant continuity':>21}")
    for r in results:
        print(f"{r.selfish_fraction:>7.0%} {r.compliant_continuity:>20.1%}")

    by_fraction = {r.selfish_fraction: r.compliant_continuity for r in results}
    # Monotone degradation with a knee: fine at low fractions, collapsed
    # at high ones.
    assert by_fraction[0.0] > 0.95
    assert by_fraction[0.7] < 0.6
    ordered = [by_fraction[f] for f in FRACTIONS]
    assert all(a >= b - 0.02 for a, b in zip(ordered, ordered[1:]))


def test_detection_restores_accountability():
    results = selfish_population_impact(
        [0.3], n_nodes=24, rounds=18, detection_enabled=True
    )
    print(
        f"\nwith detection on, {results[0].selfish_convicted_fraction:.0%} "
        "of the free-riders are convicted (expellable)"
    )
    assert results[0].selfish_convicted_fraction > 0.9


def test_detection_latency_table():
    print_header(
        "Detection latency by strategy",
        "log-less monitoring checks every exchange every round",
    )
    print(f"{'strategy':<22} {'latency (rounds)':>17}")
    for behavior in (
        FreeRider(),
        PartialForwarder(keep_fraction=0.5, seed=1),
        SilentReceiver(),
        DeclarationSkipper(),
        ContactAvoider(),
    ):
        result = detection_latency(behavior)
        label = (
            str(result.latency_rounds)
            if result.latency_rounds is not None
            else "n/a"
        )
        print(f"{result.strategy:<22} {label:>17}")
        assert result.first_conviction_round is not None
        if result.latency_rounds is not None:
            assert result.latency_rounds <= 4
