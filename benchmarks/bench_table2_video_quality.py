"""Table II — maximum sustainable video quality per link capacity.

Paper result (1000 nodes):

    link      1.5 Mbps        10 Mbps       100 Mbps+
    PAG       144p (660K)     480p (6.9M)   1080p (31M)
    AcTinG    480p (1.4M)     1080p (6M)    1080p (6M)
    RAC       ∅               ∅             ∅

Reproduced shape: RAC sustains nothing anywhere (its per-node cost
scales with the whole membership); AcTinG sustains a higher rung than
PAG on every link; PAG reaches 1080p from 100 Mbps up.  Our absolute
PAG cells sit one rung above the paper's on the slowest links because
our duplicate handling is lighter (see EXPERIMENTS.md).
"""


from benchmarks.conftest import print_header
from repro.analysis.quality import table2
from repro.streaming.video import LINK_CAPACITIES_KBPS, QUALITY_LADDER

PAPER = {
    "PAG": ["144p", "480p", "1080p", "1080p", "1080p"],
    "AcTinG": ["480p", "1080p", "1080p", "1080p", "1080p"],
    "RAC": [None] * 5,
}


def test_table2_quality_matrix(benchmark):
    table = benchmark.pedantic(
        lambda: table2(n_nodes=1000), rounds=1, iterations=1
    )
    print_header(
        "Table II — max sustainable quality per link (1000 nodes)",
        "PAG 144p@1.5M ... 1080p@100M+; AcTinG higher; RAC empty",
    )
    links = list(LINK_CAPACITIES_KBPS)
    header = f"{'protocol':<8}" + "".join(
        f"{l.split(' (')[0]:>18}" for l in links
    )
    print(header)
    for protocol, cells in table.items():
        row = f"{protocol:<8}" + "".join(
            f"{c.render():>18}" for c in cells
        )
        print(row)
        paper_row = "".join(
            f"{(q or '∅'):>18}" for q in PAPER[protocol]
        )
        print(f"{'paper':<8}{paper_row}")

    order = [q.name for q in QUALITY_LADDER]

    # RAC: the empty row, exactly as the paper.
    assert all(cell.quality is None for cell in table["RAC"])
    # AcTinG >= PAG on every link; both reach 1080p from 100 Mbps.
    for pag_cell, acting_cell in zip(table["PAG"], table["AcTinG"]):
        assert order.index(pag_cell.quality) <= order.index(
            acting_cell.quality
        )
    assert table["PAG"][2].quality == "1080p"
    assert table["AcTinG"][1].quality == "1080p"
    # ADSL cells: AcTinG exact match; PAG within one rung of the paper.
    assert table["AcTinG"][0].quality == "480p"
    assert table["PAG"][0].quality in ("144p", "240p")
    # Cell-level agreement score against the paper (report it).
    exact = sum(
        1
        for protocol in table
        for got, want in zip(
            [c.quality for c in table[protocol]], PAPER[protocol]
        )
        if got == want
    )
    print(f"\nexact cell matches with the paper: {exact}/15")
    assert exact >= 11


def test_table2_respects_capacity():
    """No chosen quality may exceed its link capacity."""
    table = table2(n_nodes=1000)
    for _protocol, cells in table.items():
        for cell, capacity in zip(cells, LINK_CAPACITIES_KBPS.values()):
            if cell.used_kbps is not None:
                assert cell.used_kbps <= capacity
