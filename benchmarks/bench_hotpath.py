"""Hot-path throughput — hashes/s, primes/s, engine rounds/s.

Not a figure of the paper but the perf ledger of this reproduction:
every run rewrites ``BENCH_hotpath.json`` (machine-readable, schema in
PERFORMANCE.md) so the crypto and engine throughput trajectory is
tracked PR over PR.  The paper's reference point is Table I: 4,800
homomorphic hashes/s/core at 512 bits with openssl; pure Python lands
well below that, gmpy2 closes most of the gap.

Scale knobs are shared with the other benches (``REPRO_BENCH_NODES``,
``REPRO_BENCH_ROUNDS``); the same measurements are importable from
``repro.analysis.hotpath`` and runnable via ``python -m repro bench``.
"""

from benchmarks.conftest import bench_nodes, bench_rounds, print_header
from repro.analysis.hotpath import SCHEMA_VERSION, run_hotpath_bench


def test_hotpath_bench(benchmark):
    report = benchmark.pedantic(
        run_hotpath_bench,
        kwargs={
            "out_path": "BENCH_hotpath.json",
            "engine_nodes": min(bench_nodes(), 60),
            "engine_rounds": min(bench_rounds(), 10),
        },
        rounds=1,
        iterations=1,
    )
    print_header(
        "Hot path — crypto and engine throughput",
        "Table I anchor: 4,800 homomorphic 512-bit hashes/s/core (openssl)",
    )
    print(f"backend              : {report['backend']}")
    print(f"hashes/s  256-bit    : {report['hashes_per_s']['256']:>12,.0f}")
    print(f"hashes/s  512-bit    : {report['hashes_per_s']['512']:>12,.0f}")
    print(
        "rekeys/s  512-bit    : "
        f"{report['rekey_fixed_base_per_s']['512']:>12,.0f} (fixed-base)"
    )
    print(f"primes/s  512-bit    : {report['primes_per_s']['512']:>12,.1f}")
    engine = report["engine"]
    print(
        f"engine rounds/s      : {engine['rounds_per_s']:>12,.2f} "
        f"({engine['nodes']} nodes, {engine['rounds']} rounds)"
    )
    parallel = report["parallel"]
    print(
        f"parallel (fig9)      : serial "
        f"{parallel['serial_rounds_per_s']:>8.2f} rounds/s on "
        f"{parallel['cpu_count']} cpu"
    )
    for row in parallel["rows"]:
        print(
            f"  {row['workers']} workers          : "
            f"{row['wall_rounds_per_s']:>8.2f} wall rounds/s, "
            f"{row['projected_multicore_rounds_per_s']:>8.2f} projected "
            f"multicore ({row['speedup_projected_multicore']:.2f}x)"
        )
    batch = report["batch_verify"]
    for row in batch["primitive"]:
        print(
            f"batched fold k={row['pairs']:<2}     : "
            f"{row['batched_folds_per_s']:>10,.1f} folds/s vs "
            f"{row['per_pair_folds_per_s']:>10,.1f} per-pair "
            f"({row['speedup']:.2f}x)"
        )
    ladder = report["shared_ladder"]
    print(
        f"shared ladder (fig9) : worker CPU "
        f"{ladder['with_table']['worker_busy_cpu_seconds']:.2f}s with vs "
        f"{ladder['without_table']['worker_busy_cpu_seconds']:.2f}s without "
        f"({ladder['worker_cpu_saved_fraction']:.1%} saved)"
    )
    matrix = report["meter_matrix"]
    print(
        f"meter matrix         : {matrix['vectorized_per_s']:>10,.0f} "
        f"aggs/s vectorised vs {matrix['columnar_per_s']:>10,.0f} "
        f"columnar ({matrix['speedup']:.2f}x at "
        f"{matrix['nodes']}x{matrix['rounds']})"
    )
    population = report["population"]
    print(
        f"population tier      : {population['nodes_per_sec']:>10,.0f} "
        f"nodes/s ({population['population']:,} nodes, "
        f"{population['rounds']} rounds, "
        f"{population['peak_rss_mb']:.0f} MiB peak RSS)"
    )
    print(f"written to           : {report['written_to']}")

    assert report["schema"] == SCHEMA_VERSION
    assert report["hashes_per_s"]["256"] > report["hashes_per_s"]["512"] / 4
    assert report["hashes_per_s"]["512"] > 0
    assert report["primes_per_s"]["512"] > 0
    assert engine["rounds_per_s"] > 0
    assert parallel["rows"], "parallel scaling rows missing"
    for row in parallel["rows"]:
        assert row["mode"] == "process"
        assert row["projected_multicore_rounds_per_s"] > 0
    assert batch["primitive"], "batched fold rows missing"
    for row in batch["primitive"]:
        assert row["speedup"] > 1.0, "batched fold should beat per-pair pow"
    assert batch["engine"]["identical"] is True
    assert batch["engine"]["batched_lifts"] > 0
    assert matrix["identical"] is True
    assert matrix["speedup"] > 1.0, (
        "the matrix aggregation should beat the columnar pass"
    )
    assert population["nodes_per_sec"] > 0
    assert population["peak_rss_mb"] > 0
    assert ladder["worker_cpu_saved_seconds"] == round(
        ladder["without_table"]["worker_busy_cpu_seconds"]
        - ladder["with_table"]["worker_busy_cpu_seconds"],
        4,
    )
    assert report["written_to"] == "BENCH_hotpath.json"
