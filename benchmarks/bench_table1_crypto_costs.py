"""Table I — RSA signatures and homomorphic hashes per second.

Paper result (1000 nodes, f = fm = 3):

    quality        144p  240p  360p  480p  720p  1080p
    payload Kbps     80   300   750  1000  2500   4500
    RSA sigs/s       33    33    33    33    33     33
    hashes/s        133   475  1170  1560  3934   7200

Two reproductions are printed: the closed-form operation counts (the
signature constant is *exactly* 33 at f = fm = 3 — it counts the
protocol's message complexity), and the measured counters of a packet
simulation.  Our hash count per update is ~1.5x the paper's because the
measured duplicate factor enters the classification term; the linear-in-
rate shape and the constant-signature row are the reproduced claims.
"""

import pytest

from benchmarks.conftest import print_header
from repro.analysis.costs import (
    hashes_per_second,
    signatures_per_second,
    table1_rows,
)
from repro.scenarios import get_scenario
from repro.streaming.video import QUALITY_LADDER

PAPER_HASHES = {
    "144p": 133,
    "240p": 475,
    "360p": 1170,
    "480p": 1560,
    "720p": 3934,
    "1080p": 7200,
}


def test_table1_closed_form(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    print_header(
        "Table I — crypto operations per second per node (f = fm = 3)",
        "signatures constant at 33; hashes linear in the chunk rate",
    )
    print(
        f"{'quality':>8} {'payload':>8} {'sigs/s':>7} "
        f"{'hashes/s':>9} {'paper':>7}"
    )
    for row in rows:
        print(
            f"{row.quality:>8} {row.payload_kbps:>8.0f} "
            f"{row.rsa_signatures_per_s:>7.0f} "
            f"{row.homomorphic_hashes_per_s:>9.0f} "
            f"{PAPER_HASHES[row.quality]:>7}"
        )

    # The paper's exact constant.
    assert all(r.rsa_signatures_per_s == 33.0 for r in rows)
    # Hashes scale linearly with the payload rate (same shape), and stay
    # within a 3x band of the paper's absolute numbers.
    for row in rows:
        assert row.homomorphic_hashes_per_s == pytest.approx(
            PAPER_HASHES[row.quality], rel=2.0
        )
    ratios = [
        r.homomorphic_hashes_per_s / r.payload_kbps for r in rows
    ]
    assert max(ratios) / min(ratios) < 1.3, "hashes must be ~linear in rate"


def test_table1_measured_by_simulator(scale):
    """Count real operations in a packet simulation and compare with
    the formulas."""
    n = min(scale["nodes"], 60)  # counters need no large membership
    spec = get_scenario("table1", nodes=n, rounds=scale["rounds"])
    config = spec.build_config()
    session = spec.build()
    session.run(spec.rounds)
    report = session.crypto_report()
    node_rounds = len(session.nodes) * session.current_round
    measured_sigs = report["signatures"] / node_rounds
    measured_hashes = report["homomorphic_hashes"] / node_rounds
    predicted_sigs = signatures_per_second(3, 3)
    predicted_hashes = hashes_per_second(QUALITY_LADDER[1], config)  # 240p=300
    print(
        f"\nmeasured by simulator (N={n}, 300 Kbps): "
        f"{measured_sigs:.1f} sigs/s (formula {predicted_sigs:.0f}), "
        f"{measured_hashes:.0f} hashes/s (formula {predicted_hashes:.0f})"
    )
    assert measured_sigs == pytest.approx(predicted_sigs, rel=0.5)
    assert measured_hashes == pytest.approx(predicted_hashes, rel=0.5)
