"""CI scenario-matrix sweep: run every registered scenario via the CLI.

Discovers the registry dynamically — a scenario added with
``register_scenario`` is exercised on the next push with no workflow
edit — runs ``repro run --scenario NAME`` (quick parameters where the
spec allows shrinking) as a real subprocess, and collects each run's
``--json`` summary into one ``BENCH_ci_scenarios.json`` artifact with
per-scenario wall-clock and byte rows.

Exit status is non-zero if any scenario fails, so an unrunnable
registration cannot land.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

from repro.scenarios import all_scenarios

#: Quick-parameter caps for shrinkable scenarios.
MAX_NODES = 24
MAX_ROUNDS = 8
MAX_POPULATION = 2000


def _quick_args(spec) -> list:
    """CLI override flags, empty when the spec pins concrete ids/rounds.

    Specs with churn, arrivals, an explicit strategy map or a rate
    schedule name concrete node ids and rounds; shrinking them would
    invalidate the declaration, so they run at declared scale (all such
    registered scenarios are already CI-sized).
    """
    if spec.churn or spec.arrivals or spec.node_strategies or (
        spec.rate_schedule
    ):
        return []
    args = []
    if spec.nodes > MAX_NODES:
        args += ["--nodes", str(MAX_NODES)]
    if spec.rounds > MAX_ROUNDS:
        args += ["--rounds", str(MAX_ROUNDS)]
    if spec.population > MAX_POPULATION:
        args += ["--population", str(MAX_POPULATION)]
    return args


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_ci_scenarios.json"
    rows = []
    failed = []
    for spec in all_scenarios():
        with tempfile.NamedTemporaryFile(
            suffix=".json", delete=False
        ) as handle:
            json_path = handle.name
        command = [
            sys.executable, "-m", "repro", "run",
            "--scenario", spec.name, "--json", json_path,
        ] + _quick_args(spec)
        start = time.perf_counter()
        try:
            proc = subprocess.run(command, capture_output=True, text=True)
            wall = time.perf_counter() - start
            if proc.returncode != 0:
                failed.append(spec.name)
                print(f"FAIL {spec.name} (exit {proc.returncode})")
                print(proc.stdout[-2000:])
                print(proc.stderr[-2000:])
                continue
            try:
                with open(json_path, encoding="utf-8") as fh:
                    summary = json.load(fh)
            except (OSError, ValueError) as exc:
                failed.append(spec.name)
                print(f"FAIL {spec.name} (unreadable summary: {exc})")
                continue
        finally:
            try:
                os.unlink(json_path)
            except OSError:
                pass
        rows.append({
            "scenario": spec.name,
            "protocol": spec.protocol,
            "nodes": summary["nodes"],
            "rounds": summary["rounds"],
            "policy": spec.policy or "serial",
            "wall_seconds": summary["wall_seconds"],
            "subprocess_seconds": round(wall, 4),
            "total_bytes": summary["total_bytes"],
            "mean_down_kbps": summary["mean_down_kbps"],
            "messages": summary["messages"],
            "verdicts": summary["verdicts"],
        })
        print(
            f"ok   {spec.name:<16} {summary['nodes']:>4} nodes "
            f"{summary['rounds']:>3} rounds  "
            f"{summary['wall_seconds']:>8.2f}s  "
            f"{summary['total_bytes']:>12,} bytes"
        )
    report = {
        "scenarios": rows,
        "registry_size": len(rows) + len(failed),
        "failed": failed,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path} ({len(rows)} scenarios, {len(failed)} failed)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
