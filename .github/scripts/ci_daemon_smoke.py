#!/usr/bin/env python
"""Two-process daemon smoke for CI.

Spins up two real ``repro daemon`` processes on localhost TCP, drives a
fig7-shaped session across them with ``repro session --verify-serial``
(which exits non-zero if the fleet's verdicts differ from an in-process
serial run of the same spec), and repeats with a free-rider scenario so
the parity check covers a non-empty verdict set.  Results land in a
junit XML artifact.

Usage: PYTHONPATH=src python .github/scripts/ci_daemon_smoke.py out.xml
"""

import os
import subprocess
import sys
import time
from xml.sax.saxutils import escape

CASES = [
    (
        "fig7-clean-run",
        ["--scenario", "fig7", "--nodes", "14", "--rounds", "6"],
    ),
    (
        "selfish-free-rider-convicted",
        ["--scenario", "selfish", "--nodes", "14", "--rounds", "6"],
    ),
]

DAEMONS_PER_CASE = 2


def run_case(flags):
    """Fresh daemons per case (a daemon serves one session and exits)."""
    daemons = []
    try:
        endpoints = []
        for _ in range(DAEMONS_PER_CASE):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "daemon",
                    "--listen",
                    "tcp://127.0.0.1:0",
                ],
                stdout=subprocess.PIPE,
                text=True,
            )
            daemons.append(proc)
            # First stdout line: "daemon listening on tcp://host:port"
            endpoints.append(proc.stdout.readline().split()[-1])
        started = time.perf_counter()
        session = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "session",
                *flags,
                "--daemons",
                ",".join(endpoints),
                "--verify-serial",
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        wall = time.perf_counter() - started
        for proc in daemons:
            proc.wait(timeout=60)
        daemon_rcs = [proc.returncode for proc in daemons]
        ok = session.returncode == 0 and all(rc == 0 for rc in daemon_rcs)
        detail = (
            f"session rc={session.returncode}, daemon rcs={daemon_rcs}\n"
            f"--- session stdout ---\n{session.stdout}\n"
            f"--- session stderr ---\n{session.stderr}"
        )
        return ok, wall, detail
    finally:
        for proc in daemons:
            if proc.poll() is None:
                proc.kill()


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "junit-daemon.xml"
    rows = []
    failures = 0
    for name, flags in CASES:
        ok, wall, detail = run_case(flags)
        print(f"[{'PASS' if ok else 'FAIL'}] {name} ({wall:.1f}s)")
        sys.stdout.write(detail + "\n")
        if not ok:
            failures += 1
        rows.append((name, ok, wall, detail))
    total_wall = sum(wall for _name, _ok, wall, _d in rows)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write('<?xml version="1.0" encoding="utf-8"?>\n')
        fh.write(
            f'<testsuite name="daemon-smoke" tests="{len(rows)}" '
            f'failures="{failures}" time="{total_wall:.1f}">\n'
        )
        for name, ok, wall, detail in rows:
            fh.write(
                f'  <testcase classname="daemon-smoke" name="{name}" '
                f'time="{wall:.1f}"'
            )
            if ok:
                fh.write("/>\n")
            else:
                fh.write(
                    f'><failure message="verdict parity or process '
                    f'failure">{escape(detail)}</failure></testcase>\n'
                )
        fh.write("</testsuite>\n")
    print(f"junit written to {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
