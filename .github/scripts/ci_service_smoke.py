#!/usr/bin/env python
"""End-to-end service-mode smoke for CI.

Starts a real ``repro serve`` process on localhost TCP, then drives it
exactly the way an operator would: poll health with ``repro ctl``
until the session is running, stream a handful of NDJSON events with
``repro watch --raw --max-events``, churn a node through the control
channel, and drain.  The serve process must exit 0 with its
"session complete" summary, having stopped before its declared round
budget (proof the drain, not the round counter, ended the run).
Results land in a junit XML artifact.

Usage: PYTHONPATH=src python .github/scripts/ci_service_smoke.py out.xml
"""

import json
import subprocess
import sys
import time
from xml.sax.saxutils import escape

SCENARIO = "fig7"
NODES = 20
# A generous round budget plus a per-round delay keeps the session
# alive while the smoke pokes at it; the drain ends it early.
ROUNDS = 60
ROUND_DELAY = 0.1
STREAMED_EVENTS = 8
EVENT_KINDS = {"state", "round", "meter", "counters", "verdict"}
POLL_DEADLINE_S = 30.0


def _ctl(endpoint, *argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", "ctl", endpoint, *argv],
        capture_output=True,
        text=True,
        timeout=60,
    )


def poll_until_running(endpoint):
    deadline = time.monotonic() + POLL_DEADLINE_S
    last = ""
    while time.monotonic() < deadline:
        proc = _ctl(endpoint, "health")
        last = proc.stdout + proc.stderr
        if proc.returncode == 0:
            health = json.loads(proc.stdout)
            if health["state"] == "running":
                return True, json.dumps(health, sort_keys=True)
        time.sleep(0.2)
    return False, f"health never reached running; last reply:\n{last}"


def stream_events(endpoint):
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "watch", endpoint,
            "--raw", "--max-events", str(STREAMED_EVENTS),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode != 0:
        return False, f"watch rc={proc.returncode}\n{proc.stderr}"
    lines = [ln for ln in proc.stdout.splitlines() if ln.strip()]
    if len(lines) != STREAMED_EVENTS:
        return False, f"expected {STREAMED_EVENTS} events:\n{proc.stdout}"
    kinds = [json.loads(line)["kind"] for line in lines]
    if not all(kind in EVENT_KINDS for kind in kinds):
        return False, f"unknown event kind in stream: {kinds}"
    return True, f"streamed kinds: {kinds}"


def churn_node(endpoint, node_id):
    proc = _ctl(endpoint, "churn", "--node", str(node_id))
    ok = proc.returncode == 0 and proc.stdout.startswith("ok:")
    return ok, proc.stdout + proc.stderr


def drain(endpoint):
    proc = _ctl(endpoint, "drain")
    ok = proc.returncode == 0 and proc.stdout.startswith("ok:")
    return ok, proc.stdout + proc.stderr


def finish(serve):
    try:
        stdout, stderr = serve.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        serve.kill()
        stdout, stderr = serve.communicate()
        return False, "serve did not exit after drain\n" + stdout + stderr
    detail = (
        f"serve rc={serve.returncode}\n"
        f"--- serve stdout ---\n{stdout}\n"
        f"--- serve stderr ---\n{stderr}"
    )
    if serve.returncode != 0 or "session complete:" not in stdout:
        return False, detail
    rounds_completed = int(
        stdout.split("session complete:", 1)[1].split()[0]
    )
    if not 0 < rounds_completed < ROUNDS:
        return False, f"drain did not end the run early\n{detail}"
    return True, detail


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "junit-service.xml"
    started = time.perf_counter()
    serve = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--scenario", SCENARIO,
            "--nodes", str(NODES),
            "--rounds", str(ROUNDS),
            "--round-delay", str(ROUND_DELAY),
            "--listen", "tcp://127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    rows = []
    try:
        # First stdout line: "service listening on tcp://host:port"
        endpoint = serve.stdout.readline().split()[-1]
        rows.append(
            ("serve-endpoint", True, f"listening on {endpoint}")
        )
        steps = [
            ("health-reaches-running",
             lambda: poll_until_running(endpoint)),
            ("event-stream-ndjson", lambda: stream_events(endpoint)),
            ("ctl-churn-node", lambda: churn_node(endpoint, 5)),
            ("ctl-drain", lambda: drain(endpoint)),
            ("serve-clean-exit", lambda: finish(serve)),
        ]
        for name, step in steps:
            ok, detail = step()
            rows.append((name, ok, detail))
            if not ok:
                break
    finally:
        if serve.poll() is None:
            serve.kill()
            serve.wait()
    total_wall = time.perf_counter() - started

    failures = 0
    for name, ok, detail in rows:
        print(f"[{'PASS' if ok else 'FAIL'}] {name}")
        sys.stdout.write(detail.rstrip() + "\n")
        if not ok:
            failures += 1
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write('<?xml version="1.0" encoding="utf-8"?>\n')
        fh.write(
            f'<testsuite name="service-smoke" tests="{len(rows)}" '
            f'failures="{failures}" time="{total_wall:.1f}">\n'
        )
        for name, ok, detail in rows:
            fh.write(
                f'  <testcase classname="service-smoke" name="{name}"'
            )
            if ok:
                fh.write("/>\n")
            else:
                fh.write(
                    f'><failure message="service smoke step failed">'
                    f"{escape(detail)}</failure></testcase>\n"
                )
        fh.write("</testsuite>\n")
    print(f"junit written to {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
