"""Fault injection: loss, delay, partitions, corruption, throttles.

The paper's system model notes that "using classical techniques we
handle omission failures" (section IV-A): a lost serve or ack triggers
the accusation path of Fig. 3, which re-delivers the content through
the accused node's monitors and exonerates honest parties via Confirm.
These fault injectors — all implemented as network drop rules — let the
tests exercise exactly those paths.

Two layers live here:

* **Injectors** (``RandomLoss``, ``LinkCut``, ``NodeOutage``,
  ``DelayRule``, ``Partition``, ``Corruption``, ``LinkBudget``) are
  stateful drop rules installed on a :class:`~repro.sim.network.Network`
  via ``add_drop_rule``.  Each one counts what it did and reports it
  through :meth:`stats`, so runs can surface fault tallies in their
  summaries.
* **Fault specs** (``LossFault``, ``DelayFault``, ``PartitionFault``,
  ``OutageFault``, ``LinkCutFault``, ``CorruptionFault``,
  ``BudgetFault``) are frozen declarations carried by
  ``ScenarioSpec.fault_schedule``.  They validate against the scenario's
  size, and :meth:`build` turns them into injectors with rng streams
  derived from the scenario seed — the same spec always produces the
  same fault schedule, byte for byte, under every execution policy.

Determinism: drop rules are only ever evaluated on the parent network
(replica workers run in capture mode, which bypasses rules), and the
parent evaluates them in the reconstructed serial send order.  Every
injector draws randomness from an explicit, seed-derived generator.

Invariant envelope: the accountability plane (monitor broadcasts, ack
relays, accusations, probes, confirms) is assumed reliable by the paper
— faults injected there can convict honest nodes.  The *data plane*
(key exchange, serves, attestations, acks) and the declaration seam
(ack copies, attestation relays, declaration acks) recover through
accusations and monitor rotation, so loss/delay/corruption restricted
to ``DATA_PLANE_KINDS`` preserves the zero-false-conviction invariant.
The fuzz harness (``repro.scenarios.fuzz``) draws only from that
envelope; unrestricted injectors remain available for targeted tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import (
    ClassVar,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.sim.message import Message
from repro.sim.rng import derive_seed

__all__ = [
    "DATA_PLANE_KINDS",
    "SAFE_CORRUPTION_KINDS",
    "RandomLoss",
    "LinkCut",
    "NodeOutage",
    "DelayRule",
    "Partition",
    "Corruption",
    "LinkBudget",
    "FaultSpec",
    "LossFault",
    "DelayFault",
    "PartitionFault",
    "OutageFault",
    "LinkCutFault",
    "CorruptionFault",
    "BudgetFault",
    "FAULT_SPEC_TYPES",
    "fault_report",
]

#: Default seed for injectors constructed outside a scenario; matches
#: ScenarioSpec's default (the paper's submission date).
_DEFAULT_SEED = 20160627

#: Message kinds whose loss/delay the protocol recovers from without
#: convicting anyone: the Fig. 5 exchange plus the declaration seam
#: (redeclaration rotates to the next monitor when no DeclarationAck
#: arrives).  The monitoring/accusation plane is NOT in this set — the
#: paper assumes reliable channels there.
DATA_PLANE_KINDS: frozenset = frozenset(
    {
        "key_request",
        "key_response",
        "serve",
        "attestation",
        "ack",
        "ack_copy",
        "attestation_relay",
        "declaration_ack",
    }
)

#: Kinds Corruption knows how to mutate; every mutation is caught by a
#: signature or hash check at the receiver and degrades to an omission.
SAFE_CORRUPTION_KINDS: frozenset = frozenset(
    {"serve", "attestation", "ack", "ack_copy", "attestation_relay"}
)

#: XOR mask applied to an update id when corrupting a Serve: far above
#: any real sequence number, so the tampered chunk can never collide
#: with a legitimate update.
_UID_FLIP = 1 << 48


def _derived_rng(seed: int, *labels) -> random.Random:
    """A reproducible generator in the style of ``sim/rng.py`` streams."""
    return random.Random(derive_seed(seed, "fault", *labels))


@dataclass
class RandomLoss:
    """Drop each matching message independently with a fixed probability.

    Attributes:
        probability: per-message drop probability.
        kinds: restrict losses to these message kinds (None = all).
        seed: root for the default rng when none is supplied.
        rng: seeded randomness (reproducible fault schedules).  Defaults
            to a generator derived from ``seed`` via ``sim/rng.py`` —
            never an unseeded ``random.Random``.
    """

    probability: float
    kinds: Optional[Set[str]] = None
    seed: int = _DEFAULT_SEED
    rng: Optional[random.Random] = None
    dropped: int = 0
    label: str = "loss"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.rng is None:
            self.rng = _derived_rng(self.seed, "random-loss")

    def __call__(self, message: Message) -> bool:
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.rng.random() < self.probability:
            self.dropped += 1
            return True
        return False

    def stats(self) -> Dict[str, int]:
        return {"dropped": self.dropped}


@dataclass
class LinkCut:
    """Silently discard traffic on specific directed links.

    ``kinds`` restricts the cut to a message-kind subset (None cuts
    everything).  An unrestricted cut severs the accountability plane
    too — e.g. ``monitor_broadcast`` between two monitors of the same
    node, which no redeclaration can route around (the declaration was
    acknowledged, so the declarer never retries) — and can therefore
    falsely convict honest nodes; confine cuts to
    :data:`DATA_PLANE_KINDS` when invariant 1 must hold.
    """

    links: Set[Tuple[int, int]]
    kinds: Optional[Set[str]] = None
    dropped: int = 0
    label: str = "link-cut"

    def __post_init__(self) -> None:
        for link in self.links:
            if len(link) != 2:
                raise ValueError(f"link {link!r} is not a (sender, "
                                 "recipient) pair")
            a, b = link
            if a == b:
                raise ValueError(f"link {link!r} is a self-link")
            if a < 0 or b < 0:
                raise ValueError(f"link {link!r} has a negative node id")

    def __call__(self, message: Message) -> bool:
        if (message.sender, message.recipient) in self.links and (
            self.kinds is None or message.kind in self.kinds
        ):
            self.dropped += 1
            return True
        return False

    @classmethod
    def between(
        cls, a: int, b: int, kinds: Optional[Set[str]] = None
    ) -> "LinkCut":
        """Cut both directions between two nodes."""
        return cls(links={(a, b), (b, a)}, kinds=kinds)

    def stats(self) -> Dict[str, int]:
        return {"dropped": self.dropped}


@dataclass
class NodeOutage:
    """A node is unreachable (and mute) during a round window.

    Models a crash-recovery outage: all traffic from and to the node is
    dropped while the outage lasts.  Accountability systems without
    failure detectors conflate crashes with refusals — the tests verify
    both that a *permanent* crash is convicted (it is indistinguishable
    from a selfish silent node) and that the rest of the membership
    keeps streaming.
    """

    node_id: int
    first_round: int
    last_round: int
    dropped: int = 0
    label: str = "outage"

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be non-negative")
        if self.first_round < 0:
            raise ValueError("first_round must be non-negative")
        if self.last_round < self.first_round:
            raise ValueError(
                f"empty outage window [{self.first_round}, "
                f"{self.last_round}]"
            )

    def __call__(self, message: Message) -> bool:
        if not self.first_round <= message.round_no <= self.last_round:
            return False
        if self.node_id in (message.sender, message.recipient):
            self.dropped += 1
            return True
        return False

    def stats(self) -> Dict[str, int]:
        return {"dropped": self.dropped}


@dataclass
class DelayRule:
    """Withhold matching messages and re-enqueue them a few sends later.

    A held message is released back onto the queue after ``triggers``
    further rule evaluations — or at the next round boundary, whichever
    comes first.  Both release points are fixed functions of the global
    send order, so delayed schedules stay bit-identical across execution
    policies.  The one-round cap keeps delays inside the protocol's
    tolerance: an ack held past the end-of-round obligation check would
    manufacture an accusation the sender cannot distinguish from a real
    omission (which is precisely what the accusation path then absorbs).

    Attributes:
        probability: chance of withholding each matching message.
        triggers: how many further evaluated sends pass before release.
        kinds: restrict delays to these message kinds (None = all).
    """

    probability: float
    triggers: int = 8
    kinds: Optional[Set[str]] = None
    seed: int = _DEFAULT_SEED
    rng: Optional[random.Random] = None
    delayed: int = 0
    released: int = 0
    label: str = "delay"
    _held: List[Tuple[int, Message]] = field(
        default_factory=list, repr=False
    )
    _trigger: int = field(default=0, repr=False)

    #: Marks this rule as a delayer: the network counts its withheld
    #: messages as delayed (not dropped) and polls it for releases.
    withholds_for_delay: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.triggers < 1:
            raise ValueError("triggers must be at least 1")
        if self.rng is None:
            self.rng = _derived_rng(self.seed, "delay")

    def __call__(self, message: Message) -> bool:
        self._trigger += 1
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.rng.random() < self.probability:
            self._held.append((self._trigger + self.triggers, message))
            self.delayed += 1
            return True
        return False

    def take_released(self) -> List[Message]:
        """Messages whose delay elapsed; called after each evaluation."""
        if not self._held:
            return []
        due = [m for when, m in self._held if when <= self._trigger]
        if due:
            self._held = [
                (when, m)
                for when, m in self._held
                if when > self._trigger
            ]
            self.released += len(due)
        return due

    def flush_delayed(self) -> List[Message]:
        """Round boundary: everything still held is released at once."""
        due = [m for _, m in self._held]
        self._held = []
        self.released += len(due)
        return due

    def stats(self) -> Dict[str, int]:
        return {"delayed": self.delayed, "released": self.released}


@dataclass
class Partition:
    """Bidirectional cut between a node group and the rest, with heal.

    During rounds ``first_round..last_round`` every message crossing
    the group boundary (in either direction) is dropped; traffic within
    either side flows normally, and the cut heals afterwards.  An
    optional ``kinds`` filter confines the partition to specific message
    kinds — a full partition also severs the accusation plane, which
    the paper's model assumes reliable, so fuzzing uses data-plane-only
    partitions and full ones are exercised by targeted tests.
    """

    group: Set[int]
    first_round: int
    last_round: int
    kinds: Optional[Set[str]] = None
    dropped: int = 0
    label: str = "partition"

    def __post_init__(self) -> None:
        if not self.group:
            raise ValueError("partition group must not be empty")
        if any(node < 0 for node in self.group):
            raise ValueError("partition group has a negative node id")
        if self.first_round < 0:
            raise ValueError("first_round must be non-negative")
        if self.last_round < self.first_round:
            raise ValueError(
                f"empty partition window [{self.first_round}, "
                f"{self.last_round}]"
            )

    def __call__(self, message: Message) -> bool:
        if not self.first_round <= message.round_no <= self.last_round:
            return False
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if (message.sender in self.group) != (
            message.recipient in self.group
        ):
            self.dropped += 1
            return True
        return False

    def stats(self) -> Dict[str, int]:
        return {"dropped": self.dropped}


@dataclass
class Corruption:
    """Byzantine in-flight mutation of message contents.

    Matching messages are tampered with (and *delivered*): a Serve gets
    a bit-flipped update id, an Attestation/Ack/AckCopy a flipped hash,
    an AttestationRelay a wrong cofactor.  Every mutation is
    size-preserving and breaks a signature or hash check at the
    receiver, so the protocol degrades it to an omission: unacked
    serves enter the accusation path, rejected declarations rotate to
    the next monitor.  ``max_corruptions`` bounds the blast radius —
    corrupting every redeclaration retry would exhaust the victim's
    monitor set, which no Byzantine *network* (as opposed to a
    Byzantine monitor coalition) can do in the paper's model.
    """

    kinds: Optional[Set[str]] = None
    probability: float = 1.0
    max_corruptions: Optional[int] = 1
    seed: int = _DEFAULT_SEED
    rng: Optional[random.Random] = None
    corrupted: int = 0
    label: str = "corruption"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be within (0, 1]")
        if self.max_corruptions is not None and self.max_corruptions < 1:
            raise ValueError("max_corruptions must be at least 1")
        if self.kinds is None:
            self.kinds = set(SAFE_CORRUPTION_KINDS)
        unknown = set(self.kinds) - SAFE_CORRUPTION_KINDS
        if unknown:
            raise ValueError(
                f"no corruption defined for kinds {sorted(unknown)}; "
                f"supported: {sorted(SAFE_CORRUPTION_KINDS)}"
            )
        if self.rng is None:
            self.rng = _derived_rng(self.seed, "corruption")

    def __call__(self, message: Message) -> bool:
        if (
            self.max_corruptions is not None
            and self.corrupted >= self.max_corruptions
        ):
            return False
        if message.kind not in self.kinds:
            return False
        if self.rng.random() >= self.probability:
            return False
        if self._mutate(message):
            self.corrupted += 1
        return False  # the corrupted message is delivered, not dropped

    def _mutate(self, message: Message) -> bool:
        kind = message.kind
        if kind == "serve":
            if not message.entries:
                return False
            entry = message.entries[0]
            tampered = replace(
                entry,
                update=replace(
                    entry.update, uid=entry.update.uid ^ _UID_FLIP
                ),
            )
            message.entries = (tampered,) + message.entries[1:]
            return True
        if kind == "attestation":
            att = message.attestation
            message.attestation = replace(
                att, hash_forward=att.hash_forward ^ 1
            )
            return True
        if kind in ("ack", "ack_copy"):
            ack = message.ack
            message.ack = replace(ack, hash_total=ack.hash_total ^ 1)
            return True
        if kind == "attestation_relay":
            message.cofactor ^= 1
            return True
        return False  # pragma: no cover - kinds validated in __post_init__

    def stats(self) -> Dict[str, int]:
        return {"corrupted": self.corrupted}


@dataclass
class LinkBudget:
    """Per-node download throttle (the Fig. 7 heterogeneity spread).

    Each throttled node has a per-round byte budget derived from its
    link capacity; matching messages beyond the budget are tail-dropped.
    By default only serves are throttled — the big payload carrier, and
    a kind whose loss the accusation path recovers — so a constrained
    node degrades to late (re-delivered) chunks instead of convictions.

    Attributes:
        node_kbps: download capacity per throttled node (others free).
        round_seconds: wall-clock length of one round (budget scaling).
        sizes: the network's WireSizes (pass ``network.sizes``).
        kinds: which message kinds consume budget (None = all).
    """

    node_kbps: Dict[int, float]
    round_seconds: float = 1.0
    sizes: Optional[object] = None
    kinds: Optional[Set[str]] = field(
        default_factory=lambda: {"serve"}
    )
    dropped: int = 0
    label: str = "budget"
    _used: Dict[Tuple[int, int], int] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        for node, kbps in self.node_kbps.items():
            if node < 0:
                raise ValueError("node_kbps has a negative node id")
            if kbps <= 0:
                raise ValueError(
                    f"node {node}: budget must be positive, got {kbps}"
                )
        if self.round_seconds <= 0:
            raise ValueError("round_seconds must be positive")

    def _capacity_bytes(self, kbps: float) -> float:
        return kbps * 1000.0 / 8.0 * self.round_seconds

    def __call__(self, message: Message) -> bool:
        kbps = self.node_kbps.get(message.recipient)
        if kbps is None:
            return False
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.sizes is None:
            raise RuntimeError(
                "LinkBudget needs wire sizes; pass sizes=network.sizes"
            )
        key = (message.recipient, message.round_no)
        used = self._used.get(key, 0)
        size = message.size_bytes(self.sizes)
        if used + size > self._capacity_bytes(kbps):
            self.dropped += 1
            return True
        self._used[key] = used + size
        return False

    def stats(self) -> Dict[str, int]:
        return {"dropped": self.dropped}


# ---------------------------------------------------------------------------
# Frozen fault declarations for ScenarioSpec.fault_schedule.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """Base class for declarative fault-schedule entries.

    Subclasses are frozen, repr-replayable dataclasses; ``build`` turns
    them into stateful injectors wired to a seed-derived rng stream.
    """

    kind: ClassVar[str] = "fault"

    def message_kinds(self) -> Optional[Set[str]]:
        kinds = getattr(self, "kinds", ())
        return set(kinds) if kinds else None

    def validate_for(self, nodes: int, rounds: int) -> None:
        """Range-check ids/windows against a scenario's dimensions."""

    def build(
        self,
        rng: random.Random,
        network,
        round_seconds: float = 1.0,
        label: str = "",
    ):
        raise NotImplementedError


def _check_node_ids(ids, nodes: int, what: str) -> None:
    for node in ids:
        if not 0 <= node < nodes:
            raise ValueError(
                f"{what}: node {node} outside the membership "
                f"[0, {nodes})"
            )


@dataclass(frozen=True)
class LossFault(FaultSpec):
    probability: float = 0.05
    kinds: Tuple[str, ...] = ()
    kind: ClassVar[str] = "loss"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def build(self, rng, network, round_seconds=1.0, label=""):
        return RandomLoss(
            probability=self.probability,
            kinds=self.message_kinds(),
            rng=rng,
            label=label or self.kind,
        )


@dataclass(frozen=True)
class DelayFault(FaultSpec):
    probability: float = 0.05
    triggers: int = 8
    kinds: Tuple[str, ...] = ()
    kind: ClassVar[str] = "delay"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.triggers < 1:
            raise ValueError("triggers must be at least 1")

    def build(self, rng, network, round_seconds=1.0, label=""):
        return DelayRule(
            probability=self.probability,
            triggers=self.triggers,
            kinds=self.message_kinds(),
            rng=rng,
            label=label or self.kind,
        )


@dataclass(frozen=True)
class PartitionFault(FaultSpec):
    group: Tuple[int, ...] = ()
    first_round: int = 0
    last_round: int = 0
    kinds: Tuple[str, ...] = ()
    kind: ClassVar[str] = "partition"

    def __post_init__(self) -> None:
        if not self.group:
            raise ValueError("partition group must not be empty")
        if any(node < 0 for node in self.group):
            raise ValueError("partition group has a negative node id")
        if self.first_round < 0:
            raise ValueError("first_round must be non-negative")
        if self.last_round < self.first_round:
            raise ValueError(
                f"empty partition window [{self.first_round}, "
                f"{self.last_round}]"
            )

    def validate_for(self, nodes: int, rounds: int) -> None:
        _check_node_ids(self.group, nodes, "PartitionFault")
        if self.first_round >= rounds:
            raise ValueError(
                f"PartitionFault window starting at round "
                f"{self.first_round} never takes effect in a "
                f"{rounds}-round scenario"
            )

    def build(self, rng, network, round_seconds=1.0, label=""):
        return Partition(
            group=set(self.group),
            first_round=self.first_round,
            last_round=self.last_round,
            kinds=self.message_kinds(),
            label=label or self.kind,
        )


@dataclass(frozen=True)
class OutageFault(FaultSpec):
    node_id: int = 0
    first_round: int = 0
    last_round: int = 0
    kind: ClassVar[str] = "outage"

    def __post_init__(self) -> None:
        # Reuse the injector's window/ids hardening at declaration time.
        NodeOutage(self.node_id, self.first_round, self.last_round)

    def validate_for(self, nodes: int, rounds: int) -> None:
        _check_node_ids((self.node_id,), nodes, "OutageFault")
        if self.first_round >= rounds:
            raise ValueError(
                f"OutageFault window starting at round "
                f"{self.first_round} never takes effect in a "
                f"{rounds}-round scenario"
            )

    def build(self, rng, network, round_seconds=1.0, label=""):
        return NodeOutage(
            node_id=self.node_id,
            first_round=self.first_round,
            last_round=self.last_round,
            label=label or self.kind,
        )


@dataclass(frozen=True)
class LinkCutFault(FaultSpec):
    links: Tuple[Tuple[int, int], ...] = ()
    kinds: Tuple[str, ...] = ()
    kind: ClassVar[str] = "link-cut"

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("links must not be empty")
        LinkCut(links=set(self.links))

    def validate_for(self, nodes: int, rounds: int) -> None:
        for a, b in self.links:
            _check_node_ids((a, b), nodes, "LinkCutFault")

    def build(self, rng, network, round_seconds=1.0, label=""):
        return LinkCut(
            links=set(self.links),
            kinds=self.message_kinds(),
            label=label or self.kind,
        )


@dataclass(frozen=True)
class CorruptionFault(FaultSpec):
    probability: float = 1.0
    max_corruptions: int = 1
    kinds: Tuple[str, ...] = ()
    kind: ClassVar[str] = "corruption"

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be within (0, 1]")
        if self.max_corruptions < 1:
            raise ValueError("max_corruptions must be at least 1")
        if self.kinds:
            unknown = set(self.kinds) - SAFE_CORRUPTION_KINDS
            if unknown:
                raise ValueError(
                    f"no corruption defined for kinds "
                    f"{sorted(unknown)}; supported: "
                    f"{sorted(SAFE_CORRUPTION_KINDS)}"
                )

    def build(self, rng, network, round_seconds=1.0, label=""):
        return Corruption(
            kinds=self.message_kinds(),
            probability=self.probability,
            max_corruptions=self.max_corruptions,
            rng=rng,
            label=label or self.kind,
        )


@dataclass(frozen=True)
class BudgetFault(FaultSpec):
    node_kbps: Tuple[Tuple[int, float], ...] = ()
    kinds: Tuple[str, ...] = ("serve",)
    kind: ClassVar[str] = "budget"

    def __post_init__(self) -> None:
        if not self.node_kbps:
            raise ValueError("node_kbps must not be empty")
        LinkBudget(node_kbps=dict(self.node_kbps))

    def validate_for(self, nodes: int, rounds: int) -> None:
        _check_node_ids(
            (node for node, _ in self.node_kbps), nodes, "BudgetFault"
        )

    def build(self, rng, network, round_seconds=1.0, label=""):
        return LinkBudget(
            node_kbps=dict(self.node_kbps),
            round_seconds=round_seconds,
            sizes=network.sizes,
            kinds=self.message_kinds(),
            label=label or self.kind,
        )


#: kind string -> declaration class; the fuzz harness uses this for the
#: JSON round trip of shrunken repro specs.
FAULT_SPEC_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        LossFault,
        DelayFault,
        PartitionFault,
        OutageFault,
        LinkCutFault,
        CorruptionFault,
        BudgetFault,
    )
}


def fault_report(rules) -> Dict[str, Dict[str, int]]:
    """Collect per-injector counters from a network's drop rules."""
    report: Dict[str, Dict[str, int]] = {}
    for index, rule in enumerate(rules):
        stats = getattr(rule, "stats", None)
        if stats is None:
            continue
        label = getattr(rule, "label", "") or type(rule).__name__
        key = label if label not in report else f"{label}#{index}"
        report[key] = stats()
    return report
