"""Fault injection: message loss, link cuts, and node outages.

The paper's system model notes that "using classical techniques we
handle omission failures" (section IV-A): a lost serve or ack triggers
the accusation path of Fig. 3, which re-delivers the content through
the accused node's monitors and exonerates honest parties via Confirm.
These fault injectors — all implemented as network drop rules — let the
tests exercise exactly those paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.sim.message import Message

__all__ = ["RandomLoss", "LinkCut", "NodeOutage"]


@dataclass
class RandomLoss:
    """Drop each matching message independently with a fixed probability.

    Attributes:
        probability: per-message drop probability.
        kinds: restrict losses to these message kinds (None = all).
        rng: seeded randomness (reproducible fault schedules).
    """

    probability: float
    kinds: Optional[Set[str]] = None
    rng: random.Random = field(default_factory=random.Random)
    dropped: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")

    def __call__(self, message: Message) -> bool:
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.rng.random() < self.probability:
            self.dropped += 1
            return True
        return False


@dataclass
class LinkCut:
    """Silently discard all traffic on specific directed links."""

    links: Set[Tuple[int, int]]
    dropped: int = 0

    def __call__(self, message: Message) -> bool:
        if (message.sender, message.recipient) in self.links:
            self.dropped += 1
            return True
        return False

    @classmethod
    def between(cls, a: int, b: int) -> "LinkCut":
        """Cut both directions between two nodes."""
        return cls(links={(a, b), (b, a)})


@dataclass
class NodeOutage:
    """A node is unreachable (and mute) during a round window.

    Models a crash-recovery outage: all traffic from and to the node is
    dropped while the outage lasts.  Accountability systems without
    failure detectors conflate crashes with refusals — the tests verify
    both that a *permanent* crash is convicted (it is indistinguishable
    from a selfish silent node) and that the rest of the membership
    keeps streaming.
    """

    node_id: int
    first_round: int
    last_round: int
    dropped: int = 0

    def __call__(self, message: Message) -> bool:
        if not self.first_round <= message.round_no <= self.last_round:
            return False
        if self.node_id in (message.sender, message.recipient):
            self.dropped += 1
            return True
        return False
