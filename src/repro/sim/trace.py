"""Traffic tracing: the global passive observer and test probes.

Section III's adversary "can monitor and record the traffic on network
links".  :class:`TraceRecorder` is that observer: it records message
metadata (never plaintext — the observer cannot invert encryptions) for
privacy analysis, and full references for white-box test assertions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.sim.message import Message

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """Metadata of one observed message (what a wiretap sees)."""

    round_no: int
    sender: int
    recipient: int
    kind: str
    size: int


@dataclass
class TraceRecorder:
    """Records all delivered traffic.

    Attributes:
        keep_messages: when True, full message objects are retained for
            white-box assertions in tests; the privacy analyses only use
            the metadata records, as a real wiretap would.
    """

    keep_messages: bool = False
    records: List[TraceRecord] = field(default_factory=list)
    messages: List[Message] = field(default_factory=list)

    def observe(self, message: Message, size: int) -> None:
        self.records.append(
            TraceRecord(
                round_no=message.round_no,
                sender=message.sender,
                recipient=message.recipient,
                kind=message.kind,
                size=size,
            )
        )
        if self.keep_messages:
            self.messages.append(message)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def kinds(self) -> Counter:
        """Histogram of observed message kinds."""
        return Counter(record.kind for record in self.records)

    def between(self, sender: int, recipient: int) -> List[TraceRecord]:
        return [
            r
            for r in self.records
            if r.sender == sender and r.recipient == recipient
        ]

    def in_round(self, round_no: int) -> List[TraceRecord]:
        return [r for r in self.records if r.round_no == round_no]

    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def link_set(self) -> set[Tuple[int, int]]:
        """All (sender, recipient) pairs that ever communicated."""
        return {(r.sender, r.recipient) for r in self.records}

    def clear(self) -> None:
        self.records.clear()
        self.messages.clear()
