"""Traffic tracing: the global passive observer and test probes.

Section III's adversary "can monitor and record the traffic on network
links".  :class:`TraceRecorder` is that observer: it records message
metadata (never plaintext — the observer cannot invert encryptions) for
privacy analysis, and full references for white-box test assertions.

:class:`ColumnarRoundSpill` is the population tier's on-disk trace
format: dense per-round rows over a fixed node universe, one
little-endian int64 binary file per field, so a million-node run's
per-round byte series stream to disk instead of accumulating in RAM.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.sim.message import Message

try:  # the columnar spill is numpy-backed (population tier only)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional extra
    _np = None

__all__ = ["TraceRecord", "TraceRecorder", "ColumnarRoundSpill"]


@dataclass(frozen=True)
class TraceRecord:
    """Metadata of one observed message (what a wiretap sees)."""

    round_no: int
    sender: int
    recipient: int
    kind: str
    size: int


@dataclass
class TraceRecorder:
    """Records all delivered traffic.

    Attributes:
        keep_messages: when True, full message objects are retained for
            white-box assertions in tests; the privacy analyses only use
            the metadata records, as a real wiretap would.
    """

    keep_messages: bool = False
    records: List[TraceRecord] = field(default_factory=list)
    messages: List[Message] = field(default_factory=list)

    def observe(self, message: Message, size: int) -> None:
        self.records.append(
            TraceRecord(
                round_no=message.round_no,
                sender=message.sender,
                recipient=message.recipient,
                kind=message.kind,
                size=size,
            )
        )
        if self.keep_messages:
            self.messages.append(message)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def kinds(self) -> Counter:
        """Histogram of observed message kinds."""
        return Counter(record.kind for record in self.records)

    def between(self, sender: int, recipient: int) -> List[TraceRecord]:
        return [
            r
            for r in self.records
            if r.sender == sender and r.recipient == recipient
        ]

    def in_round(self, round_no: int) -> List[TraceRecord]:
        return [r for r in self.records if r.round_no == round_no]

    def total_bytes(self) -> int:
        return sum(r.size for r in self.records)

    def link_set(self) -> set[Tuple[int, int]]:
        """All (sender, recipient) pairs that ever communicated."""
        return {(r.sender, r.recipient) for r in self.records}

    def clear(self) -> None:
        self.records.clear()
        self.messages.clear()


class ColumnarRoundSpill:
    """Columnar on-disk per-round store over a fixed node universe.

    Each round appends one dense int64 row per field (``up``/``down``
    bytes by default) to that field's binary file; a small in-RAM
    buffer batches writes, so memory stays bounded by
    ``buffer_rounds * n_nodes * 8`` bytes per field regardless of how
    many rounds the run lasts.  Rows are raw little-endian int64, so a
    row's file offset is simply ``round * n_nodes * 8`` and windowed
    reads stream back in bounded chunks.

    Node ids are row indices ``0..n_nodes-1``; callers with a global id
    space put their offset on top (see
    :class:`~repro.sim.metrics.SpilledMeter`).
    """

    _CHUNK_ROUNDS = 16

    def __init__(
        self,
        n_nodes: int,
        directory: Optional[str] = None,
        fields: Tuple[str, ...] = ("up", "down"),
        buffer_rounds: int = 4,
    ) -> None:
        if _np is None:  # pragma: no cover - numpy is baked into CI
            raise RuntimeError("the columnar spill requires numpy")
        if n_nodes < 1:
            raise ValueError("spill needs a non-empty node universe")
        if not fields:
            raise ValueError("spill needs at least one field")
        if buffer_rounds < 1:
            raise ValueError("buffer must hold at least one round")
        self.n_nodes = n_nodes
        self.fields = tuple(fields)
        self.buffer_rounds = buffer_rounds
        self._owns_directory = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-spill-")
        self.directory = directory
        self._paths = {
            name: os.path.join(directory, f"{name}.i64")
            for name in self.fields
        }
        for path in self._paths.values():
            # Truncate stale files: a reused spill dir must not leak a
            # previous run's rows into this one's round numbering.
            open(path, "wb").close()
        self._buffers: Dict[str, List[object]] = {
            name: [] for name in self.fields
        }
        self._flushed_rounds = 0
        self._closed = False

    def _ensure_open(self) -> None:
        """Reject reads and writes on a closed spill explicitly.

        Closing removes an owned directory, so a late ``read_round`` /
        ``window_sum`` would otherwise surface as a raw
        ``FileNotFoundError`` from whatever path it opened first.
        """
        if self._closed:
            raise RuntimeError(
                "spill is closed (its files are gone); read the data "
                "before close()"
            )

    def __enter__(self) -> "ColumnarRoundSpill":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def rounds_written(self) -> int:
        """Rounds appended so far (flushed or still buffered)."""
        return self._flushed_rounds + len(self._buffers[self.fields[0]])

    def append_round(self, rows: Mapping[str, object]) -> None:
        """Append one round: a dense row per field, all fields at once."""
        self._ensure_open()
        if set(rows) != set(self.fields):
            raise ValueError(
                f"round rows must cover exactly {sorted(self.fields)}, "
                f"got {sorted(rows)}"
            )
        staged = {}
        for name, row in rows.items():
            arr = _np.ascontiguousarray(row, dtype=_np.int64)
            if arr.shape != (self.n_nodes,):
                raise ValueError(
                    f"field {name!r} row has shape {arr.shape}, "
                    f"expected ({self.n_nodes},)"
                )
            staged[name] = arr
        for name, arr in staged.items():
            self._buffers[name].append(arr)
        if len(self._buffers[self.fields[0]]) >= self.buffer_rounds:
            self.flush()

    def flush(self) -> None:
        """Write buffered rounds to disk (little-endian int64 rows)."""
        if self._closed:
            return
        for name in self.fields:
            buffered = self._buffers[name]
            if not buffered:
                continue
            block = _np.concatenate(buffered)
            if block.dtype.byteorder == ">":  # pragma: no cover
                block = block.astype("<i8")
            with open(self._paths[name], "ab") as fh:
                fh.write(block.tobytes())
            buffered.clear()
        self._flushed_rounds = self._disk_rounds()

    def _disk_rounds(self) -> int:
        row_bytes = self.n_nodes * 8
        size = os.path.getsize(self._paths[self.fields[0]])
        return size // row_bytes

    def _check_field(self, field_name: str) -> None:
        if field_name not in self._paths:
            raise ValueError(
                f"unknown spill field {field_name!r}; "
                f"have {sorted(self.fields)}"
            )

    def read_round(self, field_name: str, rnd: int):
        """One round's dense row for a field, as an int64 array."""
        self._ensure_open()
        self._check_field(field_name)
        if not 0 <= rnd < self.rounds_written:
            raise ValueError(
                f"round {rnd} outside the {self.rounds_written} "
                "spilled rounds"
            )
        self.flush()
        row_bytes = self.n_nodes * 8
        with open(self._paths[field_name], "rb") as fh:
            fh.seek(rnd * row_bytes)
            data = fh.read(row_bytes)
        return _np.frombuffer(data, dtype="<i8").astype(
            _np.int64, copy=False
        )

    def window_sum(
        self, field_name: str, first_round: int, last_round: int
    ):
        """Per-node sum over an inclusive round window, streamed.

        Reads at most ``_CHUNK_ROUNDS`` rows at a time, so a window sum
        over a long run never materialises the full (node × round)
        block in memory.  Rounds beyond what was written contribute
        zero (matching :class:`~repro.sim.metrics.BandwidthMeter`'s
        padded-series semantics).
        """
        self._ensure_open()
        self._check_field(field_name)
        if first_round < 0:
            raise ValueError(
                f"first_round must be non-negative, got {first_round}"
            )
        if last_round < first_round:
            raise ValueError(
                f"inverted round window: last_round {last_round} "
                f"precedes first_round {first_round}"
            )
        self.flush()
        last = min(last_round, self.rounds_written - 1)
        total = _np.zeros(self.n_nodes, dtype=_np.int64)
        if last < first_round:
            return total
        row_bytes = self.n_nodes * 8
        with open(self._paths[field_name], "rb") as fh:
            rnd = first_round
            while rnd <= last:
                count = min(self._CHUNK_ROUNDS, last - rnd + 1)
                fh.seek(rnd * row_bytes)
                block = _np.frombuffer(
                    fh.read(count * row_bytes), dtype="<i8"
                ).reshape(count, self.n_nodes)
                total += block.sum(axis=0, dtype=_np.int64)
                rnd += count
        return total

    def bytes_on_disk(self) -> int:
        """Total spill file size (flushed rows only)."""
        self._ensure_open()
        return sum(
            os.path.getsize(path) for path in self._paths.values()
        )

    def close(self) -> None:
        """Flush and, when the spill owns its directory, remove it."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)
