"""Pluggable execution policies for the round-drain loop.

The engine's drain loop is the hottest non-crypto path of the
simulator: every message of every round passes through it.  The paper's
deployments run nodes on independent machines, so within a drain batch
(one quiescence step of a round) nodes are independent until they send.
This module makes that structure explicit:

* :class:`SerialPolicy` delivers a batch one message at a time in FIFO
  order — byte-for-byte the engine behaviour before policies existed.
* :class:`ShardedPolicy` partitions each batch by *recipient* across a
  fixed number of shards.  Per-recipient FIFO order is preserved (all
  messages to one node stay in one shard, in order), each shard's
  deliveries are metered into a private :class:`~repro.sim.network.SendCapture`,
  and the captures are merged into the shared network in shard-index
  order at batch end — so the combined accounting is deterministic and
  the per-node byte totals match the serial schedule exactly.
* :class:`ParallelShardedPolicy` turns that partition/capture/merge
  contract into real worker-backed rounds.  Each shard owns the nodes
  with ``node_id % workers == shard`` and holds a *replica* of the whole
  session, rebuilt deterministically from the scenario spec inside the
  worker.  The engine hands the policy the round barriers
  (``begin_round`` fan-out, every drain batch, ``end_round``); each
  worker executes only the lifecycle calls and deliveries of its owned
  nodes, buffering sends in a private capture, and the parent merges the
  captures by ``(trigger_index, seq)`` — the exact order a serial walk
  would have produced.  Taps, drop rules, the shared meter and the
  pending queue live only in the parent, so traces, drops and byte
  accounting are bit-identical to :class:`SerialPolicy` by construction.

  Workers run on a :mod:`concurrent.futures` pool: one single-worker
  ``ProcessPoolExecutor`` per shard (pinning each shard to its replica
  process) when the session bootstrap is picklable, with a thread-pool
  fallback otherwise, and a synchronous ``serialized`` mode for
  deterministic timing and debugging.  PAG nodes interact exclusively
  through messages (monitors defer their traffic to a next-round
  outbox), which is what makes replica execution exact: a node's state
  is a pure function of its constructor and the ordered lifecycle calls
  it receives, all of which are routed to exactly one worker.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
)

from repro.sim.network import RemoteSend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.message import Message
    from repro.sim.network import Network
    from repro.sim.node import SimNode

__all__ = [
    "ExecutionPolicy",
    "SerialPolicy",
    "ShardedPolicy",
    "ParallelShardedPolicy",
    "ParallelStats",
    "DaemonPolicy",
    "make_policy",
]

#: ``nodes_get(node_id)`` -> the node instance, or None after churn.
NodeLookup = Callable[[int], Optional["SimNode"]]


class ExecutionPolicy:
    """Strategy for delivering one drain batch to its recipients.

    Beyond :meth:`deliver`, the engine offers policies ownership of the
    per-round node lifecycle: :meth:`begin_nodes` / :meth:`end_nodes`
    may execute the round fan-out themselves (returning True), and
    membership changes are announced through :meth:`notify_add` /
    :meth:`notify_remove`.  The defaults decline ownership and ignore
    membership, which keeps :class:`SerialPolicy` and
    :class:`ShardedPolicy` byte-for-byte on the pre-handoff engine
    path.
    """

    name: str = "abstract"

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        """Deliver every message of ``batch``; replies land in the
        network's pending queue for the next batch."""
        raise NotImplementedError

    # -- round barriers (ownership handoff) --------------------------------

    def begin_nodes(
        self,
        round_no: int,
        nodes: Sequence["SimNode"],
        network: "Network",
    ) -> bool:
        """Run ``begin_round`` for every node, or decline (return False)
        and let the engine run the loop inline."""
        return False

    def end_nodes(
        self,
        round_no: int,
        nodes: Sequence["SimNode"],
        network: "Network",
    ) -> bool:
        """Run ``end_round`` for every node, or decline (return False)."""
        return False

    # -- membership --------------------------------------------------------

    def notify_add(self, node: "SimNode") -> None:
        """A node joined the engine (always before the first round)."""

    def notify_remove(self, node_id: int) -> None:
        """A node left the engine (churn between rounds)."""

    # -- lifecycle ---------------------------------------------------------

    def sync_session(self, session) -> None:
        """Bring the session's reporting state up to date (no-op unless
        the policy executes nodes somewhere other than the session's own
        objects)."""

    def close(self) -> None:
        """Release any execution resources (worker pools); the policy
        may be reused afterwards."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class SerialPolicy(ExecutionPolicy):
    """One-at-a-time FIFO delivery — the reference schedule.

    Replies sent while the batch is processed go straight onto the
    shared queue, so the delivery order is identical to one-at-a-time
    queue popping (the pre-policy engine behaviour, bit for bit).
    """

    name = "serial"

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        for message in batch:
            recipient = nodes_get(message.recipient)
            if recipient is None:
                # Recipient left the system (churn); gossip tolerates
                # this.
                continue
            recipient.on_message(message)


class DaemonPolicy(ExecutionPolicy):
    """Serial FIFO delivery through the v1 wire codec (loopback).

    Every message whose type has a wire schema is encoded, framed,
    reassembled and decoded before reaching its recipient — exactly the
    byte path of the node daemon's loopback transport, without sockets
    or an event loop.  Because the codec round-trip is the identity on
    message values and the network meters sizes at send time, the
    schedule, byte accounting, crypto-op counts and verdicts are
    bit-identical to :class:`SerialPolicy`; the differential suite
    holds that equality over the whole scenario registry.

    Message types outside the PAG wire catalogue (the AcTinG baseline's
    audit traffic, the push baseline) pass through unencoded and are
    tallied in ``passthrough``.
    """

    name = "daemon"

    def __init__(self) -> None:
        self.frames = 0
        self.bytes_on_wire = 0
        self.passthrough = 0
        self._assembler = None

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        # Lazy import: repro.net pulls in the message catalogue, which
        # the bare engine path never needs.
        from repro.net import wire

        if self._assembler is None:
            self._assembler = wire.FrameAssembler()
        assembler = self._assembler
        for message in batch:
            recipient = nodes_get(message.recipient)
            if recipient is None:
                # Recipient left the system (churn); gossip tolerates
                # this.
                continue
            if not wire.encodable(message):
                self.passthrough += 1
                recipient.on_message(message)
                continue
            payloads = assembler.feed(wire.frame(wire.encode_message(message)))
            if len(payloads) != 1:  # pragma: no cover - codec invariant
                raise RuntimeError(
                    f"loopback frame did not reassemble 1:1 "
                    f"({len(payloads)} payloads)"
                )
            self.frames += 1
            self.bytes_on_wire += len(payloads[0]) + 4
            recipient.on_message(wire.decode_message(payloads[0]))


def _deliver_sharded(
    batch: Sequence["Message"],
    nodes_get: NodeLookup,
    network: "Network",
    shards: int,
) -> None:
    """Recipient-partitioned capture/merge delivery on the live nodes.

    The in-process shard loop shared by :class:`ShardedPolicy` and the
    bootstrap-less fallback of :class:`ParallelShardedPolicy`.
    """
    buckets: List[List[tuple]] = [[] for _ in range(shards)]
    for index, message in enumerate(batch):
        buckets[message.recipient % shards].append((index, message))
    captures = []
    for bucket in buckets:
        if not bucket:
            continue
        capture = network.begin_capture()
        try:
            for index, message in bucket:
                recipient = nodes_get(message.recipient)
                if recipient is None:
                    continue
                # Tag replies with the batch position of the message
                # that triggered them, so the merge can reconstruct
                # the serial send order.
                capture.trigger_index = index
                recipient.on_message(message)
        finally:
            network.release_capture()
        captures.append(capture)
    network.merge_captures(captures)


@dataclass
class ShardedPolicy(ExecutionPolicy):
    """Partition each batch by recipient across ``shards`` shards.

    Recipients map to shards by ``node_id % shards``, so the partition
    is stable across batches and rounds.  All messages to one recipient
    land in one shard in their original order — per-recipient FIFO is
    preserved — while sends from different shards are buffered apart
    and merged in shard-index order, keeping metering and the next
    batch's queue deterministic.

    Args:
        shards: number of partitions (>= 1; 1 degenerates to a serial
            schedule with capture overhead).
    """

    shards: int = 4
    name = "sharded"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shard count must be at least 1")

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        _deliver_sharded(batch, nodes_get, network, self.shards)


# ---------------------------------------------------------------------------
# Parallel backend: replicated shard workers
# ---------------------------------------------------------------------------


def _ops_snapshot(session) -> Dict[str, int]:
    """Protocol-level operation counters of a session (PAG only; the
    AcTinG baseline keeps no crypto tallies).

    The hasher's cache buckets travel with the operation count: every
    protocol-level hash call lands in exactly one bucket, so grafting
    ``hashes`` without them would leave the parent's
    ``cache_stats()`` hit-rate denominator missing the workers' calls.
    """
    context = getattr(session, "context", None)
    if context is None:
        return {}
    hasher = context.hasher
    return {
        "hashes": hasher.operations,
        "hash_memo_hits": hasher.memo_hits,
        "hash_fixed_base_hits": hasher.fixed_base_hits,
        "hash_cold_powmods": hasher.cold_powmods,
        "hash_batched_lifts": hasher.batched_lifts,
        "hash_shared_ladder_seeds": hasher.shared_ladder_seeds,
        "encryptions": context.counters.encryptions,
        "decryptions": context.counters.decryptions,
        "prime_generations": context.counters.prime_generations,
        "signatures": context.signer.counters.signatures,
        "verifications": context.signer.counters.verifications,
    }


def _apply_ops(session, baseline: Dict[str, int], run_ops: Dict[str, int]):
    """Graft summed per-worker operation deltas onto the parent session.

    Operation counts are tallied per protocol call (caching never
    changes them — see :class:`~repro.crypto.homomorphic.HomomorphicHasher`),
    so the run-phase counts partition exactly by executing node and the
    serial total is ``setup + sum(worker deltas)``.  Idempotent: the
    parent's setup baseline is fixed at bind time.
    """
    context = getattr(session, "context", None)
    if context is None:
        return
    hasher = context.hasher
    hasher.operations = baseline["hashes"] + run_ops.get("hashes", 0)
    for attr, key in (
        ("memo_hits", "hash_memo_hits"),
        ("fixed_base_hits", "hash_fixed_base_hits"),
        ("cold_powmods", "hash_cold_powmods"),
        ("batched_lifts", "hash_batched_lifts"),
        ("shared_ladder_seeds", "hash_shared_ladder_seeds"),
    ):
        setattr(hasher, attr, baseline.get(key, 0) + run_ops.get(key, 0))
    counters = context.counters
    counters.encryptions = baseline["encryptions"] + run_ops.get(
        "encryptions", 0
    )
    counters.decryptions = baseline["decryptions"] + run_ops.get(
        "decryptions", 0
    )
    counters.prime_generations = baseline["prime_generations"] + run_ops.get(
        "prime_generations", 0
    )
    signer = context.signer.counters
    signer.signatures = baseline["signatures"] + run_ops.get("signatures", 0)
    signer.verifications = baseline["verifications"] + run_ops.get(
        "verifications", 0
    )


def _export_node_state(node) -> Dict[str, object]:
    """Reporting-level state of one node, as plain picklable data.

    Covers everything :class:`~repro.scenarios.spec.ScenarioResult` and
    the session reporting helpers read: monitor verdicts (PAG), verdict
    logs (AcTinG), update stores (playback continuity) and the source's
    released schedule.
    """
    state: Dict[str, object] = {}
    monitor = getattr(node, "monitor", None)
    if monitor is not None and hasattr(monitor, "verdicts"):
        state["monitor_verdicts"] = monitor.verdicts
    if monitor is not None and getattr(monitor, "counters", None):
        # Accusation-path tallies travel wholesale per node, like the
        # verdict log: the parent's engines never ran the rounds, so
        # the replica's counters are authoritative, not deltas.
        state["monitor_counters"] = monitor.counters
    verdicts = getattr(node, "verdicts", None)
    if verdicts is not None and not callable(verdicts):
        state["verdict_log"] = verdicts
    store = getattr(node, "store", None)
    if store is not None:
        state["store"] = store
    released = getattr(node, "released", None)
    if released is not None:
        state["released"] = released
    return state


def _apply_node_state(node, state: Dict[str, object]) -> None:
    if "monitor_verdicts" in state:
        node.monitor.verdicts = state["monitor_verdicts"]
    if "monitor_counters" in state:
        node.monitor.counters = state["monitor_counters"]
    if "verdict_log" in state:
        node.verdicts = state["verdict_log"]
    if "store" in state:
        node.store = state["store"]
    if "released" in state:
        node.released = state["released"]


class _SpecBootstrap:
    """Rebuild a scenario's session inside a worker.

    Picklable by construction: a :class:`~repro.scenarios.spec.ScenarioSpec`
    is frozen plain data, and ``spec.build()`` is a deterministic
    function of the spec (all randomness is seed-derived), so every
    replica starts from byte-identical state.

    ``shared_ladders`` optionally carries a read-only
    :class:`~repro.crypto.backend.SharedLadderTable` built once in the
    parent: fork-mode process workers inherit its pages for free (the
    bootstrap is created before the pools start), spawn and thread modes
    ship/share it through this object, and every replica's hasher adopts
    it instead of rebuilding identical fixed-base tables.
    """

    def __init__(self, spec, shared_ladders=None) -> None:
        self.spec = spec
        self.shared_ladders = shared_ladders

    def __call__(self):
        session = self.spec.build()
        if self.shared_ladders is not None:
            context = getattr(session, "context", None)
            if context is not None:
                context.hasher.adopt_shared_ladders(self.shared_ladders)
        return session


class _ReplicaWorker:
    """One shard's replica session and its execution loop.

    Lives in a dedicated worker process (process mode) or in the parent
    process (thread/serialized modes, one instance per shard, never
    touched by two tasks at once).  Executes only the lifecycle calls
    and deliveries the parent routes here — the owned nodes — so the
    replica's owned-node state tracks the authoritative schedule exactly
    while non-owned nodes stay frozen at construction and are never
    read.
    """

    def __init__(
        self,
        bootstrap,
        shard: int,
        workers: int,
        shared_stash: Optional[dict] = None,
    ) -> None:
        self.session = bootstrap()
        self.simulator = self.session.simulator
        self.network = self.simulator.network
        self.shard = shard
        self.workers = workers
        self.baseline = _ops_snapshot(self.session)
        #: payloads of sends awaiting their delivery barrier, keyed by
        #: ``(trigger_index, seq)``.  In-process workers (thread /
        #: serialized modes) share one stash, so no payload is ever
        #: serialised; process workers keep a private stash for their
        #: intra-shard sends and ship the rest as pre-partitioned blobs.
        self._stash: dict = shared_stash if shared_stash is not None else {}
        self._shares_stash = shared_stash is not None

    def run_phase(
        self,
        phase: str,
        round_no: int,
        items: List[tuple],
        fast: bool,
        blobs: Optional[List[bytes]] = None,
        remote: bool = False,
        barrier_seq: int = 0,
    ):
        """Execute one barrier's work on the owned nodes.

        ``items`` is ``[(global_index, node_id), ...]`` for lifecycle
        phases, ``[(global_index, message), ...]`` for full-fidelity
        deliveries, and ``[(global_index, key), ...]`` for metadata-mode
        deliveries (payloads looked up in the stash and in ``blobs``
        shipped from other shards).  The global index becomes the
        capture's ``trigger_index`` so the parent reconstructs the
        serial send order.

        Returns ``("capture", capture, wall_s, cpu_s)`` or, with
        ``fast`` set (no parent-side taps/drop rules),
        ``("fast", meta, outbound_blobs, wall_s, cpu_s)`` where ``meta``
        is ``[(trigger, seq, sender, recipient, size), ...]`` and
        ``outbound_blobs`` maps destination shards to pickled
        ``[(key, message), ...]`` lists.  Stash/blob keys are
        ``(barrier_seq, trigger, seq)``: the parent's barrier counter
        scopes them globally, so sends of different barriers can never
        collide in the shared stash while another shard's pops are still
        in flight.
        """
        wall0 = time.perf_counter()
        cpu0 = time.thread_time()
        network = self.network
        network.current_round = round_no
        nodes_get = self.simulator.nodes.get
        inbound: dict = {}
        for blob in blobs or ():
            inbound.update(pickle.loads(blob))
        capture = network.begin_capture()
        try:
            if phase == "deliver":
                stash = self._stash
                for index, payload in items:
                    if remote:
                        message = inbound.pop(payload, None)
                        if message is None:
                            message = stash.pop(payload, None)
                        if message is None:
                            raise RuntimeError(
                                f"shard {self.shard}: no payload for "
                                f"queued send {payload!r}"
                            )
                    else:
                        message = payload
                    node = nodes_get(message.recipient)
                    if node is None:
                        continue
                    capture.trigger_index = index
                    node.on_message(message)
            elif phase == "begin":
                for index, node_id in items:
                    node = nodes_get(node_id)
                    if node is None:
                        continue
                    capture.trigger_index = index
                    node.begin_round(round_no)
            elif phase == "end":
                for index, node_id in items:
                    node = nodes_get(node_id)
                    if node is None:
                        continue
                    capture.trigger_index = index
                    node.end_round(round_no)
            else:  # pragma: no cover - protocol misuse
                raise ValueError(f"unknown phase {phase!r}")
        finally:
            network.release_capture()
        if not fast:
            return (
                "capture",
                capture,
                time.perf_counter() - wall0,
                time.thread_time() - cpu0,
            )
        meta = []
        outbound: Dict[int, list] = {}
        stash = self._stash
        for trigger, seq, message, size in capture.entries:
            meta.append(
                (trigger, seq, message.sender, message.recipient, size)
            )
            key = (barrier_seq, trigger, seq)
            if self._shares_stash:
                stash[key] = message
                continue
            dest = message.recipient % self.workers
            if dest == self.shard:
                stash[key] = message
            else:
                outbound.setdefault(dest, []).append((key, message))
        blobs_out = {
            dest: pickle.dumps(pairs, pickle.HIGHEST_PROTOCOL)
            for dest, pairs in outbound.items()
        }
        return (
            "fast",
            meta,
            blobs_out,
            time.perf_counter() - wall0,
            time.thread_time() - cpu0,
        )

    def remove(self, node_id: int) -> None:
        """Mirror a parent-side churn removal on the replica."""
        session = self.session
        remove = getattr(session, "remove_node", None)
        if remove is not None:
            remove(node_id)
            return
        self.simulator.remove_node(node_id)
        nodes = getattr(session, "nodes", None)
        if nodes is not None:
            nodes.pop(node_id, None)

    def admit(self, node_id: int) -> None:
        """Mirror a parent-side join (admission) on the replica.

        The replica was rebuilt from the same spec, so it holds its own
        byte-identical pending instance of the arriving node; admitting
        by id keeps node state out of the scatter/gather protocol.
        """
        admit = getattr(self.session, "admit_node", None)
        if admit is None:
            raise RuntimeError(
                f"shard {self.shard}: replica session cannot admit "
                f"node {node_id} (no pending-arrival support)"
            )
        admit(node_id)

    def collect(self) -> Dict[str, object]:
        """Reporting state of the owned nodes plus run-phase op deltas."""
        current = _ops_snapshot(self.session)
        ops = {
            key: current[key] - self.baseline[key] for key in current
        }
        nodes: Dict[int, Dict[str, object]] = {}
        for node_id, node in self.simulator.nodes.items():
            if node_id % self.workers != self.shard:
                continue
            state = _export_node_state(node)
            if state:
                nodes[node_id] = state
        return {"ops": ops, "nodes": nodes}


#: Per-process replica, installed by the pool initializer.  Each shard
#: owns a single-worker ProcessPoolExecutor, so one process hosts
#: exactly one replica for its whole life.
_PROCESS_REPLICA: Optional[_ReplicaWorker] = None


def _init_process_replica(  # lint: replica-scope
    bootstrap, shard: int, workers: int
) -> None:
    # lint: allow[PAR302] pool initializer installing the per-process
    # replica slot; runs only inside the worker process
    global _PROCESS_REPLICA
    _PROCESS_REPLICA = _ReplicaWorker(bootstrap, shard, workers)


def _process_phase(
    phase: str,
    round_no: int,
    items: List[tuple],
    fast: bool,
    blobs: Optional[List[bytes]],
    remote: bool,
    barrier_seq: int,
):
    return _PROCESS_REPLICA.run_phase(
        phase, round_no, items, fast, blobs, remote, barrier_seq
    )


def _process_remove(node_id: int) -> None:
    # lint: allow[PAR302] the slot holds this process's own replica;
    # process workers never share the module with the parent
    _PROCESS_REPLICA.remove(node_id)


def _process_admit(node_id: int) -> None:
    _PROCESS_REPLICA.admit(node_id)


def _process_collect() -> Dict[str, object]:
    return _PROCESS_REPLICA.collect()


class _ShardHandle:
    """Parent-side endpoint of one shard's worker."""

    def __init__(
        self,
        shard: int,
        executor=None,
        local: Optional[_ReplicaWorker] = None,
    ) -> None:
        self.shard = shard
        self._executor = executor
        self._local = local

    def run_phase(
        self,
        phase: str,
        round_no: int,
        items: List[tuple],
        fast: bool,
        blobs: Optional[List[bytes]] = None,
        remote: bool = False,
        barrier_seq: int = 0,
    ):
        if self._local is not None:
            if self._executor is not None:  # thread mode
                return self._executor.submit(
                    self._local.run_phase,
                    phase,
                    round_no,
                    items,
                    fast,
                    blobs,
                    remote,
                    barrier_seq,
                )
            future: Future = Future()  # serialized mode
            future.set_result(
                self._local.run_phase(
                    phase, round_no, items, fast, blobs, remote, barrier_seq
                )
            )
            return future
        return self._executor.submit(
            _process_phase,
            phase,
            round_no,
            items,
            fast,
            blobs,
            remote,
            barrier_seq,
        )

    def remove(self, node_id: int) -> None:
        if self._local is not None:
            if self._executor is not None:
                self._executor.submit(self._local.remove, node_id).result()
            else:
                self._local.remove(node_id)
            return
        self._executor.submit(_process_remove, node_id).result()

    def admit(self, node_id: int) -> None:
        if self._local is not None:
            if self._executor is not None:
                self._executor.submit(self._local.admit, node_id).result()
            else:
                self._local.admit(node_id)
            return
        self._executor.submit(_process_admit, node_id).result()

    def collect(self) -> Dict[str, object]:
        if self._local is not None:
            if self._executor is not None:
                return self._executor.submit(self._local.collect).result()
            return self._local.collect()
        return self._executor.submit(_process_collect).result()


@dataclass
class ParallelStats:
    """Execution accounting of one parallel run.

    ``wall`` times are parent-observed; ``busy``/``critical`` come from
    per-worker clocks inside :meth:`_ReplicaWorker.run_phase`:
    ``busy_cpu_seconds`` sums every worker's thread CPU time, and
    ``critical_cpu_seconds`` sums, per barrier, only the *slowest*
    worker's CPU time — the compute a machine with one core per worker
    could not avoid.  The gap between the two is the parallelisable
    fraction the partition actually exposed.
    """

    barriers: int = 0
    wall_seconds: float = 0.0
    busy_wall_seconds: float = 0.0
    busy_cpu_seconds: float = 0.0
    critical_cpu_seconds: float = 0.0
    shard_cpu_seconds: Dict[int, float] = field(default_factory=dict)
    removed_nodes: int = 0
    admitted_nodes: int = 0

    def imbalance(self) -> float:
        """Max/mean shard CPU ratio (1.0 = perfectly balanced)."""
        if not self.shard_cpu_seconds:
            return 1.0
        values = list(self.shard_cpu_seconds.values())
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 1.0


class ParallelShardedPolicy(ExecutionPolicy):
    """Worker-backed shard execution, bit-identical to ``SerialPolicy``.

    Shard ``i`` owns every node with ``node_id % workers == i`` and runs
    that shard's lifecycle calls and deliveries on its own replica of
    the session (see the module docstring for why replica execution is
    exact).  The parent keeps the authoritative queue, meter, taps and
    drop rules, merging worker captures in shard order by
    ``(trigger_index, seq)``.

    Args:
        workers: shard/worker count (>= 1).
        backend: ``"process"`` (one single-worker process pool per
            shard), ``"thread"``, ``"serialized"`` (no executor — the
            replica machinery driven synchronously, for determinism
            tests and timing), or ``"auto"`` (process when the session
            bootstrap pickles, thread otherwise).
        share_ladders: precompute the session-lifetime fixed-base
            ladders once in the parent and hand them to every replica
            (read-only) instead of letting each worker rebuild identical
            tables.  Purely a CPU saving — results are bit-identical
            either way; disable to measure the difference.

    A scenario bootstrap is required for replica execution and is bound
    by :meth:`ScenarioSpec.build <repro.scenarios.spec.ScenarioSpec.build>`;
    without one (e.g. a hand-assembled :class:`~repro.core.session.PagSession`)
    the policy degrades to the in-process sharded capture/merge loop,
    still bit-identical, with ``mode == "inline"``.

    After ``session.run(...)`` call :meth:`sync_session` (done
    automatically by ``ScenarioSpec.run``) before reading verdicts,
    playback or crypto counts off the session, then :meth:`close`.
    """

    name = "parallel"

    _BACKENDS = ("auto", "process", "thread", "serialized")

    def __init__(
        self,
        workers: int = 4,
        backend: str = "auto",
        share_ladders: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("worker count must be at least 1")
        if backend not in self._BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r}; expected one of "
                f"{self._BACKENDS}"
            )
        self.workers = workers
        self.backend = backend
        self.share_ladders = share_ladders
        #: resolved execution mode, set on first use: "process",
        #: "thread", "serialized", or "inline" (no bootstrap bound).
        self.mode = "unstarted"
        #: why a requested/auto process backend fell back, if it did.
        self.fallback_reason: Optional[str] = None
        self.stats = ParallelStats()
        self._bootstrap = None
        self._parent_baseline: Optional[Dict[str, int]] = None
        self._handles: Optional[List[_ShardHandle]] = None
        self._inbound_blobs: Dict[int, List[bytes]] = {}
        self._barrier_seq = 0
        self._started = False

    # -- wiring ------------------------------------------------------------

    def bind_scenario(self, spec, session) -> None:
        """Bind the replica bootstrap (called by ``ScenarioSpec.build``).

        Must happen before the first round; the parent session's
        operation counters are snapshotted here as the setup baseline
        for :meth:`sync_session`.
        """
        if self._started:
            raise RuntimeError(
                "cannot rebind a running ParallelShardedPolicy; close() it "
                "first"
            )
        ladders = None
        if self.share_ladders:
            builder = getattr(session, "shared_ladder_table", None)
            if builder is not None:
                ladders = builder(spec.rounds)
        self._bootstrap = _SpecBootstrap(spec, shared_ladders=ladders)
        self._parent_baseline = _ops_snapshot(session)

    def _process_capable(self) -> tuple:
        try:
            pickle.dumps(self._bootstrap)
        except Exception as exc:  # noqa: BLE001 - any pickling failure
            return False, f"session bootstrap is not picklable: {exc!r}"
        if not multiprocessing.get_all_start_methods():
            return False, "no multiprocessing start method available"
        return True, ""

    def _ensure_started(self) -> bool:
        """Start the workers on first use; False means inline fallback."""
        if self._started:
            return self.mode != "inline"
        self._started = True
        self.stats = ParallelStats()
        self._inbound_blobs = {}
        self._barrier_seq = 0
        if self._bootstrap is None:
            self.mode = "inline"
            self.fallback_reason = (
                "no scenario bootstrap bound; running the in-process "
                "sharded loop"
            )
            return False
        mode = self.backend
        if mode in ("auto", "process"):
            capable, why = self._process_capable()
            if capable:
                mode = "process"
            elif self.backend == "process":
                raise RuntimeError(
                    f"process backend requested but unavailable: {why}"
                )
            else:
                self.fallback_reason = why
                mode = "thread"
        if mode == "process":
            start_methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in start_methods else start_methods[0]
            )
            self._handles = [
                _ShardHandle(
                    shard,
                    executor=ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=context,
                        initializer=_init_process_replica,
                        initargs=(self._bootstrap, shard, self.workers),
                    ),
                )
                for shard in range(self.workers)
            ]
        elif mode == "thread":
            executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-shard",
            )
            stash: dict = {}
            self._handles = [
                _ShardHandle(
                    shard,
                    executor=executor,
                    local=_ReplicaWorker(
                        self._bootstrap,
                        shard,
                        self.workers,
                        shared_stash=stash,
                    ),
                )
                for shard in range(self.workers)
            ]
        else:  # serialized
            stash = {}
            self._handles = [
                _ShardHandle(
                    shard,
                    local=_ReplicaWorker(
                        self._bootstrap,
                        shard,
                        self.workers,
                        shared_stash=stash,
                    ),
                )
                for shard in range(self.workers)
            ]
        self.mode = mode
        return True

    # -- barriers ----------------------------------------------------------

    def _barrier(
        self,
        phase: str,
        round_no: int,
        work: List[List[tuple]],
        network: "Network",
        remote: bool = False,
    ) -> None:
        """Scatter one phase to the shards, gather, merge in shard order.

        When the parent network has no taps and no drop rules, the
        barrier runs in metadata mode: workers return send metadata plus
        pre-partitioned payload blobs, and the parent meters/queues
        :class:`~repro.sim.network.RemoteSend` references without ever
        materialising the messages (the dominant coordinator cost
        otherwise).  Any tap or drop rule switches the barrier to full
        captures, where every send crosses as a real message and the
        network replays it through rules and taps in serial order —
        both modes produce bit-identical accounting and schedules.

        Lifecycle phases are always submitted to every shard (even with
        no owned work) so replicas initialise eagerly; delivery skips
        empty buckets.
        """
        wall0 = time.perf_counter()
        fast = not network.taps and not network.drop_rules
        barrier_seq = self._barrier_seq = self._barrier_seq + 1
        futures: List[Optional[Future]] = []
        for shard, items in enumerate(work):
            if phase == "deliver" and not items:
                futures.append(None)
                continue
            blobs = self._inbound_blobs.pop(shard, None) if remote else None
            futures.append(
                self._handles[shard].run_phase(
                    phase, round_no, items, fast, blobs, remote, barrier_seq
                )
            )
        self._inbound_blobs = {}
        captures = []
        meta: List[tuple] = []
        barrier_cpu = 0.0
        for shard, future in enumerate(futures):
            if future is None:
                continue
            result = future.result()
            if result[0] == "fast":
                _, shard_meta, blobs_out, wall, cpu = result
                meta.extend(shard_meta)
                for dest, blob in blobs_out.items():
                    self._inbound_blobs.setdefault(dest, []).append(blob)
            else:
                _, capture, wall, cpu = result
                captures.append(capture)
            self.stats.busy_wall_seconds += wall
            self.stats.busy_cpu_seconds += cpu
            self.stats.shard_cpu_seconds[shard] = (
                self.stats.shard_cpu_seconds.get(shard, 0.0) + cpu
            )
            barrier_cpu = max(barrier_cpu, cpu)
        self.stats.critical_cpu_seconds += barrier_cpu
        if captures:
            network.merge_captures(captures)
        if meta:
            meta.sort()
            network.merge_remote(
                [
                    RemoteSend(
                        (barrier_seq, trigger, seq), sender, recipient, size
                    )
                    for trigger, seq, sender, recipient, size in meta
                ]
            )
        self.stats.barriers += 1
        self.stats.wall_seconds += time.perf_counter() - wall0

    def _lifecycle_work(
        self, nodes: Sequence["SimNode"]
    ) -> List[List[tuple]]:
        work: List[List[tuple]] = [[] for _ in range(self.workers)]
        for index, node in enumerate(nodes):
            work[node.node_id % self.workers].append((index, node.node_id))
        return work

    def begin_nodes(self, round_no, nodes, network) -> bool:
        if not self._ensure_started():
            return False
        self._barrier("begin", round_no, self._lifecycle_work(nodes), network)
        return True

    def end_nodes(self, round_no, nodes, network) -> bool:
        if not self._ensure_started():
            return False
        self._barrier("end", round_no, self._lifecycle_work(nodes), network)
        return True

    def deliver(self, batch, nodes_get, network) -> None:
        if not self._ensure_started():
            _deliver_sharded(batch, nodes_get, network, self.workers)
            return
        remote = bool(batch) and isinstance(batch[0], RemoteSend)
        work: List[List[tuple]] = [[] for _ in range(self.workers)]
        if remote:
            for index, send in enumerate(batch):
                work[send.recipient % self.workers].append(
                    (index, send.key)
                )
        else:
            for index, message in enumerate(batch):
                work[message.recipient % self.workers].append(
                    (index, message)
                )
        self._barrier(
            "deliver", network.current_round, work, network, remote=remote
        )

    # -- membership --------------------------------------------------------

    def notify_add(self, node) -> None:
        """Mirror a mid-run admission onto the owning worker replica.

        Only spec-declared arrivals can be mirrored: the replica admits
        its own pending instance by id (``session.admit_node``), so a
        hand-assembled session adding an arbitrary node after the
        workers started fails loudly inside the replica rather than
        silently diverging.
        """
        if not self._started or self.mode == "inline":
            return
        self._handles[node.node_id % self.workers].admit(node.node_id)
        self.stats.admitted_nodes += 1

    def notify_remove(self, node_id: int) -> None:
        if not self._started or self.mode == "inline":
            return
        self._handles[node_id % self.workers].remove(node_id)
        self.stats.removed_nodes += 1

    # -- reporting sync & shutdown -----------------------------------------

    def sync_session(self, session) -> None:
        """Graft the workers' reporting state back onto ``session``.

        Verdicts, update stores and the source's release log come from
        each node's owning worker; operation counters are the parent's
        setup baseline plus the summed per-worker run deltas.
        Idempotent — safe to call after every ``run``.
        """
        if not self._started or self.mode == "inline":
            return
        run_ops: Dict[str, int] = {}
        sim_nodes = session.simulator.nodes
        for handle in self._handles:
            report = handle.collect()
            for key, delta in report["ops"].items():
                run_ops[key] = run_ops.get(key, 0) + delta
            for node_id, state in report["nodes"].items():
                node = sim_nodes.get(node_id)
                if node is not None:
                    _apply_node_state(node, state)
        if self._parent_baseline is not None:
            _apply_ops(session, self._parent_baseline, run_ops)

    def close(self) -> None:
        """Shut the worker pools down; the policy can be rebound/reused.

        ``stats`` and ``mode`` keep their final values for post-run
        inspection (the scaling benchmark reads them after the run).
        """
        if self._handles is not None:
            seen = set()
            for handle in self._handles:
                executor = handle._executor
                if executor is None or id(executor) in seen:
                    continue
                # lint: allow[DET105] in-process dedup of live
                # executor objects during shutdown; never ordered
                seen.add(id(executor))
                executor.shutdown(wait=True)
        self._handles = None
        self._bootstrap = None
        self._parent_baseline = None
        self._started = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ParallelShardedPolicy workers={self.workers} "
            f"backend={self.backend!r} mode={self.mode!r}>"
        )


def make_policy(
    name: str,
    shards: int = 4,
    workers: Optional[int] = None,
    parallel_backend: str = "auto",
) -> ExecutionPolicy:
    """Build a policy from its CLI/scenario name.

    Args:
        name: ``"serial"``, ``"sharded"``, ``"parallel"``,
            ``"population"`` or ``"daemon"``.
        shards: partition count for ``sharded`` (also the ``parallel``
            worker count when ``workers`` is not given).
        workers: worker count for ``parallel``.
        parallel_backend: executor selection for ``parallel`` (see
            :class:`ParallelShardedPolicy`).
    """
    if name == "serial":
        return SerialPolicy()
    if name == "sharded":
        return ShardedPolicy(shards=shards)
    if name == "daemon":
        return DaemonPolicy()
    if name == "parallel":
        return ParallelShardedPolicy(
            workers=workers if workers is not None else shards,
            backend=parallel_backend,
        )
    if name == "population":
        # Lazy: the population tier pulls in numpy-backed modules the
        # serial fast path never needs.
        from repro.sim.population import PopulationPolicy

        return PopulationPolicy()
    raise ValueError(
        f"unknown execution policy {name!r}; expected 'serial', 'sharded', "
        "'parallel', 'population' or 'daemon'"
    )
