"""Pluggable execution policies for the round-drain loop.

The engine's drain loop is the hottest non-crypto path of the
simulator: every message of every round passes through it.  The paper's
deployments run nodes on independent machines, so within a drain batch
(one quiescence step of a round) nodes are independent until they send.
This module makes that structure explicit:

* :class:`SerialPolicy` delivers a batch one message at a time in FIFO
  order — byte-for-byte the engine behaviour before policies existed.
* :class:`ShardedPolicy` partitions each batch by *recipient* across a
  fixed number of shards.  Per-recipient FIFO order is preserved (all
  messages to one node stay in one shard, in order), each shard's
  deliveries are metered into a private :class:`~repro.sim.network.SendCapture`,
  and the captures are merged into the shared network in shard-index
  order at batch end — so the combined accounting is deterministic and
  the per-node byte totals match the serial schedule exactly.

Shards currently execute one after another (CPython's interpreter lock
makes in-process thread parallelism a wash for this workload); the
partition/capture/merge machinery is exactly what a worker-pool or
subinterpreter backend needs, so a parallel backend is a drop-in
replacement of the shard loop alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.message import Message
    from repro.sim.network import Network
    from repro.sim.node import SimNode

__all__ = ["ExecutionPolicy", "SerialPolicy", "ShardedPolicy", "make_policy"]

#: ``nodes_get(node_id)`` -> the node instance, or None after churn.
NodeLookup = Callable[[int], Optional["SimNode"]]


class ExecutionPolicy:
    """Strategy for delivering one drain batch to its recipients."""

    name: str = "abstract"

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        """Deliver every message of ``batch``; replies land in the
        network's pending queue for the next batch."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class SerialPolicy(ExecutionPolicy):
    """One-at-a-time FIFO delivery — the reference schedule.

    Replies sent while the batch is processed go straight onto the
    shared queue, so the delivery order is identical to one-at-a-time
    queue popping (the pre-policy engine behaviour, bit for bit).
    """

    name = "serial"

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        for message in batch:
            recipient = nodes_get(message.recipient)
            if recipient is None:
                # Recipient left the system (churn); gossip tolerates
                # this.
                continue
            recipient.on_message(message)


@dataclass
class ShardedPolicy(ExecutionPolicy):
    """Partition each batch by recipient across ``shards`` shards.

    Recipients map to shards by ``node_id % shards``, so the partition
    is stable across batches and rounds.  All messages to one recipient
    land in one shard in their original order — per-recipient FIFO is
    preserved — while sends from different shards are buffered apart
    and merged in shard-index order, keeping metering and the next
    batch's queue deterministic.

    Args:
        shards: number of partitions (>= 1; 1 degenerates to a serial
            schedule with capture overhead).
    """

    shards: int = 4
    name = "sharded"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shard count must be at least 1")

    def deliver(
        self,
        batch: Sequence["Message"],
        nodes_get: NodeLookup,
        network: "Network",
    ) -> None:
        shards = self.shards
        buckets: List[List[tuple]] = [[] for _ in range(shards)]
        for index, message in enumerate(batch):
            buckets[message.recipient % shards].append((index, message))
        captures = []
        for bucket in buckets:
            if not bucket:
                continue
            capture = network.begin_capture()
            try:
                for index, message in bucket:
                    recipient = nodes_get(message.recipient)
                    if recipient is None:
                        continue
                    # Tag replies with the batch position of the message
                    # that triggered them, so the merge can reconstruct
                    # the serial send order.
                    capture.trigger_index = index
                    recipient.on_message(message)
            finally:
                network.release_capture()
            captures.append(capture)
        network.merge_captures(captures)


def make_policy(name: str, shards: int = 4) -> ExecutionPolicy:
    """Build a policy from its CLI/scenario name."""
    if name == "serial":
        return SerialPolicy()
    if name == "sharded":
        return ShardedPolicy(shards=shards)
    raise ValueError(
        f"unknown execution policy {name!r}; expected 'serial' or 'sharded'"
    )
