"""Base class for simulated protocol participants."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = ["SimNode"]


class SimNode:
    """A node participating in a round-based protocol.

    Life cycle per round R:

    1. ``begin_round(R)`` — the node initiates its exchanges for the
       round (e.g. a PAG node sends ``KeyRequest`` to its successors).
    2. ``on_message(msg)`` — called for every message delivered to the
       node while the round's queue drains; handlers may send replies,
       which are delivered in the same round.
    3. ``end_round(R)`` — quiescence reached; the node finalises state
       (e.g. monitors run the forwarding verification for round R-1).
    """

    def __init__(self, node_id: int, network: "Network") -> None:
        self.node_id = node_id
        self.network = network

    def begin_round(self, round_no: int) -> None:
        """Initiate this round's exchanges.  Default: do nothing."""

    def on_message(self, message: Message) -> None:
        """Handle one delivered message.  Default: ignore silently."""

    def end_round(self, round_no: int) -> None:
        """Round post-processing.  Default: do nothing."""

    def send(self, message: Message) -> None:
        """Convenience wrapper around ``network.send``."""
        self.network.send(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id}>"
