"""Million-node population tier: the vectorised honest plane.

The paper's accountability guarantees matter at gossip scale, but a
full-fidelity session carries a Python object graph per node.  This
module scales a scenario to millions of nodes by partitioning the
population:

* a small **full-fidelity cohort** (``spec.nodes`` ids ``0..n-1``: the
  source, every deviant, every monitor of sampled exchanges, and the
  seeded honest sample) runs the real protocol, bit-identical to a
  plain :class:`~repro.sim.execution.SerialPolicy` run of the same
  cohort-sized spec;
* the remaining **honest plane** (ids ``spec.nodes..population-1``)
  lives in numpy arrays updated in bulk once per round.

The plane is *calibrated, not simulated*: a passive
:class:`PlaneCalibrationTap` measures the cohort's honest consumers —
per round, per message kind, bytes sent and received per node — and the
plane replays those per-kind means across its width, modulating each
node by per-round Poisson degree draws (in-degree, out-degree,
monitor-load) normalised to their realized mean.  Per-round per-kind
plane means therefore equal the cohort's honest-consumer means exactly;
only the across-node variance is synthetic (Poisson contact counts, the
same model the paper's membership views induce).

Crypto is memoised over equivalence classes of identical exchanges
(:class:`~repro.core.verification.ExchangeClassCache`): one real
representative evaluation per class on the plane's *own* hasher (the
cohort hasher is never touched, preserving bit-identity), the fan-out
credited to ``memoised_operations``, and a calibrated top-up so real +
memoised plane totals reconcile with what a full-fidelity run of the
plane would have cost.

Per-round plane rows stream to a
:class:`~repro.sim.trace.ColumnarRoundSpill`, so memory stays bounded
regardless of population x rounds; collection reads windows back
through :class:`~repro.sim.metrics.SpilledMeter`.
"""

from __future__ import annotations

import resource
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.verification import ExchangeClassCache
from repro.crypto.homomorphic import HomomorphicHasher
from repro.scenarios.spec import ScenarioResult, ScenarioSpec
from repro.sim.execution import SerialPolicy
from repro.sim.message import Message
from repro.sim.metrics import SpilledMeter
from repro.sim.trace import ColumnarRoundSpill

__all__ = [
    "PlaneCalibrationTap",
    "PopulationPlane",
    "PopulationPolicy",
    "PopulationResult",
    "build_population_result",
    "wire_population",
]

#: Which degree draw modulates a kind's per-node traffic, as
#: ``kind -> (upload driver, download driver)``.  ``out``/``in`` are
#: gossip out-/in-degree, ``mon`` is monitor load, ``uniform`` applies
#: the mean without modulation.  Derivation: message m of Figs. 5-6 is
#: sent once per link of the named degree (e.g. a node uploads one
#: KeyRequest per successor contacted, downloads one per predecessor
#: that contacted it).
_KIND_DRIVERS: Dict[str, Tuple[str, str]] = {
    "key_request": ("out", "in"),
    "key_response": ("in", "out"),
    "serve": ("out", "in"),
    "attestation": ("out", "in"),
    "ack": ("in", "out"),
    "ack_copy": ("in", "mon"),
    "attestation_relay": ("in", "mon"),
    "declaration_ack": ("mon", "in"),
    "monitor_broadcast": ("mon", "mon"),
}


class PlaneCalibrationTap:
    """Passive per-round, per-kind byte accounting of honest consumers.

    Installed as a network :class:`~repro.sim.network.TrafficTap`; under
    capture-based policies the taps are evaluated at merge time in the
    reconstructed delivery order, so calibration is identical across
    execution policies.  Rounds are consumed (and freed) by the plane as
    it steps, so the tap's memory stays O(kinds), not O(rounds).
    """

    def __init__(self, honest_ids) -> None:
        self.honest_ids = frozenset(honest_ids)
        if not self.honest_ids:
            raise ValueError(
                "plane calibration needs at least one honest cohort "
                "consumer"
            )
        #: round -> kind -> [bytes uploaded, bytes downloaded] summed
        #: over honest cohort consumers.
        self._rounds: Dict[int, Dict[str, List[int]]] = {}
        #: round -> a representative Serve received by an honest
        #: consumer (entries + key_prev drive the class-crypto sample).
        self._serves: Dict[int, Message] = {}
        #: round -> a fresh per-link prime issued by an honest consumer.
        self._primes: Dict[int, int] = {}

    def observe(self, message: Message, size: int) -> None:
        honest = self.honest_ids
        sender_honest = message.sender in honest
        recipient_honest = message.recipient in honest
        if not (sender_honest or recipient_honest):
            return
        rnd = message.round_no
        bucket = self._rounds.setdefault(rnd, {})
        pair = bucket.setdefault(message.kind, [0, 0])
        if sender_honest:
            pair[0] += size
        if recipient_honest:
            pair[1] += size
        kind = message.kind
        if kind == "serve" and recipient_honest:
            if rnd not in self._serves and getattr(
                message, "entries", ()
            ):
                self._serves[rnd] = message
        elif kind == "key_response" and sender_honest:
            if rnd not in self._primes:
                prime = getattr(message, "prime", 0)
                if prime > 1:
                    self._primes[rnd] = prime

    def consume_round(
        self, round_no: int
    ) -> Tuple[Dict[str, Tuple[int, int]], Optional[Message], int]:
        """This round's (kind sums, representative serve, prime); frees it."""
        bucket = self._rounds.pop(round_no, {})
        serve = self._serves.pop(round_no, None)
        prime = self._primes.pop(round_no, 0)
        sums = {kind: (up, down) for kind, (up, down) in bucket.items()}
        return sums, serve, prime


class PopulationPlane:
    """The vectorised honest plane of one population-tier run.

    Stepped by the engine once per round (after the full-fidelity
    cohort finishes the round), entirely outside the execution policy —
    a population scenario therefore runs identically under serial,
    sharded and parallel policies.
    """

    def __init__(
        self,
        plane_size: int,
        node_offset: int,
        tap: PlaneCalibrationTap,
        cohort_hasher: HomomorphicHasher,
        fanout: int,
        seed: int,
        spill_dir: Optional[str] = None,
        spill_buffer_rounds: int = 4,
    ) -> None:
        if plane_size < 1:
            raise ValueError("plane needs at least one node")
        if fanout < 1:
            raise ValueError("plane fanout must be at least 1")
        self.plane_size = plane_size
        self.node_offset = node_offset
        self.tap = tap
        self.fanout = fanout
        self.cohort_hasher = cohort_hasher
        # The plane's own hasher: same modulus and backend as the
        # cohort's, but separate counters and caches so the cohort's
        # crypto tallies stay bit-identical to a plain serial run.
        self.hasher = HomomorphicHasher(
            modulus=cohort_hasher.modulus, backend=cohort_hasher.backend
        )
        self.class_cache = ExchangeClassCache(self.hasher)
        self.spill = ColumnarRoundSpill(
            plane_size,
            directory=spill_dir,
            fields=("up", "down"),
            buffer_rounds=spill_buffer_rounds,
        )
        self._rng = np.random.default_rng(seed)
        self._cohort_ops_mark = cohort_hasher.operations
        self.rounds_done = 0

    def _degree_scale(self) -> np.ndarray:
        """Poisson degree draw normalised to its realized mean.

        Normalising by the *realized* mean (not the expectation) pins
        the plane's per-round per-kind mean exactly to the calibrated
        cohort mean; only across-node variance is synthetic.
        """
        draw = self._rng.poisson(
            self.fanout, self.plane_size
        ).astype(np.float64)
        mean = draw.mean()
        if mean <= 0.0:
            return np.ones(self.plane_size, dtype=np.float64)
        return draw / mean

    def end_round(self, round_no: int) -> None:
        sums, serve, prime = self.tap.consume_round(round_no)
        n_honest = len(self.tap.honest_ids)
        scales = {
            "in": self._degree_scale(),
            "out": self._degree_scale(),
            "mon": self._degree_scale(),
            "uniform": None,  # mean applies unmodulated
        }
        up = np.zeros(self.plane_size, dtype=np.float64)
        down = np.zeros(self.plane_size, dtype=np.float64)
        for kind, (up_sum, down_sum) in sums.items():
            up_driver, down_driver = _KIND_DRIVERS.get(
                kind, ("uniform", "uniform")
            )
            up_mean = up_sum / n_honest
            down_mean = down_sum / n_honest
            if up_mean:
                scale = scales[up_driver]
                up += up_mean if scale is None else up_mean * scale
            if down_mean:
                scale = scales[down_driver]
                down += (
                    down_mean if scale is None else down_mean * scale
                )
        self.spill.append_round(
            {
                "up": np.rint(up).astype(np.int64),
                "down": np.rint(down).astype(np.int64),
            }
        )
        self._account_crypto(round_no, serve, prime, n_honest)
        self.rounds_done += 1

    def _account_crypto(
        self,
        round_no: int,
        serve: Optional[Message],
        prime: int,
        n_honest: int,
    ) -> None:
        """One real class representative + calibrated memoised top-up.

        Target: the plane's per-round crypto cost is the cohort's
        per-honest-consumer hash count scaled to the plane width.  One
        representative exchange per round is evaluated for real through
        the class cache (same code path a sampled exchange would take),
        its fan-out plus a top-up credited to ``memoised_operations`` —
        so ``operations + memoised_operations`` reconciles with
        full-fidelity counts while real work stays O(1) per round.
        """
        hasher = self.hasher
        cohort_delta = (
            self.cohort_hasher.operations - self._cohort_ops_mark
        )
        self._cohort_ops_mark = self.cohort_hasher.operations
        target = round(cohort_delta / n_honest * self.plane_size)
        ops_before = hasher.operations
        memo_before = hasher.memoised_operations
        if serve is not None:
            members = max(1, self.fanout)
            self.class_cache.ack_hash(
                ("ack", round_no),
                serve.entries,
                serve.key_prev,
                members=members,
            )
            if prime > 1:
                self.class_cache.serve_hashes(
                    ("serve", round_no),
                    serve.entries,
                    prime,
                    members=members,
                )
        done = (hasher.operations - ops_before) + (
            hasher.memoised_operations - memo_before
        )
        if target > done:
            hasher.memoised_operations += target - done

    def meter(self) -> SpilledMeter:
        """Windowed read access over the spilled plane rows."""
        return SpilledMeter(self.spill, node_offset=self.node_offset)

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "plane_nodes": self.plane_size,
            "rounds": self.rounds_done,
            "real_hashes": self.hasher.operations,
            "memoised_hashes": self.hasher.memoised_operations,
            "spill_bytes": self.spill.bytes_on_disk(),
        }
        out.update(self.class_cache.stats())
        return out

    def close(self) -> None:
        self.spill.close()


class PopulationPolicy(SerialPolicy):
    """Execution policy name for population-tier runs.

    The plane itself attaches to the engine (not the policy), so this
    is a thin marker over :class:`SerialPolicy`: selecting
    ``policy="population"`` runs the cohort on the plain serial path.
    Population specs run identically under the other policies too —
    the differential suite exercises exactly that.
    """


def wire_population(spec: ScenarioSpec, session) -> None:
    """Attach the calibration tap and the plane to a built session."""
    if spec.population <= spec.nodes:
        raise ValueError(
            "population tier needs plane nodes beyond the cohort"
        )
    deviants = set(spec.deviant_nodes())
    honest = [
        node_id
        for node_id in sorted(session.nodes)
        if node_id not in deviants
    ]
    tap = PlaneCalibrationTap(honest)
    simulator = session.simulator
    simulator.network.add_tap(tap)
    config = session.context.config
    plane = PopulationPlane(
        plane_size=spec.population - spec.nodes,
        node_offset=spec.nodes,
        tap=tap,
        cohort_hasher=session.context.hasher,
        fanout=config.fanout,
        seed=spec.seed + 0x5EED,
        spill_dir=spec.population_spill_dir,
    )
    simulator.attach_plane(plane)


@dataclass
class PopulationResult(ScenarioResult):
    """A :class:`ScenarioResult` extended with the plane's measurements.

    The inherited fields (``node_kbps``, ``verdicts``, ``convicted``,
    ``crypto_hashes``...) describe the full-fidelity cohort alone and
    stay comparable with a plain run of the cohort-sized spec; the
    plane adds population-wide aggregates on top.
    """

    population: int = 0
    #: steady-state download Kbps of the whole population (cohort
    #: consumers + plane), the Fig. 9 unit at scale.
    population_mean_kbps: float = 0.0
    plane_mean_kbps: float = 0.0
    plane_stats: Dict[str, object] = field(default_factory=dict)
    peak_rss_mb: float = 0.0
    #: plane per-node Kbps vector, kept as a numpy array (a million
    #: floats; never expanded into a dict).
    plane_kbps: object = field(default=None, repr=False)

    #: CDF decimation bound: merged population CDFs are downsampled to
    #: at most this many points so JSON exports stay small.
    MAX_CDF_POINTS = 2048

    def cdf(self) -> List[Tuple[float, float]]:
        """Population-wide bandwidth CDF (cohort + plane), decimated."""
        values = np.asarray(
            sorted(self.node_kbps.values()), dtype=np.float64
        )
        if self.plane_kbps is not None:
            values = np.concatenate(
                [values, np.asarray(self.plane_kbps, dtype=np.float64)]
            )
            values.sort(kind="stable")
        n = len(values)
        if n == 0:
            return []
        ranks = (np.arange(n, dtype=np.float64) + 1.0) / n
        if n > self.MAX_CDF_POINTS:
            idx = np.linspace(0, n - 1, self.MAX_CDF_POINTS)
            idx = np.unique(idx.astype(np.int64))
            values = values[idx]
            ranks = ranks[idx]
        return list(zip(values.tolist(), ranks.tolist()))

    def summary(self) -> Dict[str, object]:
        out = super().summary()
        out["population"] = self.population
        out["population_mean_down_kbps"] = round(
            self.population_mean_kbps, 1
        )
        out["plane_mean_down_kbps"] = round(self.plane_mean_kbps, 1)
        out["peak_rss_mb"] = round(self.peak_rss_mb, 1)
        out["plane"] = dict(self.plane_stats)
        return out


def peak_rss_mb() -> float:
    """This process's peak resident set size, in MiB (Linux: KiB units)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak_kb / 1024.0


def build_population_result(
    spec: ScenarioSpec, session, base: ScenarioResult
) -> PopulationResult:
    """Fold the plane's spilled measurements into a scenario result.

    Reads the steady-state window back from the spill, then closes it
    (temporary spill directories are removed; a user-supplied
    ``population_spill_dir`` keeps its files).
    """
    plane = session.simulator.planes[0]
    try:
        meter = plane.meter()
        plane_kbps = meter.window_kbps_vector(
            round_seconds=session.simulator.round_seconds,
            first_round=spec.warmup_rounds,
            direction="down",
        )
        plane_mean = float(plane_kbps.mean()) if len(plane_kbps) else 0.0
        cohort_sum = sum(base.node_kbps.values())
        total_consumers = len(base.node_kbps) + len(plane_kbps)
        population_mean = (
            (cohort_sum + float(plane_kbps.sum())) / total_consumers
            if total_consumers
            else 0.0
        )
        stats = plane.stats()
    finally:
        # Close unconditionally: a collection that dies mid-read must
        # not leak the spill's temp directory.
        plane.close()
    return PopulationResult(
        spec=base.spec,
        session=base.session,
        node_kbps=base.node_kbps,
        mean_kbps=base.mean_kbps,
        messages_sent=base.messages_sent,
        total_bytes=base.total_bytes,
        verdicts=base.verdicts,
        convicted=base.convicted,
        continuity=base.continuity,
        crypto_hashes=base.crypto_hashes,
        messages_dropped=base.messages_dropped,
        messages_delayed=base.messages_delayed,
        fault_stats=base.fault_stats,
        accusations=base.accusations,
        population=spec.population,
        population_mean_kbps=population_mean,
        plane_mean_kbps=plane_mean,
        plane_stats=stats,
        peak_rss_mb=peak_rss_mb(),
        plane_kbps=plane_kbps,
    )
