"""Bandwidth and cost metering for simulated nodes.

The paper's headline numbers are *per-node bandwidth consumption in
Kbps* (Figs. 7, 8, 9) and *cryptographic operations per second*
(Table I).  This module collects exactly those quantities: bytes sent
and received per node per round, and operation tallies, with helpers to
convert to the paper's units given the round duration (1 second in all
experiments, section VII-A).

Storage is columnar: each node owns one per-round list per direction,
so a window sum is one slice-add and a steady-state CDF over a large
membership is a single pass over dense lists — no per-(node, round)
dict probes.  Byte totals are identical to the seed's dict-of-pairs
accounting (``tests/sim/test_metrics.py`` proves parity), and per-shard
meters from a sharded drain merge losslessly via :meth:`merge_from`.

On top of the columnar store the aggregate readers
(:meth:`BandwidthMeter.all_node_kbps`, :meth:`BandwidthMeter.snapshot`,
:func:`cdf_points`) run on a shared dense numpy 2D (node × round)
matrix, built lazily from the per-node series and invalidated by every
write — window sums over the whole membership collapse to one
``sum(axis=1)`` pass.  The matrix is purely an execution strategy: its
outputs are bit-identical to the columnar pass (the per-node integer
window total is formed first, then scaled by the same float factor, so
every IEEE operation matches), which stays in place as the no-numpy
fallback and is proven equivalent by the Hypothesis suite in
``tests/sim/test_meter_matrix.py``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

try:  # numpy accelerates CDF sorting over large memberships
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional extra
    _np = None

__all__ = [
    "BandwidthMeter",
    "NodeTraffic",
    "SpilledMeter",
    "cdf_points",
    "kbps",
]


def kbps(total_bytes: float, seconds: float) -> float:
    """Convert a byte count over a duration to kilobits per second.

    The paper uses decimal kilobits (1 kbps = 1000 bit/s), the standard
    networking convention.
    """
    if seconds <= 0:
        raise ValueError("duration must be positive")
    return total_bytes * 8.0 / 1000.0 / seconds


@dataclass(slots=True)
class NodeTraffic:
    """Per-node cumulative traffic counters."""

    bytes_up: int = 0
    bytes_down: int = 0
    messages_up: int = 0
    messages_down: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_up + self.bytes_down


def _grow(series: List[int], rnd: int) -> None:
    """Extend a per-round series with zeros so ``series[rnd]`` exists."""
    missing = rnd + 1 - len(series)
    if missing > 0:
        series.extend([0] * missing)


@dataclass(slots=True)
class BandwidthMeter:
    """Accounts every byte that crosses the simulated network.

    Consumption is attributed symmetrically, like the paper's
    measurements: an A->B message of s bytes costs A s bytes of upload
    and B s bytes of download.  Per-round series are kept so that warmup
    rounds can be excluded and CDFs computed over steady state.
    """

    totals: Dict[int, NodeTraffic] = field(
        default_factory=lambda: defaultdict(NodeTraffic)
    )
    #: node -> bytes uploaded per round (index = round number).
    up_series: Dict[int, List[int]] = field(default_factory=dict)
    #: node -> bytes downloaded per round.
    down_series: Dict[int, List[int]] = field(default_factory=dict)
    rounds_seen: int = 0
    #: run aggregate reads on the shared (node × round) numpy matrix
    #: when numpy is importable; False pins the columnar fallback (the
    #: two are bit-identical — this knob exists for differential tests
    #: and the ``meter_matrix`` benchmark arms).
    vectorize: bool = True
    #: lazily built ``(node -> row, up 2D, down 2D)`` matrix view of the
    #: per-round series; dropped by every write (:meth:`record`,
    #: :meth:`merge_from`) and rebuilt on the next aggregate read.
    _matrix_cache: object = field(
        default=None, repr=False, compare=False
    )

    def record(self, sender: int, recipient: int, size: int, rnd: int) -> None:
        """Meter one message of ``size`` bytes sent during round ``rnd``."""
        if size < 0:
            raise ValueError("message size cannot be negative")
        self._matrix_cache = None
        up = self.totals[sender]
        up.bytes_up += size
        up.messages_up += 1
        down = self.totals[recipient]
        down.bytes_down += size
        down.messages_down += 1
        series = self.up_series.get(sender)
        if series is None:
            series = self.up_series[sender] = []
        _grow(series, rnd)
        series[rnd] += size
        series = self.down_series.get(recipient)
        if series is None:
            series = self.down_series[recipient] = []
        _grow(series, rnd)
        series[rnd] += size
        if rnd + 1 > self.rounds_seen:
            self.rounds_seen = rnd + 1

    def _matrix(self):
        """The shared dense (node × round) matrix view, or None.

        Returns ``(index, row_nodes, up2d, down2d)`` where ``index``
        maps a node id to its row, ``row_nodes`` is the sorted node
        list in row order, and both matrices are int64, padded with
        zeros to ``rounds_seen`` columns.  None when numpy is
        unavailable, the meter opted out (``vectorize=False``), or the
        recorded volumes could overflow int64 — every caller then takes
        the columnar path, which has no width limit.  The overflow
        guard bounds every window sum by the per-node cumulative totals
        (sizes are non-negative), so ``sum(axis=1)`` — including the
        up+down combination — can never wrap silently.
        """
        if _np is None or not self.vectorize:
            return None
        cached = self._matrix_cache
        if cached is not None:
            return cached if cached != "overflow" else None
        # Any window sum is bounded by the node's cumulative up+down
        # total; if that fits int64, no aggregation below can wrap.
        limit = (1 << 63) - 1
        for traffic in self.totals.values():
            if traffic.bytes_up + traffic.bytes_down > limit:
                self._matrix_cache = "overflow"
                return None
        nodes = sorted(set(self.up_series) | set(self.down_series))
        index = {node: row for row, node in enumerate(nodes)}
        shape = (len(nodes), self.rounds_seen)
        up2d = _np.zeros(shape, dtype=_np.int64)
        down2d = _np.zeros(shape, dtype=_np.int64)
        try:
            for target, source in ((up2d, self.up_series),
                                   (down2d, self.down_series)):
                for node, series in source.items():
                    target[index[node], : len(series)] = series
        except OverflowError:
            self._matrix_cache = "overflow"
            return None
        cached = (index, nodes, up2d, down2d)
        self._matrix_cache = cached
        return cached

    def node_series(
        self, node: int, direction: str = "both"
    ) -> List[int]:
        """Per-round byte series for ``node``, padded to ``rounds_seen``."""
        self._check_direction(direction)
        out = [0] * self.rounds_seen
        if direction in ("both", "up"):
            for rnd, size in enumerate(self.up_series.get(node, ())):
                out[rnd] += size
        if direction in ("both", "down"):
            for rnd, size in enumerate(self.down_series.get(node, ())):
                out[rnd] += size
        return out

    @staticmethod
    def _check_direction(direction: str) -> None:
        if direction not in ("both", "down", "up"):
            raise ValueError(f"unknown direction {direction!r}")

    def _resolve_window(
        self, first_round: int, last_round: int | None
    ) -> int:
        """Validate a round window and return its inclusive last round.

        Every window-taking reader shares this check: a negative
        ``first_round`` would silently slice from the *end* of the
        per-round lists (Python's negative indexing), and an inverted
        window would silently sum nothing — both are caller bugs, so
        both raise.  When ``last_round`` is None the window runs to the
        last recorded round (-1 on an empty meter, which the
        rate-computing callers then reject as inverted).
        """
        if first_round < 0:
            raise ValueError(
                f"first_round must be non-negative, got {first_round}"
            )
        last = self.rounds_seen - 1 if last_round is None else last_round
        if last_round is not None and last < first_round:
            raise ValueError(
                f"inverted round window: last_round {last} precedes "
                f"first_round {first_round}"
            )
        return last

    def node_bytes(
        self,
        node: int,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> int:
        """Bytes for ``node`` over a round window.

        Args:
            direction: ``"both"`` (up + down), ``"down"`` or ``"up"``.
                The paper's figures report unidirectional consumption
                (a 300 Kbps stream costs a receiver ~300 Kbps, not 600),
                so figure reproductions use ``"down"``.

        An explicitly inverted window or a negative ``first_round``
        raises; an empty meter with the default window sums to 0.
        """
        self._check_direction(direction)
        last = self._resolve_window(first_round, last_round)
        total = 0
        if direction in ("both", "up"):
            series = self.up_series.get(node)
            if series:
                total += sum(series[first_round : last + 1])
        if direction in ("both", "down"):
            series = self.down_series.get(node)
            if series:
                total += sum(series[first_round : last + 1])
        return total

    def node_kbps(
        self,
        node: int,
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> float:
        """Average bandwidth of ``node`` in Kbps over a round window."""
        last = self._resolve_window(first_round, last_round)
        if last < first_round:
            raise ValueError(
                f"inverted round window: last_round {last} precedes "
                f"first_round {first_round}"
            )
        duration = (last - first_round + 1) * round_seconds
        return kbps(
            self.node_bytes(node, first_round, last, direction), duration
        )

    def all_node_kbps(
        self,
        nodes: Iterable[int],
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> Dict[int, float]:
        """Per-node Kbps over a window, in one vectorised pass.

        With numpy the whole membership's window sums are one
        ``sum(axis=1)`` over the shared round matrix; the columnar loop
        below is the bit-identical fallback (and the reference the
        parity suite holds the matrix to).
        """
        self._check_direction(direction)
        last = self._resolve_window(first_round, last_round)
        if last < first_round:
            raise ValueError(
                f"inverted round window: last_round {last} precedes "
                f"first_round {first_round}"
            )
        duration = (last - first_round + 1) * round_seconds
        if duration <= 0:
            raise ValueError("duration must be positive")
        scale = 8.0 / 1000.0 / duration
        stop = last + 1
        matrix = self._matrix()
        if matrix is not None:
            index, row_nodes, up2d, down2d = matrix
            sums = None
            if direction != "down":
                sums = up2d[:, first_round:stop].sum(axis=1)
            if direction != "up":
                down_sums = down2d[:, first_round:stop].sum(axis=1)
                sums = down_sums if sums is None else sums + down_sums
            # Integer window totals scaled by the same float factor as
            # the columnar pass: every IEEE operation matches, so the
            # values are bit-identical.
            values = (sums * scale).tolist()
            node_list = nodes if isinstance(nodes, list) else list(nodes)
            if node_list == row_nodes:
                # The query covers exactly the metered nodes in row
                # order (the whole-membership aggregate): zip straight
                # through instead of probing the index per node.
                return dict(zip(node_list, values))
            return {
                node: (
                    values[index[node]] if node in index else 0.0
                )
                for node in node_list
            }
        up = self.up_series
        down = self.down_series
        out: Dict[int, float] = {}
        for node in nodes:
            total = 0
            if direction != "down":
                series = up.get(node)
                if series:
                    total += sum(series[first_round:stop])
            if direction != "up":
                series = down.get(node)
                if series:
                    total += sum(series[first_round:stop])
            out[node] = total * scale
        return out

    def mean_kbps(
        self,
        nodes: Iterable[int],
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> float:
        values = self.all_node_kbps(
            nodes, round_seconds, first_round, last_round, direction
        )
        if not values:
            return 0.0
        return sum(values.values()) / len(values)

    def snapshot(self) -> Dict[str, object]:
        """Canonical plain-data view of the whole meter.

        Key-sorted totals and per-round series, independent of dict
        insertion order — two meters fed the same traffic through any
        combination of direct records and :meth:`merge_from` produce
        equal snapshots.  This is the byte-identity primitive of the
        differential execution-policy suite.

        The per-round series are dumped through the shared round matrix
        when it is available (one bulk ``tolist`` per direction, rows
        trimmed back to each node's recorded length so the output is
        byte-equal to the columnar dump); totals are plain counters
        either way.
        """
        matrix = self._matrix()
        if matrix is not None:
            index, _row_nodes, up2d, down2d = matrix
            up_rows = up2d.tolist()
            down_rows = down2d.tolist()
            up_series = {
                node: up_rows[index[node]][: len(series)]
                for node, series in sorted(self.up_series.items())
            }
            down_series = {
                node: down_rows[index[node]][: len(series)]
                for node, series in sorted(self.down_series.items())
            }
        else:
            up_series = {
                node: list(series)
                for node, series in sorted(self.up_series.items())
            }
            down_series = {
                node: list(series)
                for node, series in sorted(self.down_series.items())
            }
        return {
            "rounds_seen": self.rounds_seen,
            "totals": {
                node: (
                    traffic.bytes_up,
                    traffic.bytes_down,
                    traffic.messages_up,
                    traffic.messages_down,
                )
                for node, traffic in sorted(self.totals.items())
            },
            "up_series": up_series,
            "down_series": down_series,
        }

    def merge_from(self, other: "BandwidthMeter") -> None:
        """Fold another meter's accounting into this one.

        Used by the sharded execution policy: each shard meters its
        deliveries into a private meter, and the shards are merged in
        shard-index order at batch end so the combined accounting is
        deterministic.  Merging is exact — totals add, per-round series
        add element-wise.
        """
        self._matrix_cache = None
        for node, traffic in other.totals.items():
            mine = self.totals[node]
            mine.bytes_up += traffic.bytes_up
            mine.bytes_down += traffic.bytes_down
            mine.messages_up += traffic.messages_up
            mine.messages_down += traffic.messages_down
        for target, source in (
            (self.up_series, other.up_series),
            (self.down_series, other.down_series),
        ):
            for node, series in source.items():
                mine = target.get(node)
                if mine is None:
                    target[node] = list(series)
                    continue
                _grow(mine, len(series) - 1)
                for rnd, size in enumerate(series):
                    mine[rnd] += size
        if other.rounds_seen > self.rounds_seen:
            self.rounds_seen = other.rounds_seen


class SpilledMeter:
    """Windowed bandwidth reads over a columnar on-disk round spill.

    The population tier writes each round's dense per-node byte rows to
    a :class:`~repro.sim.trace.ColumnarRoundSpill` (fields ``up`` and
    ``down``) instead of keeping per-round series in RAM; this class is
    the read side, exposing the :class:`BandwidthMeter` window readers
    (``node_bytes`` / ``node_kbps`` / ``all_node_kbps`` / ``mean_kbps``)
    over that spill.  Reads follow the meter's float contract exactly —
    integer window sums first, then one multiply by
    ``8.0 / 1000.0 / duration`` — so a spilled read of the same traffic
    is bit-identical to an in-memory meter read (the Hypothesis parity
    suite in ``tests/sim/test_spilled_meter.py`` holds it to that).

    Args:
        spill: the round store; rows index plane-local nodes ``0..n-1``.
        node_offset: global id of plane-local node 0 — the population
            tier numbers its vectorised plane after the cohort ids.
    """

    __slots__ = ("spill", "node_offset")

    def __init__(self, spill, node_offset: int = 0) -> None:
        for name in ("up", "down"):
            if name not in spill.fields:
                raise ValueError(
                    f"spill lacks the {name!r} field; have "
                    f"{sorted(spill.fields)}"
                )
        if node_offset < 0:
            raise ValueError("node offset cannot be negative")
        self.spill = spill
        self.node_offset = node_offset

    @property
    def rounds_seen(self) -> int:
        return self.spill.rounds_written

    def node_ids(self) -> List[int]:
        return list(
            range(
                self.node_offset, self.node_offset + self.spill.n_nodes
            )
        )

    def _resolve_window(
        self, first_round: int, last_round: int | None
    ) -> int:
        # Same contract as BandwidthMeter._resolve_window.
        if first_round < 0:
            raise ValueError(
                f"first_round must be non-negative, got {first_round}"
            )
        last = self.rounds_seen - 1 if last_round is None else last_round
        if last_round is not None and last < first_round:
            raise ValueError(
                f"inverted round window: last_round {last} precedes "
                f"first_round {first_round}"
            )
        return last

    def window_sums(
        self,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ):
        """Per-node int64 byte sums over a window (plane-local order)."""
        BandwidthMeter._check_direction(direction)
        last = self._resolve_window(first_round, last_round)
        if last < first_round:
            return _np.zeros(self.spill.n_nodes, dtype=_np.int64)
        sums = None
        if direction != "down":
            sums = self.spill.window_sum("up", first_round, last)
        if direction != "up":
            down = self.spill.window_sum("down", first_round, last)
            sums = down if sums is None else sums + down
        return sums

    def window_kbps_vector(
        self,
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "down",
    ):
        """Per-node Kbps over a window, as a float vector.

        The bulk reader behind the population tier's CDF: one streamed
        pass over the spill, no per-node dict.  Scaling matches
        :meth:`BandwidthMeter.all_node_kbps` operation for operation.
        """
        last = self._resolve_window(first_round, last_round)
        if last < first_round:
            raise ValueError(
                f"inverted round window: last_round {last} precedes "
                f"first_round {first_round}"
            )
        duration = (last - first_round + 1) * round_seconds
        if duration <= 0:
            raise ValueError("duration must be positive")
        scale = 8.0 / 1000.0 / duration
        sums = self.window_sums(first_round, last, direction)
        return sums * scale

    def node_bytes(
        self,
        node: int,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> int:
        row = node - self.node_offset
        if not 0 <= row < self.spill.n_nodes:
            return 0
        return int(
            self.window_sums(
                first_round,
                self._resolve_window(first_round, last_round),
                direction,
            )[row]
        )

    def node_kbps(
        self,
        node: int,
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> float:
        last = self._resolve_window(first_round, last_round)
        duration = (last - first_round + 1) * round_seconds
        return kbps(
            self.node_bytes(node, first_round, last, direction), duration
        )

    def all_node_kbps(
        self,
        nodes: Iterable[int],
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> Dict[int, float]:
        values = self.window_kbps_vector(
            round_seconds, first_round, last_round, direction
        ).tolist()
        out: Dict[int, float] = {}
        for node in nodes:
            row = node - self.node_offset
            out[node] = (
                values[row] if 0 <= row < self.spill.n_nodes else 0.0
            )
        return out

    def mean_kbps(
        self,
        nodes: Iterable[int],
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> float:
        values = self.all_node_kbps(
            nodes, round_seconds, first_round, last_round, direction
        )
        if not values:
            return 0.0
        return sum(values.values()) / len(values)


def cdf_points(
    values: Mapping[int, float] | Iterable[float],
    vectorize: bool | None = None,
) -> List[Tuple[float, float]]:
    """Cumulative distribution points ``(value, percent <= value)``.

    Produces the series plotted in Fig. 7 of the paper (CDF of per-node
    bandwidth consumption, y axis in percent).

    Args:
        vectorize: run the sort and the percent axis through numpy
            (None: whenever numpy is importable).  The fallback list
            pass computes each percent as ``100.0 * (i + 1) / n``; the
            vectorised pass evaluates the same expression elementwise
            (``(100.0 * arange(1, n + 1)) / n`` — multiply first, then
            divide, matching the scalar operator order), so both produce
            bit-identical points.
    """
    if isinstance(values, Mapping):
        raw = values.values()
    else:
        raw = list(values)
    if vectorize is None:
        vectorize = _np is not None
    if vectorize and _np is not None:
        data = _np.sort(_np.fromiter(raw, dtype=float))
        n = int(data.size)
        if n == 0:
            return []
        percents = (100.0 * _np.arange(1.0, n + 1.0)) / n
        return list(zip(data.tolist(), percents.tolist()))
    data = sorted(raw)
    n = len(data)
    if n == 0:
        return []
    return [(v, 100.0 * (i + 1) / n) for i, v in enumerate(data)]
