"""Bandwidth and cost metering for simulated nodes.

The paper's headline numbers are *per-node bandwidth consumption in
Kbps* (Figs. 7, 8, 9) and *cryptographic operations per second*
(Table I).  This module collects exactly those quantities: bytes sent
and received per node per round, and operation tallies, with helpers to
convert to the paper's units given the round duration (1 second in all
experiments, section VII-A).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = ["BandwidthMeter", "NodeTraffic", "cdf_points", "kbps"]


def kbps(total_bytes: float, seconds: float) -> float:
    """Convert a byte count over a duration to kilobits per second.

    The paper uses decimal kilobits (1 kbps = 1000 bit/s), the standard
    networking convention.
    """
    if seconds <= 0:
        raise ValueError("duration must be positive")
    return total_bytes * 8.0 / 1000.0 / seconds


@dataclass(slots=True)
class NodeTraffic:
    """Per-node cumulative traffic counters."""

    bytes_up: int = 0
    bytes_down: int = 0
    messages_up: int = 0
    messages_down: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_up + self.bytes_down


@dataclass(slots=True)
class BandwidthMeter:
    """Accounts every byte that crosses the simulated network.

    Consumption is attributed symmetrically, like the paper's
    measurements: an A->B message of s bytes costs A s bytes of upload
    and B s bytes of download.  Per-round series are kept so that warmup
    rounds can be excluded and CDFs computed over steady state.
    """

    totals: Dict[int, NodeTraffic] = field(
        default_factory=lambda: defaultdict(NodeTraffic)
    )
    per_round_up: Dict[Tuple[int, int], int] = field(default_factory=dict)
    per_round_down: Dict[Tuple[int, int], int] = field(default_factory=dict)
    rounds_seen: int = 0

    def record(self, sender: int, recipient: int, size: int, rnd: int) -> None:
        """Meter one message of ``size`` bytes sent during round ``rnd``."""
        if size < 0:
            raise ValueError("message size cannot be negative")
        up = self.totals[sender]
        up.bytes_up += size
        up.messages_up += 1
        down = self.totals[recipient]
        down.bytes_down += size
        down.messages_down += 1
        key_up = (sender, rnd)
        key_down = (recipient, rnd)
        self.per_round_up[key_up] = self.per_round_up.get(key_up, 0) + size
        self.per_round_down[key_down] = (
            self.per_round_down.get(key_down, 0) + size
        )
        if rnd + 1 > self.rounds_seen:
            self.rounds_seen = rnd + 1

    def node_bytes(
        self,
        node: int,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> int:
        """Bytes for ``node`` over a round window.

        Args:
            direction: ``"both"`` (up + down), ``"down"`` or ``"up"``.
                The paper's figures report unidirectional consumption
                (a 300 Kbps stream costs a receiver ~300 Kbps, not 600),
                so figure reproductions use ``"down"``.
        """
        if direction not in ("both", "down", "up"):
            raise ValueError(f"unknown direction {direction!r}")
        last = self.rounds_seen - 1 if last_round is None else last_round
        total = 0
        for rnd in range(first_round, last + 1):
            if direction in ("both", "up"):
                total += self.per_round_up.get((node, rnd), 0)
            if direction in ("both", "down"):
                total += self.per_round_down.get((node, rnd), 0)
        return total

    def node_kbps(
        self,
        node: int,
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> float:
        """Average bandwidth of ``node`` in Kbps over a round window."""
        last = self.rounds_seen - 1 if last_round is None else last_round
        duration = (last - first_round + 1) * round_seconds
        return kbps(
            self.node_bytes(node, first_round, last, direction), duration
        )

    def all_node_kbps(
        self,
        nodes: Iterable[int],
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> Dict[int, float]:
        return {
            node: self.node_kbps(
                node, round_seconds, first_round, last_round, direction
            )
            for node in nodes
        }

    def mean_kbps(
        self,
        nodes: Iterable[int],
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> float:
        values = self.all_node_kbps(
            nodes, round_seconds, first_round, last_round, direction
        )
        if not values:
            return 0.0
        return sum(values.values()) / len(values)


def cdf_points(values: Mapping[int, float] | Iterable[float]) -> List[
    Tuple[float, float]
]:
    """Cumulative distribution points ``(value, percent <= value)``.

    Produces the series plotted in Fig. 7 of the paper (CDF of per-node
    bandwidth consumption, y axis in percent).
    """
    if isinstance(values, Mapping):
        data = sorted(values.values())
    else:
        data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    return [(v, 100.0 * (i + 1) / n) for i, v in enumerate(data)]
