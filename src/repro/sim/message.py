"""Base message type for all simulated protocols.

Bandwidth is the paper's primary metric, so every message must declare
its wire size.  Sizes are computed from the same constants the paper's
deployment used (section VII-A): 938-byte updates, RSA-2048 signatures
(256 B), 512-bit homomorphic hashes and primes (64 B each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

__all__ = ["Message", "WireSizes"]


@dataclass(frozen=True, slots=True)
class WireSizes:
    """Wire-size constants shared by all protocols in a run.

    Attributes:
        header: transport + protocol header per message (type, round,
            sender/recipient identifiers, session id).
        signature: one RSA signature (RSA-2048 -> 256 bytes).
        hash_value: one homomorphic hash (512-bit modulus -> 64 bytes).
        prime: one hashing prime (512 bits -> 64 bytes).
        update_payload: one content chunk (938 bytes in the paper).
        update_id: compact identifier of an update (sequence number).
        encryption_overhead: padding/session-key overhead when a message
            body is encrypted under a recipient's public key (hybrid
            encryption of one RSA block).
    """

    header: int = 24
    signature: int = 256
    hash_value: int = 64
    prime: int = 64
    update_payload: int = 938
    update_id: int = 8
    encryption_overhead: int = 256

    def scaled_hash(self, modulus_bits: int) -> int:
        """Hash size for a non-default modulus (e.g. the 256-bit ablation)."""
        return (modulus_bits + 7) // 8


@dataclass(slots=True)
class Message:
    """A protocol message travelling between two simulated nodes.

    Subclasses add payload fields and override :meth:`size_bytes`.
    Hot-path subclasses (the PAG wire messages) also declare
    ``slots=True``: millions of message instances flow through a long
    simulation, and slotted instances are smaller and faster to create
    and to read attributes from than ``__dict__``-backed ones.
    """

    sender: int
    recipient: int
    round_no: int

    #: human-readable message kind; subclasses override.
    kind: ClassVar[str] = "message"

    def size_bytes(self, sizes: WireSizes) -> int:
        """Wire size of this message under the given size constants."""
        return sizes.header
