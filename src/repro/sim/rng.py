"""Deterministic randomness management for simulations.

Every stochastic decision in a run (peer sampling, prime generation,
source scheduling, adversary placement) must be reproducible from a
single seed, while remaining independent across components so that e.g.
changing the adversary does not perturb the gossip topology.  We derive
stable per-component substreams from a root seed by hashing labels.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["SeedSequence", "derive_seed"]


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a 64-bit seed from a root seed and a label path.

    The derivation is stable across runs and Python versions (unlike
    ``hash()``, which is salted per process).
    """
    material = repr((root_seed, labels)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


class SeedSequence:
    """Factory of independent, reproducible random streams.

    Example:
        >>> seq = SeedSequence(42)
        >>> topology_rng = seq.stream("membership")
        >>> node_rng = seq.stream("node", 17)
        >>> seq2 = SeedSequence(42)
        >>> seq2.stream("membership").random() == topology_rng.random()
        True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = root_seed

    def stream(self, *labels: object) -> random.Random:
        """Return a fresh ``random.Random`` for the given label path."""
        return random.Random(derive_seed(self.root_seed, *labels))

    def child(self, *labels: object) -> "SeedSequence":
        """Return a sub-sequence rooted at the given label path."""
        return SeedSequence(derive_seed(self.root_seed, *labels))
