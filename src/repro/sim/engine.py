"""Round-synchronous simulation engine.

Substitutes for the paper's two experimental substrates (a 432-node
Grid'5000 deployment and OMNeT++ simulations): the engine executes the
same message sequence the deployment would, with explicit byte and
crypto-operation accounting, so the reported per-node Kbps derives from
exactly the quantities the testbed measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.network import Network
from repro.sim.node import SimNode

__all__ = ["Simulator", "RoundHook"]

#: Callback invoked after each completed round: ``hook(round_no)``.
RoundHook = Callable[[int], None]

# Hard ceiling on intra-round deliveries, to turn accidental message
# ping-pong bugs into a crisp error instead of a hang.
_MAX_DELIVERIES_PER_ROUND_PER_NODE = 10_000


@dataclass
class Simulator:
    """Drives a set of :class:`SimNode` through synchronous rounds.

    Attributes:
        network: shared transport (owns the bandwidth meter).
        nodes: node id -> node instance; iteration order is by id so
            runs are reproducible.
        round_seconds: wall-clock length of one gossip round (1 s in the
            paper's deployments).
    """

    network: Network
    nodes: Dict[int, SimNode] = field(default_factory=dict)
    round_seconds: float = 1.0
    current_round: int = 0
    round_hooks: List[RoundHook] = field(default_factory=list)

    def add_node(self, node: SimNode) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node

    def add_round_hook(self, hook: RoundHook) -> None:
        self.round_hooks.append(hook)

    def run_round(self) -> None:
        """Execute one full round: begin, drain to quiescence, end."""
        round_no = self.current_round
        self.network.begin_round(round_no)
        for node_id in sorted(self.nodes):
            self.nodes[node_id].begin_round(round_no)
        self._drain(round_no)
        for node_id in sorted(self.nodes):
            self.nodes[node_id].end_round(round_no)
        for hook in self.round_hooks:
            hook(round_no)
        self.current_round += 1

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        for _ in range(rounds):
            self.run_round()

    def _drain(self, round_no: int) -> None:
        budget = _MAX_DELIVERIES_PER_ROUND_PER_NODE * max(1, len(self.nodes))
        delivered = 0
        while True:
            message = self.network.pop()
            if message is None:
                return
            delivered += 1
            if delivered > budget:
                raise RuntimeError(
                    f"round {round_no}: delivery budget exceeded "
                    f"({budget} messages); suspected message loop"
                )
            recipient = self.nodes.get(message.recipient)
            if recipient is None:
                # Recipient left the system (churn); gossip tolerates this.
                continue
            recipient.on_message(message)

    # -- reporting helpers -------------------------------------------------

    def node_ids(self) -> List[int]:
        return sorted(self.nodes)

    def bandwidth_kbps(
        self, first_round: int = 0, last_round: Optional[int] = None
    ) -> Dict[int, float]:
        """Per-node average bandwidth in Kbps over a round window."""
        return self.network.meter.all_node_kbps(
            self.node_ids(),
            round_seconds=self.round_seconds,
            first_round=first_round,
            last_round=last_round,
        )
