"""Round-synchronous simulation engine.

Substitutes for the paper's two experimental substrates (a 432-node
Grid'5000 deployment and OMNeT++ simulations): the engine executes the
same message sequence the deployment would, with explicit byte and
crypto-operation accounting, so the reported per-node Kbps derives from
exactly the quantities the testbed measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.execution import ExecutionPolicy, SerialPolicy
from repro.sim.network import Network
from repro.sim.node import SimNode

__all__ = ["Simulator", "RoundHook", "RoundSink"]

#: Callback invoked after each completed round: ``hook(round_no)``.
RoundHook = Callable[[int], None]

#: Observability tap invoked once per completed round (after the round
#: hooks, before the round counter advances): ``sink(round_no)``.
#: Unlike round hooks, a sink must not mutate session state — it exists
#: so the service layer can publish round ticks without perturbing the
#: deterministic schedule.
RoundSink = Callable[[int], None]

# Hard ceiling on intra-round deliveries, to turn accidental message
# ping-pong bugs into a crisp error instead of a hang.
_MAX_DELIVERIES_PER_ROUND_PER_NODE = 10_000


@dataclass
class Simulator:
    """Drives a set of :class:`SimNode` through synchronous rounds.

    Attributes:
        network: shared transport (owns the bandwidth meter).
        nodes: node id -> node instance; iteration order is by id so
            runs are reproducible.
        round_seconds: wall-clock length of one gossip round (1 s in the
            paper's deployments).
    """

    network: Network
    nodes: Dict[int, SimNode] = field(default_factory=dict)
    round_seconds: float = 1.0
    current_round: int = 0
    round_hooks: List[RoundHook] = field(default_factory=list)
    #: batch-delivery strategy; the default serial policy reproduces the
    #: pre-policy engine schedule exactly (see repro.sim.execution).
    policy: ExecutionPolicy = field(default_factory=SerialPolicy)
    #: attached population planes, stepped once per round after the
    #: full-fidelity nodes finish (see repro.sim.population).  Planes
    #: are engine-level, not policy-level, so a population scenario runs
    #: identically under every execution policy.
    planes: List = field(default_factory=list)
    #: observability tap (see :data:`RoundSink`).  ``None`` — the
    #: default — keeps the hot loop on a single pointer check, so a run
    #: with no subscriber pays nothing (BENCH: service_hooks section).
    event_sink: Optional[RoundSink] = field(
        default=None, repr=False, compare=False
    )
    #: id-sorted node list, rebuilt only when membership changes (the
    #: seed engine re-sorted the whole dict twice per round).
    _sorted_nodes: Optional[List[SimNode]] = field(
        default=None, repr=False, compare=False
    )

    def add_node(self, node: SimNode) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.policy.notify_add(node)
        self.nodes[node.node_id] = node
        self._sorted_nodes = None

    def remove_node(self, node_id: int) -> None:
        """Drop a node from the engine (churn); undelivered traffic to it
        is silently discarded by the drain loop."""
        if node_id not in self.nodes:
            raise ValueError(
                f"cannot remove unknown node id {node_id}; "
                f"membership is {sorted(self.nodes)}"
            )
        del self.nodes[node_id]
        self._sorted_nodes = None
        self.policy.notify_remove(node_id)

    def _ordered_nodes(self) -> List[SimNode]:
        if self._sorted_nodes is None:
            self._sorted_nodes = [
                self.nodes[node_id] for node_id in sorted(self.nodes)
            ]
        return self._sorted_nodes

    def add_round_hook(self, hook: RoundHook) -> None:
        self.round_hooks.append(hook)

    def attach_plane(self, plane) -> None:
        """Attach a vectorised population plane (stepped per round)."""
        self.planes.append(plane)

    def run_round(self) -> None:
        """Execute one full round: begin, drain to quiescence, end.

        The node fan-outs are offered to the execution policy first
        (a worker-backed policy runs them on its own shards — see
        :meth:`ExecutionPolicy.begin_nodes`); policies that decline get
        the engine's inline loop, byte-for-byte the pre-handoff path.
        """
        round_no = self.current_round
        self.network.begin_round(round_no)
        ordered = self._ordered_nodes()
        if not self.policy.begin_nodes(round_no, ordered, self.network):
            for node in ordered:
                node.begin_round(round_no)
        self._drain(round_no)
        if not self.policy.end_nodes(round_no, ordered, self.network):
            for node in ordered:
                node.end_round(round_no)
        for plane in self.planes:
            plane.end_round(round_no)
        for hook in self.round_hooks:
            hook(round_no)
        if self.event_sink is not None:
            self.event_sink(round_no)
        self.current_round += 1

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` consecutive rounds."""
        for _ in range(rounds):
            self.run_round()

    def _drain(self, round_no: int) -> None:
        """Deliver queued messages until quiescence, in batches.

        The network hands over its whole pending queue at once; replies
        sent while a batch is processed accumulate into the next batch.
        How a batch is delivered to its recipients is the execution
        policy's business (serial FIFO by default, sharded by recipient
        with per-shard meters otherwise); the quiescence loop and the
        runaway-traffic budget stay here.
        """
        budget = _MAX_DELIVERIES_PER_ROUND_PER_NODE * max(1, len(self.nodes))
        delivered = 0
        nodes_get = self.nodes.get
        take_pending = self.network.take_pending
        deliver = self.policy.deliver
        network = self.network
        while True:
            batch = take_pending()
            if not batch:
                return
            delivered += len(batch)
            if delivered > budget:
                raise RuntimeError(
                    f"round {round_no}: delivery budget exceeded "
                    f"({budget} messages); suspected message loop"
                )
            deliver(batch, nodes_get, network)

    # -- reporting helpers -------------------------------------------------

    def node_ids(self) -> List[int]:
        return [node.node_id for node in self._ordered_nodes()]

    def fault_report(self) -> Dict[str, Dict[str, int]]:
        """Per-injector fault counters of the run's network.

        Injectors only ever evaluate on the parent network (replica
        workers run in capture mode), so under every execution policy
        this reads the authoritative tallies without any merge step.
        """
        return self.network.fault_report()

    def bandwidth_kbps(
        self, first_round: int = 0, last_round: Optional[int] = None
    ) -> Dict[int, float]:
        """Per-node average bandwidth in Kbps over a round window."""
        return self.network.meter.all_node_kbps(
            self.node_ids(),
            round_seconds=self.round_seconds,
            first_round=first_round,
            last_round=last_round,
        )
