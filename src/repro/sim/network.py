"""Simulated network: delivery, bandwidth metering, and observation.

Rounds in PAG last one second (section VII-A) while the exchange of
Fig. 5 is a few small messages, so intra-round latency is negligible
relative to the round length.  The network therefore delivers messages
*within* the current round, in FIFO order, and the engine drains the
queue to quiescence before closing the round.  This matches the paper's
round-synchronous system model ("nodes are roughly synchronized, which
allows them to check each others' periodical exchanges").

A :class:`TrafficTap` receives a copy of every message — this is how the
*global passive opponent* of section III observes all network links, and
how tests assert on protocol traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Protocol

from repro.sim.message import Message, WireSizes
from repro.sim.metrics import BandwidthMeter

__all__ = ["Network", "TrafficTap", "DropRule"]


class TrafficTap(Protocol):
    """Observer of all traffic (the global opponent, or a test probe)."""

    def observe(self, message: Message, size: int) -> None:
        """Called once per message actually delivered."""


#: A predicate deciding whether a message is silently dropped.
#: Used to inject omission faults and network-level adversaries.
DropRule = Callable[[Message], bool]


@dataclass
class Network:
    """Message transport with byte accounting.

    Attributes:
        sizes: wire-size constants used to price each message.
        meter: bandwidth accounting (per node, per round).
        taps: passive observers receiving a copy of all messages.
        drop_rules: fault-injection predicates; any True drops the message.
    """

    sizes: WireSizes = field(default_factory=WireSizes)
    meter: BandwidthMeter = field(default_factory=BandwidthMeter)
    taps: List[TrafficTap] = field(default_factory=list)
    drop_rules: List[DropRule] = field(default_factory=list)
    _queue: Deque[Message] = field(default_factory=deque)
    current_round: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0

    def send(self, message: Message) -> None:
        """Queue a message for delivery within the current round.

        The sender pays upload and the recipient pays download for the
        full wire size whether or not a drop rule later discards it
        (bytes leave the NIC before the fault happens); dropped messages
        simply never reach ``on_message``.
        """
        if message.sender == message.recipient:
            raise ValueError(
                f"node {message.sender} attempted to send {message.kind} "
                "to itself"
            )
        size = message.size_bytes(self.sizes)
        self.meter.record(
            message.sender, message.recipient, size, self.current_round
        )
        self.messages_sent += 1
        for rule in self.drop_rules:
            if rule(message):
                self.messages_dropped += 1
                return
        for tap in self.taps:
            tap.observe(message, size)
        self._queue.append(message)

    def pending(self) -> int:
        return len(self._queue)

    def pop(self) -> Optional[Message]:
        """Next message to deliver, or None when the round is quiescent."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def take_pending(self) -> Deque[Message]:
        """Hand over the whole pending queue and start a fresh one.

        Replies sent while the caller processes the batch land in the
        new queue, so alternating ``take_pending`` with batch delivery
        yields exactly the order one-at-a-time :meth:`pop` would.
        """
        batch = self._queue
        self._queue = deque()
        return batch

    def begin_round(self, round_no: int) -> None:
        if self._queue:
            raise RuntimeError(
                f"round {round_no} started with {len(self._queue)} "
                "undelivered messages"
            )
        self.current_round = round_no

    def add_tap(self, tap: TrafficTap) -> None:
        self.taps.append(tap)

    def add_drop_rule(self, rule: DropRule) -> None:
        self.drop_rules.append(rule)
