"""Simulated network: delivery, bandwidth metering, and observation.

Rounds in PAG last one second (section VII-A) while the exchange of
Fig. 5 is a few small messages, so intra-round latency is negligible
relative to the round length.  The network therefore delivers messages
*within* the current round, in FIFO order, and the engine drains the
queue to quiescence before closing the round.  This matches the paper's
round-synchronous system model ("nodes are roughly synchronized, which
allows them to check each others' periodical exchanges").

A :class:`TrafficTap` receives a copy of every message — this is how the
*global passive opponent* of section III observes all network links, and
how tests assert on protocol traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Protocol

from repro.sim.message import Message, WireSizes
from repro.sim.metrics import BandwidthMeter

__all__ = ["Network", "RemoteSend", "SendCapture", "TrafficTap", "DropRule"]


class TrafficTap(Protocol):
    """Observer of all traffic (the global opponent, or a test probe)."""

    def observe(self, message: Message, size: int) -> None:
        """Called once per message actually delivered."""


#: A predicate deciding whether a message is silently dropped.
#: Used to inject omission faults and network-level adversaries.
DropRule = Callable[[Message], bool]


@dataclass
class SendCapture:
    """Buffered sends of one execution shard.

    Deliveries of one shard meter into a private
    :class:`~repro.sim.metrics.BandwidthMeter` and buffer their sends
    as ``(trigger_index, seq, message, size)`` entries, where
    ``trigger_index`` is the batch position of the delivery that caused
    the send (set by the policy before each delivery) and ``seq``
    orders sends within one delivery.  Sorting the entries of all
    shards by that pair reconstructs exactly the send order a serial
    batch walk would produce, so a sharded drain merges back into the
    bit-identical schedule.  Drop rules and taps are *not* consulted at
    capture time — they may be stateful, so the network evaluates them
    at merge time, in the reconstructed order.
    """

    meter: BandwidthMeter = field(default_factory=BandwidthMeter)
    entries: List[tuple] = field(default_factory=list)
    trigger_index: int = 0
    _seq: int = 0

    def record(self, message: Message, size: int, round_no: int) -> None:
        self.meter.record(message.sender, message.recipient, size, round_no)
        self.entries.append((self.trigger_index, self._seq, message, size))
        self._seq += 1


class RemoteSend:
    """Queue entry standing in for a message whose payload lives in an
    execution worker.

    The parallel policy's metadata fast path (no taps, no drop rules —
    see :meth:`Network.merge_remote`) meters and orders sends from
    worker-reported metadata alone; the payload either stays in the
    worker that produced it or crosses as part of an opaque
    pre-partitioned blob the parent never unpickles.  ``key`` is the
    ``(trigger_index, seq)`` identity the owning worker uses to look the
    payload back up at delivery time.
    """

    __slots__ = ("key", "sender", "recipient", "size")

    def __init__(
        self, key: tuple, sender: int, recipient: int, size: int
    ) -> None:
        self.key = key
        self.sender = sender
        self.recipient = recipient
        self.size = size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RemoteSend {self.sender}->{self.recipient} "
            f"size={self.size} key={self.key}>"
        )


@dataclass
class Network:
    """Message transport with byte accounting.

    Attributes:
        sizes: wire-size constants used to price each message.
        meter: bandwidth accounting (per node, per round).
        taps: passive observers receiving a copy of all messages.
        drop_rules: fault-injection predicates; any True drops the message.
    """

    sizes: WireSizes = field(default_factory=WireSizes)
    meter: BandwidthMeter = field(default_factory=BandwidthMeter)
    taps: List[TrafficTap] = field(default_factory=list)
    drop_rules: List[DropRule] = field(default_factory=list)
    _queue: Deque[Message] = field(default_factory=deque)
    current_round: int = 0
    messages_sent: int = 0
    messages_dropped: int = 0
    #: messages withheld by a delaying rule (released later; counted
    #: once at withhold time, never re-counted as sent).
    messages_delayed: int = 0
    #: when set, sends are diverted into this capture instead of the
    #: shared meter/queue/taps (see :class:`SendCapture`).
    _capture: Optional["SendCapture"] = field(default=None, repr=False)

    def send(self, message: Message) -> None:
        """Queue a message for delivery within the current round.

        The sender pays upload and the recipient pays download for the
        full wire size whether or not a drop rule later discards it
        (bytes leave the NIC before the fault happens); dropped messages
        simply never reach ``on_message``.
        """
        if message.sender == message.recipient:
            raise ValueError(
                f"node {message.sender} attempted to send {message.kind} "
                "to itself"
            )
        size = message.size_bytes(self.sizes)
        capture = self._capture
        if capture is not None:
            capture.record(message, size, self.current_round)
            return
        self.meter.record(
            message.sender, message.recipient, size, self.current_round
        )
        self.messages_sent += 1
        if not self._apply_rules(message):
            for tap in self.taps:
                tap.observe(message, size)
            self._queue.append(message)
        self._release_delayed()

    def _apply_rules(self, message: Message) -> bool:
        """Run drop rules; True when the message was withheld.

        A rule marked ``withholds_for_delay`` absorbs the message for
        later release instead of dropping it; the counters distinguish
        the two fates.
        """
        for rule in self.drop_rules:
            if rule(message):
                if getattr(rule, "withholds_for_delay", False):
                    self.messages_delayed += 1
                else:
                    self.messages_dropped += 1
                return True
        return False

    def _release_delayed(self) -> None:
        """Re-enqueue messages whose delay elapsed.

        Called after every rule evaluation (and at round boundaries via
        :meth:`begin_round`), so release points are a deterministic
        function of the global send order.  Released messages were
        already metered and counted at original send time; they re-enter
        the queue tap-observed but bypass the drop rules — one fault per
        message keeps schedules replayable.
        """
        if not self.drop_rules:
            return
        for rule in self.drop_rules:
            take = getattr(rule, "take_released", None)
            if take is None:
                continue
            for message in take():
                self._enqueue_released(message)

    def _enqueue_released(self, message: Message) -> None:
        size = message.size_bytes(self.sizes)
        for tap in self.taps:
            tap.observe(message, size)
        self._queue.append(message)

    # -- shard capture -----------------------------------------------------

    def begin_capture(self) -> "SendCapture":
        """Divert subsequent sends into an isolated :class:`SendCapture`.

        Used by sharded execution: while one shard's messages are being
        delivered, any replies its nodes send are buffered (with their
        own meter and tap log) instead of touching the shared state.
        Nest-free: captures must be released before starting another.
        """
        if self._capture is not None:
            raise RuntimeError("a send capture is already active")
        self._capture = SendCapture()
        return self._capture

    def release_capture(self) -> "SendCapture":
        """Stop capturing and return the buffer (without merging it)."""
        capture = self._capture
        if capture is None:
            raise RuntimeError("no send capture is active")
        self._capture = None
        return capture

    def merge_captures(self, captures: List["SendCapture"]) -> None:
        """Fold released shard captures back into the shared state.

        Meters merge in shard-index order (addition, exact); the
        buffered sends of all shards are interleaved by
        ``(trigger_index, seq)`` — the order a serial walk of the batch
        would have produced them in — and only then run through the
        drop rules and taps, so stateful fault injectors and observers
        see the same message sequence under either policy.
        """
        if self._capture is not None:
            raise RuntimeError("cannot merge while a capture is active")
        entries: List[tuple] = []
        for capture in captures:
            self.meter.merge_from(capture.meter)
            entries.extend(capture.entries)
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        for _, _, message, size in entries:
            self.messages_sent += 1
            if not self._apply_rules(message):
                for tap in self.taps:
                    tap.observe(message, size)
                self._queue.append(message)
            self._release_delayed()

    def merge_remote(self, sends: List[RemoteSend]) -> None:
        """Fast-path merge of worker-held sends, from metadata alone.

        The caller passes :class:`RemoteSend` entries already in the
        reconstructed serial order; each is metered and queued exactly
        as :meth:`merge_captures` would have done with the full message.
        Only valid while no taps or drop rules are installed — those
        must observe real messages, so the parallel policy falls back to
        full captures whenever either is present.
        """
        if self.taps or self.drop_rules:
            raise RuntimeError(
                "metadata-only merge is invalid while taps or drop rules "
                "are installed"
            )
        record = self.meter.record
        rnd = self.current_round
        for send in sends:
            record(send.sender, send.recipient, send.size, rnd)
        self.messages_sent += len(sends)
        self._queue.extend(sends)

    def pending(self) -> int:
        return len(self._queue)

    def pop(self) -> Optional[Message]:
        """Next message to deliver, or None when the round is quiescent."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def take_pending(self) -> Deque[Message]:
        """Hand over the whole pending queue and start a fresh one.

        Replies sent while the caller processes the batch land in the
        new queue, so alternating ``take_pending`` with batch delivery
        yields exactly the order one-at-a-time :meth:`pop` would.
        """
        batch = self._queue
        self._queue = deque()
        return batch

    def begin_round(self, round_no: int) -> None:
        if self._queue:
            raise RuntimeError(
                f"round {round_no} started with {len(self._queue)} "
                "undelivered messages"
            )
        self.current_round = round_no
        self._flush_delayed()

    def _flush_delayed(self) -> None:
        """Round boundary: release everything delaying rules still hold.

        Caps any delay at one round boundary, which keeps delayed acks
        and declarations inside the protocol's recovery window (the
        accusation path and monitor rotation absorb a one-round skew;
        longer withholding would be indistinguishable from loss anyway).
        Flushed messages are delivered first in the new round, before
        any node's fan-out — the same position under every policy.
        """
        for rule in self.drop_rules:
            flush = getattr(rule, "flush_delayed", None)
            if flush is None:
                continue
            for message in flush():
                self._enqueue_released(message)

    def fault_report(self) -> dict:
        """Per-injector fault counters (see ``sim/faults.fault_report``)."""
        from repro.sim.faults import fault_report

        return fault_report(self.drop_rules)

    def add_tap(self, tap: TrafficTap) -> None:
        self.taps.append(tap)

    def add_drop_rule(self, rule: DropRule) -> None:
        self.drop_rules.append(rule)
