"""Round-synchronous discrete-event simulation substrate.

Replaces the paper's Grid'5000 deployment and OMNeT++ simulations with a
single engine that executes the protocols' real message sequences and
meters every byte (see DESIGN.md, section 4, for the substitution
argument).
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.execution import (
    ExecutionPolicy,
    SerialPolicy,
    ShardedPolicy,
    make_policy,
)
from repro.sim.faults import LinkCut, NodeOutage, RandomLoss
from repro.sim.message import Message, WireSizes
from repro.sim.metrics import BandwidthMeter, NodeTraffic, cdf_points, kbps
from repro.sim.network import Network, SendCapture
from repro.sim.node import SimNode
from repro.sim.rng import SeedSequence, derive_seed
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "BandwidthMeter",
    "ExecutionPolicy",
    "LinkCut",
    "Message",
    "Network",
    "NodeOutage",
    "NodeTraffic",
    "RandomLoss",
    "SeedSequence",
    "SendCapture",
    "SerialPolicy",
    "ShardedPolicy",
    "SimNode",
    "Simulator",
    "TraceRecord",
    "TraceRecorder",
    "WireSizes",
    "cdf_points",
    "derive_seed",
    "kbps",
    "make_policy",
]
