"""Entry point for ``python -m repro``."""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
