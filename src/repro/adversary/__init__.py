"""Adversaries: selfish strategies, privacy coalitions, global observer."""

from __future__ import annotations

from repro.adversary.active import ActiveInjector
from repro.adversary.coalition import Coalition, ExchangeDiscovery
from repro.adversary.observer import GlobalObserver
from repro.adversary.selfish import (
    ContactAvoider,
    DeclarationSkipper,
    FreeRider,
    LyingMonitor,
    PartialForwarder,
    SilentReceiver,
    StealthyFreeRider,
)

__all__ = [
    "ActiveInjector",
    "Coalition",
    "ContactAvoider",
    "DeclarationSkipper",
    "ExchangeDiscovery",
    "FreeRider",
    "GlobalObserver",
    "LyingMonitor",
    "PartialForwarder",
    "SilentReceiver",
    "StealthyFreeRider",
]
