"""The *active* part of the global and active opponent (section III).

Beyond wiretapping, the opponent "can control some nodes in the system
and make them share information or deviate from the protocol (if
possible)" and, in the ProVerif scenarios, "can replay, or inject
messages in the network".  This module provides an injector that mounts
those attacks against a running session, so the tests can verify the
protocol's defences operationally:

* **replay** — re-deliver previously recorded messages (signatures are
  valid!); idempotent handlers and per-round keys must neutralise them;
* **forged acks** — inject acknowledgements with fabricated signatures
  or hashes on behalf of honest nodes, attempting to frame them or to
  discharge a cheater's obligation;
* **forged attestations** — attempt to shrink a victim's forwarding
  obligation by injecting smaller attested hashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.messages import Ack, AckRelay, SignedAck
from repro.core.session import PagSession
from repro.sim.message import Message
from repro.sim.trace import TraceRecorder

__all__ = ["ActiveInjector"]


class _AttackerNode:
    """A ghost participant that emits the injector's queued messages.

    Registered in the simulator under an id outside the membership; it
    spoofs the ``sender`` field of whatever it injects (the network is
    unauthenticated below the signature layer, exactly the paper's
    model).
    """

    def __init__(self, node_id: int, network, queue: List[Message]) -> None:
        self.node_id = node_id
        self.network = network
        self._queue = queue
        self.injected = 0

    def begin_round(self, round_no: int) -> None:
        pending, self._queue[:] = list(self._queue), []
        for message in pending:
            self.network.send(message)
            self.injected += 1

    def on_message(self, message: Message) -> None:
        """The attacker silently absorbs anything sent to it."""

    def end_round(self, round_no: int) -> None:
        pass

    def send(self, message: Message) -> None:
        self.network.send(message)


@dataclass
class ActiveInjector:
    """Records traffic and re-injects (possibly mutated) copies.

    Attach to a session with :meth:`attach`, queue attacks with the
    ``replay_*``/``forge_*`` methods, then keep running the session —
    the injections enter the network at the start of the next round.
    """

    session: PagSession
    recorder: TraceRecorder = field(
        default_factory=lambda: TraceRecorder(keep_messages=True)
    )
    _queue: List[Message] = field(default_factory=list)
    _node: Optional[_AttackerNode] = None

    #: node id of the ghost attacker (outside any membership).
    ATTACKER_ID = 10_000_000

    def attach(self) -> "ActiveInjector":
        self.session.simulator.network.add_tap(self.recorder)
        self._node = _AttackerNode(
            self.ATTACKER_ID,
            self.session.simulator.network,
            self._queue,
        )
        self.session.simulator.add_node(self._node)
        return self

    @property
    def injected(self) -> int:
        return self._node.injected if self._node else 0

    def _inject_now(self, message: Message) -> None:
        self._queue.append(message)

    # -- attacks -----------------------------------------------------------

    def replay_recent(
        self, kinds: Optional[set[str]] = None, limit: int = 50
    ) -> int:
        """Queue verbatim replays of recently recorded messages."""
        picked = 0
        for message in reversed(self.recorder.messages):
            if kinds is not None and message.kind not in kinds:
                continue
            self._inject_now(message)
            picked += 1
            if picked >= limit:
                break
        return picked

    def forge_ack(
        self,
        victim: int,
        server: int,
        round_no: int,
        hash_total: int = 0xDEAD,
    ) -> None:
        """Inject an Ack "from" ``victim`` with a fabricated signature.

        If accepted, it would discharge ``server``'s obligation with a
        wrong hash (framing the server) or fake the victim's
        acknowledgement.  Signature verification must reject it.
        """
        forged = SignedAck(
            round_no=round_no,
            receiver=victim,
            server=server,
            hash_total=hash_total,
            key_prime_count=1,
            signature=0xBADC0DE,  # not a valid signature
        )
        self._inject_now(
            Ack(
                sender=victim,
                recipient=server,
                round_no=round_no,
                ack=forged,
            )
        )

    def forge_ack_relay(
        self,
        to_monitor: int,
        server: int,
        receiver: int,
        round_no: int,
        hash_total: int = 0xDEAD,
    ) -> None:
        """Inject a message-9 relay carrying a forged ack, attempting to
        convict ``server`` of a wrong forward set."""
        forged = SignedAck(
            round_no=round_no,
            receiver=receiver,
            server=server,
            hash_total=hash_total,
            key_prime_count=1,
            signature=0xBADC0DE,
        )
        self._inject_now(
            AckRelay(
                sender=receiver,
                recipient=to_monitor,
                round_no=round_no,
                server=server,
                ack=forged,
                signature=0xBADC0DE,
            )
        )
