"""Selfish strategies: the deviations PAG must deter.

Section II-A: selfish nodes "tamper with their software ... in order to
maximise their benefit (e.g., receiving the disseminated content as fast
as possible) while minimising their contribution (e.g., saving bandwidth
or computational resources)".  Each strategy here overrides exactly the
behaviour hooks it needs; everything else stays correct, which is how a
rational deviator behaves (deviate only where it pays).

These are the deviation vectors of the accountability analysis
(section VI-B) and the free-rider populations of the evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.core.behavior import Behavior
from repro.core.messages import ServeEntry

__all__ = [
    "FreeRider",
    "PartialForwarder",
    "SilentReceiver",
    "DeclarationSkipper",
    "ContactAvoider",
    "LyingMonitor",
    "StealthyFreeRider",
]


@dataclass
class FreeRider(Behavior):
    """Receives everything, forwards nothing.

    The canonical selfish node: it still runs the receiver side (it
    wants the stream) but drops every serve payload, saving its entire
    upload bandwidth.  Caught by the forwarding check: its successors
    acknowledge an empty product while its monitors hold a non-trivial
    obligation.
    """

    def filter_serve(
        self, entries: Sequence[ServeEntry], successor: int, round_no: int
    ) -> Tuple[ServeEntry, ...]:
        return ()


@dataclass
class PartialForwarder(Behavior):
    """Forwards only a fraction of its obligation (cheaper, subtler).

    Caught the same way as the free-rider: any dropped entry changes the
    served product, so the successor's acknowledged hash cannot match
    the monitors' accumulated obligation.

    Attributes:
        keep_fraction: fraction of entries actually served.
        seed: private randomness of the cheater.
    """

    keep_fraction: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def filter_serve(
        self, entries: Sequence[ServeEntry], successor: int, round_no: int
    ) -> Tuple[ServeEntry, ...]:
        kept = [
            e for e in entries if self._rng.random() < self.keep_fraction
        ]
        return tuple(kept)


@dataclass
class SilentReceiver(Behavior):
    """Violates R1: never issues primes nor acknowledges serves.

    A node that refuses reception cannot be forced to watch the stream,
    but it must not go *unpunished* — otherwise "leave and rejoin"
    becomes a free ride.  Its servers accuse it (Fig. 3); the monitors'
    probe goes unanswered; the Nack convicts it.
    """

    def answers_key_request(self, predecessor: int, round_no: int) -> bool:
        return False

    def sends_ack(self, server: int, round_no: int) -> bool:
        return False

    def answers_probe(self, monitor: int, round_no: int) -> bool:
        return False


@dataclass
class DeclarationSkipper(Behavior):
    """Acknowledges to its servers but hides receptions from its own
    monitors (skips messages 6-7), hoping to shed its forwarding
    obligation.

    Caught by the investigation: the server exhibits the signed Ack the
    skipper's monitors never received (section IV-A), which is the
    OMITTED_DECLARATION conviction.
    """

    def declares_to_monitors(self, server: int, round_no: int) -> bool:
        return False


@dataclass
class ContactAvoider(Behavior):
    """Violates the obligation to contact successors: initiates no
    exchanges at all (saves the entire server side).

    Its monitors receive no ack relays, investigate, get no exhibit and
    no accusation claim, and convict at the deadline.
    """

    def initiates_exchange(self, successor: int, round_no: int) -> bool:
        return False

    def accuses_silent_successor(self, successor: int, round_no: int) -> bool:
        return False


@dataclass
class LyingMonitor(Behavior):
    """A corrupted monitor that broadcasts wrong lifted hashes.

    Framing attack: by corrupting the message-8 values it feeds the
    other monitors, it inflates its victims' apparent obligations so
    every successor acknowledgement mismatches — an attempt to get
    honest nodes convicted of WRONG_FORWARD_SET.  Defeated by the
    section V-B cross-checks (``PagConfig(monitor_cross_checks=True)``):
    the monitored node's signed self-check plus the successors' acks
    arbitrate, and the liar is convicted of MONITOR_MISBEHAVIOR.
    """

    def transform_lifted(
        self,
        monitored: int,
        predecessor: int,
        round_no: int,
        lifted: Tuple[int, int],
    ) -> Tuple[int, int]:
        forward, ack_only = lifted
        return (forward * 31337 + 1, ack_only)


@dataclass
class StealthyFreeRider(Behavior):
    """Drops obligations only occasionally, and stonewalls investigations.

    Exists to show detection is not limited to blatant cheaters: a
    single dropped entry in a single round flips the product hash.

    Attributes:
        drop_every: drop the serve every k-th round.
    """

    drop_every: int = 5

    def filter_serve(
        self, entries: Sequence[ServeEntry], successor: int, round_no: int
    ) -> Tuple[ServeEntry, ...]:
        if round_no % self.drop_every == 0:
            return ()
        return tuple(entries)

    def answers_investigation(self, monitor: int, round_no: int) -> bool:
        return False
