"""The global passive observer: what a full wiretap learns from PAG.

Section III's opponent "can monitor and record the traffic on network
links" but "is not able to invert encryptions".  Against PAG this means
the observer sees *who talks to whom and how much* — but never which
updates travel, because payloads are encrypted and every verification
artefact is a homomorphic hash under link-private primes.

:class:`GlobalObserver` consumes the simulator's traffic trace and
exposes exactly the inferences such an observer could draw.  The privacy
tests assert both directions:

* the observer's view contains **no** update identifiers or contents
  (P1: unlinkability between updates and nodes), and
* the observer *can* reconstruct the communication graph — PAG hides
  content, not traffic patterns (it is *partially* privacy-preserving).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.sim.message import Message
from repro.sim.trace import TraceRecorder

__all__ = ["GlobalObserver"]

#: message kinds whose bodies are public-key encrypted on the wire.
_ENCRYPTED_KINDS = {"key_response", "serve", "attestation_relay"}


@dataclass
class GlobalObserver:
    """A wiretap over every link, built on the trace recorder."""

    trace: TraceRecorder = field(default_factory=TraceRecorder)

    def observe(self, message: Message, size: int) -> None:
        """TrafficTap interface: record metadata only."""
        self.trace.observe(message, size)

    # -- inferences available to the observer ---------------------------

    def communication_graph(self) -> Set[Tuple[int, int]]:
        """Directed (sender, recipient) pairs — visible to any wiretap."""
        return self.trace.link_set()

    def traffic_volume(self, node_id: int) -> int:
        return sum(
            r.size
            for r in self.trace
            if r.sender == node_id or r.recipient == node_id
        )

    def message_kind_histogram(self) -> Counter:
        return self.trace.kinds()

    def serving_relations(self, round_no: int) -> Set[Tuple[int, int]]:
        """Who served whom in a round (inferable from Serve messages:
        metadata, not content)."""
        return {
            (r.sender, r.recipient)
            for r in self.trace.in_round(round_no)
            if r.kind == "serve"
        }

    def payload_estimate(self, sender: int, recipient: int) -> int:
        """Bytes of serve traffic on a link — size leaks volume, which
        the paper accepts (updates could be padded)."""
        return sum(
            r.size
            for r in self.trace.between(sender, recipient)
            if r.kind == "serve"
        )

    def visible_plaintext_fields(self) -> Dict[str, int]:
        """What unencrypted traffic the observer categorised.

        Everything it gets is hashes, signatures, and identifiers of
        *nodes*; the only update-bearing plaintexts are the accusation
        path's probes (the documented partial-privacy sacrifice).
        """
        visible = Counter()
        for record in self.trace:
            if record.kind not in _ENCRYPTED_KINDS:
                visible[record.kind] += record.size
        return dict(visible)

    def accusation_exposures(self) -> List[Tuple[int, int, int]]:
        """(round, accuser, accused) of exchanges whose content leaked to
        monitors through the Fig. 3 failure path."""
        return [
            (r.round_no, r.sender, r.recipient)
            for r in self.trace
            if r.kind == "accusation"
        ]
