"""Coalition attacks on privacy: who can decrypt whose exchanges.

Section VII-E evaluates "the privacy leakage performed by a global and
active attacker that would control more than f nodes".  The attack the
ProVerif analysis found (section VI-A) needs, for a victim link A -> B:

* at least one corrupted monitor of B — the designated monitor for some
  colluding predecessor j holds the cofactor ``prod_{k != j} p_k``;
* enough corrupted predecessors of B that dividing their known primes
  out of that cofactor leaves exactly ``p_A`` — i.e. **all of B's
  predecessors except at most two** (A itself and the predecessor whose
  cofactor is used) must collude.

With the prime ``p_A`` recovered, the global wiretap's recordings of the
(encrypted) A -> B exchange become interpretable: the coalition can test
candidate update sets against the observed hashes.

This module implements the structural test on concrete round topologies;
:mod:`repro.analysis.privacy` has the closed-form counterpart used for
Fig. 10's curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

from repro.membership.views import ViewProvider

__all__ = ["Coalition", "ExchangeDiscovery"]


@dataclass(frozen=True)
class ExchangeDiscovery:
    """Verdict on one directed exchange."""

    server: int
    receiver: int
    round_no: int
    discovered: bool
    how: str


@dataclass
class Coalition:
    """A set of colluding nodes controlled by the global active opponent.

    Attributes:
        members: the corrupted node ids.
        sees_endpoints: an exchange whose endpoint is corrupted is
            trivially discovered (the "theoretical minimum" curve of
            Fig. 10).
    """

    members: Set[int] = field(default_factory=set)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.members

    def corrupted(self, nodes: Iterable[int]) -> List[int]:
        return [n for n in nodes if n in self.members]

    # ------------------------------------------------------------------

    def discovers_exchange(
        self,
        views: ViewProvider,
        server: int,
        receiver: int,
        round_no: int,
    ) -> ExchangeDiscovery:
        """Does the coalition learn the content of server -> receiver?

        Applies the structural attack condition of sections VI-A/VII-E
        to the actual predecessor and monitor sets of the round.
        """
        if server in self.members or receiver in self.members:
            return ExchangeDiscovery(
                server, receiver, round_no, True, "endpoint corrupted"
            )
        predecessors = views.predecessors(receiver, round_no)
        monitors = views.monitors(receiver)
        corrupt_monitors = self.corrupted(monitors)
        if not corrupt_monitors:
            return ExchangeDiscovery(
                server, receiver, round_no, False, "no corrupted monitor"
            )
        honest_preds = [p for p in predecessors if p not in self.members]
        # The attack divides colluding primes out of one colluding
        # predecessor's cofactor; it isolates p_server only when the
        # server is the sole honest predecessor besides the cofactor
        # owner.  "all its predecessors except at most two ... collude".
        colluding_preds = [p for p in predecessors if p in self.members]
        if len(honest_preds) <= 2 and colluding_preds:
            return ExchangeDiscovery(
                server,
                receiver,
                round_no,
                True,
                (
                    f"{len(corrupt_monitors)} corrupted monitor(s) hold "
                    f"cofactors; only {len(honest_preds)} honest "
                    "predecessor(s) remain"
                ),
            )
        return ExchangeDiscovery(
            server,
            receiver,
            round_no,
            False,
            f"{len(honest_preds)} honest predecessors keep the product "
            "unfactorable",
        )

    def discovery_rate(
        self,
        views: ViewProvider,
        rounds: Sequence[int],
    ) -> Tuple[float, int, int]:
        """Fraction of all exchanges in ``rounds`` the coalition discovers.

        Returns (rate, discovered, total) over every server->receiver
        link implied by the views.
        """
        discovered = 0
        total = 0
        for round_no in rounds:
            for server in views.directory.members:
                for receiver in views.successors(server, round_no):
                    total += 1
                    outcome = self.discovers_exchange(
                        views, server, receiver, round_no
                    )
                    if outcome.discovered:
                        discovered += 1
        if total == 0:
            return 0.0, 0, 0
        return discovered / total, discovered, total
