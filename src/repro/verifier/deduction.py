"""Dolev-Yao deduction: what can the attacker derive?

Standard two-phase intruder deduction, the same structure ProVerif's
Horn-clause saturation computes for this class of protocol:

1. **Analysis** (destructors to saturation): open pairs, open
   signatures, decrypt with known private keys, and divide known prime
   products by known sub-products.  All rules shrink terms, so the
   closure terminates.
2. **Synthesis** (constructors, on demand): to decide whether a target
   term is derivable, recursively check whether it can be built from
   analysed knowledge with pairing, encryption, signing (needs the
   key), multiplying products, and applying/re-keying/combining the
   homomorphic hash.

The attacker cannot invert the hash, decrypt without the key, forge
signatures, or factor a product it does not already partially know —
exactly the assumptions of section III ("The only limitation of the
global and active opponent is that it is not able to invert
encryptions") plus the hardness of factoring (section IV-B).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set

from repro.verifier.terms import (
    AEnc,
    Atom,
    HHash,
    Pair,
    PrivKey,
    Prod,
    PubKey,
    Sig,
    Term,
    is_subset,
    multiset_subtract,
)

__all__ = ["analyze", "can_derive", "Knowledge"]

Knowledge = FrozenSet[Term]


def analyze(initial: Iterable[Term]) -> Knowledge:
    """Destructor closure of the attacker's knowledge."""
    knowledge: Set[Term] = set(initial)
    changed = True
    while changed:
        changed = False
        for term in list(knowledge):
            for derived in _destruct(term, knowledge):
                if derived not in knowledge:
                    knowledge.add(derived)
                    changed = True
        # Division: for every pair of known products, a known
        # sub-product exposes the quotient.
        products = [t for t in knowledge if isinstance(t, Prod)]
        for big in products:
            for small in products:
                if big is small:
                    continue
                if is_subset(small.primes, big.primes) and small.primes:
                    quotient = Prod(
                        multiset_subtract(big.primes, small.primes)
                    )
                    if quotient.primes and quotient not in knowledge:
                        knowledge.add(quotient)
                        changed = True
        # A singleton product and its atom are interchangeable.
        for term in list(knowledge):
            if isinstance(term, Prod) and len(term.primes) == 1:
                name, count = term.primes[0]
                if count == 1 and Atom(name) not in knowledge:
                    knowledge.add(Atom(name))
                    changed = True
            if isinstance(term, Atom):
                single = Prod.of(term.name)
                if single not in knowledge:
                    knowledge.add(single)
                    changed = True
    return frozenset(knowledge)


def _destruct(term: Term, knowledge: Set[Term]) -> Iterable[Term]:
    if isinstance(term, Pair):
        yield term.left
        yield term.right
    elif isinstance(term, Sig):
        # Signatures are content-revealing.
        yield term.message
    elif isinstance(term, AEnc):
        if PrivKey(term.agent) in knowledge:
            yield term.message


def can_derive(target: Term, knowledge: Knowledge) -> bool:
    """Synthesis: can the attacker construct ``target``?

    ``knowledge`` must already be analysed (destructor-closed).
    """
    return _derive(target, knowledge, in_progress=set())


def _derive(
    target: Term, knowledge: Knowledge, in_progress: Set[Term]
) -> bool:
    if target in knowledge:
        return True
    if target in in_progress:
        return False  # cycle: this branch cannot make progress
    in_progress = in_progress | {target}

    if isinstance(target, Pair):
        return _derive(target.left, knowledge, in_progress) and _derive(
            target.right, knowledge, in_progress
        )
    if isinstance(target, PubKey):
        return True  # public keys are public
    if isinstance(target, AEnc):
        return _derive(target.message, knowledge, in_progress)
    if isinstance(target, Sig):
        # Forging needs the signer's private key.
        return PrivKey(target.agent) in knowledge and _derive(
            target.message, knowledge, in_progress
        )
    if isinstance(target, Atom):
        # Atoms are not inventable; only direct knowledge (or the
        # singleton-product equivalence, handled by analyze) yields them.
        return Prod.of(target.name) in knowledge
    if isinstance(target, Prod):
        return _derive_product(target, knowledge, in_progress)
    if isinstance(target, HHash):
        return _derive_hash(target, knowledge, in_progress)
    return False


def _derive_product(
    target: Prod, knowledge: Knowledge, in_progress: Set[Term]
) -> bool:
    if not target.primes:
        return True  # the empty product (1) is trivial
    # Multiply two known/derivable sub-products: try splitting off any
    # known product that fits inside the target.
    for term in knowledge:
        if not isinstance(term, Prod) or not term.primes:
            continue
        if term == target:
            return True
        if is_subset(term.primes, target.primes):
            rest = Prod(multiset_subtract(target.primes, term.primes))
            if _derive(rest, knowledge, in_progress):
                return True
    return False


def _derive_hash(
    target: HHash, knowledge: Knowledge, in_progress: Set[Term]
) -> bool:
    # Direct construction: know the base product's factors (updates are
    # public candidates in the paper's attack model only if the attacker
    # holds them as atoms) and the full key product.
    base_atoms_known = all(
        Prod.of(name) in knowledge or Atom(name) in knowledge
        for name, _count in target.base
    )
    if base_atoms_known and _derive(
        Prod(target.key), knowledge, in_progress
    ):
        return True
    # Re-keying: lift any known hash of the same base by a derivable
    # complementary product.
    for term in knowledge:
        if not isinstance(term, HHash) or term.base != target.base:
            continue
        if term.key == target.key:
            return True
        if is_subset(term.key, target.key):
            complement = Prod(multiset_subtract(target.key, term.key))
            if _derive(complement, knowledge, in_progress):
                return True
    # Combination: split the base into a known hash under the same key
    # plus a derivable remainder.
    for term in knowledge:
        if not isinstance(term, HHash) or term.key != target.key:
            continue
        if is_subset(term.base, target.base) and term.base != target.base:
            rest = HHash(
                base=multiset_subtract(target.base, term.base),
                key=target.key,
            )
            if _derive(rest, knowledge, in_progress):
                return True
    return False
