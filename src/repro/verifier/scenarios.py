"""The verification scenarios of section VI-A, cases (1) and (2).

* **Case (1)** — a global network attacker: sees every wire message,
  can replay/inject (modelled by the synthesis rules), controls no
  role.  Expected: property P1 holds — no link prime is derivable, so
  no update can be linked to an exchange.
* **Case (2)** — the network attacker plus a coalition of at most
  ``f - 1`` nodes among B's monitors and predecessors, in every
  composition ("(f-2) monitors and 1 predecessor, (f-3) monitors and 2
  predecessors, etc.").  Expected: P1 still holds.
* **The f-coalition attack** — the attack ProVerif finds: ``f`` nodes
  (all predecessors but the victim, plus the designated monitor holding
  a colluding predecessor's cofactor) recover the victim's prime by
  dividing known primes out of the cofactor.

``check_secrecy`` returns, per link, whether the attacker can (a) derive
the link's prime and (b) link the update to the exchange by
reconstructing its buffermap/attestation hash — the operational meaning
of property P1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Tuple

from repro.verifier.deduction import analyze, can_derive
from repro.verifier.protocol import PagScenario
from repro.verifier.terms import HHash, Prod, Term

__all__ = [
    "LinkSecrecy",
    "attacker_knowledge",
    "check_secrecy",
    "case1_network_attacker",
    "case2_coalitions",
    "f_coalition_attack",
]


@dataclass(frozen=True)
class LinkSecrecy:
    """Secrecy verdict for one predecessor link A_i -> B."""

    predecessor: str
    prime_derivable: bool
    update_linkable: bool

    @property
    def private(self) -> bool:
        return not (self.prime_derivable or self.update_linkable)


def attacker_knowledge(
    scenario: PagScenario, corrupted: Iterable[str] = ()
):
    """Analysed knowledge of the network attacker plus a coalition."""
    terms: List[Term] = []
    terms += scenario.wire_messages()
    terms += scenario.public_knowledge()
    for role in corrupted:
        terms += scenario.role_private_knowledge(role)
    return analyze(terms)


def check_secrecy(
    scenario: PagScenario, corrupted: Iterable[str] = ()
) -> Dict[str, LinkSecrecy]:
    """Evaluate P1 for every predecessor link under a coalition."""
    knowledge = attacker_knowledge(scenario, corrupted)
    results: Dict[str, LinkSecrecy] = {}
    probe = scenario.probe_update()
    for i, predecessor in enumerate(scenario.predecessors, start=1):
        prime = Prod.of(scenario.prime_name(i))
        # The dictionary test of section VI-A: "the attacker would have
        # to hash any possible combination of updates using the prime
        # number and see if it is equal to the observation".  P1 breaks
        # when the attacker can hash a *fresh candidate* under the
        # *link* prime and compare with the per-link attestation.
        # (Hashing under the full round key K(R,B) only tests the union
        # of all predecessors' sets, which the paper dismisses as
        # impractical — "the number of subsets of a set of size N is
        # equal to 2^N" — so it is not counted as a break of P1.)
        probe_link = HHash.of([probe], [scenario.prime_name(i)])
        results[predecessor] = LinkSecrecy(
            predecessor=predecessor,
            prime_derivable=can_derive(prime, knowledge),
            update_linkable=can_derive(probe_link, knowledge),
        )
    return results


def case1_network_attacker(fanout: int = 3) -> Dict[str, LinkSecrecy]:
    """Case (1): wire-only attacker.  All links must be private."""
    return check_secrecy(PagScenario(fanout=fanout), corrupted=())


def case2_coalitions(
    fanout: int = 3, coalition_size: int | None = None
) -> List[Tuple[Tuple[str, ...], Dict[str, LinkSecrecy]]]:
    """Case (2): every coalition of ``f - 1`` monitors/predecessors.

    Returns each tested coalition with its per-link verdicts.  The
    honest-majority caveat: links whose *own* predecessor is corrupted
    are trivially exposed (the endpoint knows its prime) and are judged
    only on the remaining honest links, as the paper does.
    """
    scenario = PagScenario(fanout=fanout)
    size = coalition_size if coalition_size is not None else fanout - 1
    pool = scenario.predecessors + scenario.monitors
    outcomes = []
    for coalition in combinations(pool, size):
        verdicts = check_secrecy(scenario, corrupted=coalition)
        outcomes.append((coalition, verdicts))
    return outcomes


def f_coalition_attack(fanout: int = 3) -> Tuple[Tuple[str, ...], LinkSecrecy]:
    """The attack ProVerif found: f colluders break one link's privacy.

    Coalition: all predecessors except the victim A1, plus the
    designated monitor of colluding predecessor A2 (who holds A2's
    cofactor ``prod_{k != 2} p_k``).  Dividing the colluders' primes out
    of the cofactor isolates ``p1``.
    """
    scenario = PagScenario(fanout=fanout)
    colluding_preds = scenario.predecessors[1:]
    monitor = scenario.designated_monitor(2)
    coalition = tuple(colluding_preds + [monitor])
    verdicts = check_secrecy(scenario, corrupted=coalition)
    return coalition, verdicts[scenario.predecessors[0]]
