"""Symbolic model of one PAG round — the scenario of section VI-A.

"We consider the representative situation where a node B, assumed to be
correct, receives updates from three predecessors A1, A2 and A3, and has
to forward them to one of its successors C.  For each node, we
instantiated a set of monitors."

The model produces, for that scenario (with configurable fanout f):

* the complete list of wire messages (what the *global* attacker sees);
* the private initial knowledge of every role (what a *corrupted* role
  contributes to a coalition).

Update and prime names are per-link: predecessor ``Ai`` serves update
``u_i`` to B, hashed under prime ``p_i`` freshly chosen by B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.verifier.terms import (
    AEnc,
    Atom,
    HHash,
    Pair,
    PrivKey,
    Prod,
    PubKey,
    Sig,
    Term,
    multiset,
    multiset_subtract,
    tuple_term,
)

__all__ = ["PagScenario", "Role"]


@dataclass(frozen=True)
class Role:
    """One protocol participant in the symbolic scenario."""

    name: str
    kind: str  # "receiver" | "predecessor" | "monitor" | "successor"


@dataclass
class PagScenario:
    """The Fig. 4 / section VI-A verification scenario.

    Attributes:
        fanout: number of predecessors of B (and of monitors; the paper
            couples them — f = 3 is "the simplest where the protocol can
            be proved secure").
    """

    fanout: int = 3
    receiver: str = "B"
    successor: str = "C"
    predecessors: List[str] = field(default_factory=list)
    monitors: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.fanout < 3:
            raise ValueError(
                "the scenario needs at least 3 predecessors (the paper's "
                "minimum for privacy)"
            )
        if not self.predecessors:
            self.predecessors = [f"A{i}" for i in range(1, self.fanout + 1)]
        if not self.monitors:
            self.monitors = [f"M{i}" for i in range(1, self.fanout + 1)]

    # -- naming conventions ------------------------------------------------

    def update_name(self, i: int) -> str:
        return f"u{i}"

    def prime_name(self, i: int) -> str:
        return f"p{i}"

    def all_primes(self) -> List[str]:
        return [self.prime_name(i) for i in range(1, self.fanout + 1)]

    def round_key(self) -> Prod:
        """K(R, B) = product of all primes B issued this round."""
        return Prod(multiset(self.all_primes()))

    def cofactor(self, i: int) -> Prod:
        """``prod_{k != i} p_k`` — what message 7 for predecessor i carries."""
        key = multiset(self.all_primes())
        return Prod(multiset_subtract(key, multiset([self.prime_name(i)])))

    def designated_monitor(self, i: int) -> str:
        """Monitor receiving messages 6-7 for predecessor i (one each —
        the round-robin assignment of section V-B)."""
        return self.monitors[(i - 1) % len(self.monitors)]

    # -- the trace ----------------------------------------------------------

    def wire_messages(self) -> List[Term]:
        """Every message of the round, as observed on the network."""
        messages: List[Term] = []
        b = self.receiver
        for i, a in enumerate(self.predecessors, start=1):
            u = self.update_name(i)
            p = self.prime_name(i)
            serve_key = Atom(f"Kprev_{a}")  # A's previous-round key
            # 1. KeyRequest (signed, clear).
            messages.append(
                Sig(tuple_term(Atom("keyreq"), Atom(a), Atom(b)), a)
            )
            # 2. KeyResponse: {<p_i, buffermap hashes>_B}pk(A).
            buffermap = HHash.of([f"owned_{b}"], [p])
            messages.append(
                AEnc(Sig(tuple_term(Atom(p), buffermap), b), a)
            )
            # 3. Serve: {<updates, K(R-1, A)>_A}pk(B).
            messages.append(
                AEnc(Sig(tuple_term(Atom(u), serve_key), a), b)
            )
            # 4. Attestation: <H(u_i)_(p_i)>_A (clear).
            attestation = Sig(HHash.of([u], [p]), a)
            messages.append(attestation)
            # 5. Ack: <H(u_i)_(Kprev_A)>_B (clear).  The previous-round
            # key is opaque to this round's analysis; model it as a
            # distinct atom key.
            messages.append(
                Sig(HHash.of([u], [f"Kprev_{a}"]), b)
            )
            # 6. AckCopy to the designated monitor (same ack term).
            messages.append(Sig(HHash.of([u], [f"Kprev_{a}"]), b))
            # 7. AttestationRelay: {<attestation, cofactor_i>_B}pk(M).
            monitor = self.designated_monitor(i)
            messages.append(
                AEnc(Sig(Pair(attestation, self.cofactor(i)), b), monitor)
            )
            # 8. MonitorBroadcast: <H(u_i)_(K(R,B))>_M to peer monitors.
            messages.append(
                Sig(HHash.of([u], self.all_primes()), monitor)
            )
        # Next round: B forwards everything to C; C acknowledges under
        # K(R, B) — the combined hash of section V-C (clear signature).
        all_updates = [
            self.update_name(i) for i in range(1, self.fanout + 1)
        ]
        messages.append(
            AEnc(
                Sig(
                    tuple_term(
                        *[Atom(u) for u in all_updates], self.round_key()
                    ),
                    self.receiver,
                ),
                self.successor,
            )
        )
        messages.append(
            Sig(HHash.of(all_updates, self.all_primes()), self.successor)
        )
        return messages

    # -- role knowledge -------------------------------------------------

    def role_private_knowledge(self, role: str) -> List[Term]:
        """What a corrupted ``role`` contributes to a coalition."""
        knowledge: List[Term] = [PrivKey(role)]
        if role == self.receiver:
            knowledge += [Atom(p) for p in self.all_primes()]
            knowledge += [
                Atom(self.update_name(i))
                for i in range(1, self.fanout + 1)
            ]
        elif role in self.predecessors:
            i = self.predecessors.index(role) + 1
            knowledge.append(Atom(self.prime_name(i)))
            knowledge.append(Atom(self.update_name(i)))
            knowledge.append(Atom(f"Kprev_{role}"))
        elif role in self.monitors:
            # Monitors' round state is what messages 6-8 delivered; the
            # wire + its private key already decrypts those.
            pass
        elif role == self.successor:
            knowledge += [
                Atom(self.update_name(i))
                for i in range(1, self.fanout + 1)
            ]
        else:
            raise ValueError(f"unknown role {role!r}")
        return knowledge

    def public_knowledge(self) -> List[Term]:
        """What everyone (and the attacker) starts with.

        Per the paper's attack model, "the attacker has access to the
        list of updates that node B may have received from its
        predecessor": candidate update names are public — what must stay
        secret is *which* of them travelled, i.e. the primes.
        """
        knowledge: List[Term] = []
        roles = (
            [self.receiver, self.successor]
            + self.predecessors
            + self.monitors
        )
        knowledge += [PubKey(r) for r in roles]
        knowledge += [Atom(r) for r in roles]
        knowledge += [
            Atom(self.update_name(i)) for i in range(1, self.fanout + 1)
        ]
        # A fresh candidate update for the offline guessing test: P1 is
        # broken when the attacker can hash an arbitrary candidate under
        # a link key and compare with observations.
        knowledge.append(Atom(self.probe_update()))
        return knowledge

    @staticmethod
    def probe_update() -> str:
        """Name of the attacker's dictionary-test candidate."""
        return "u_probe"
