"""Symbolic (Dolev-Yao) verification of PAG's privacy property P1.

A purpose-built substitute for the paper's ProVerif analysis
(section VI-A): term algebra with the homomorphic-hash equational theory
(:mod:`terms`), two-phase intruder deduction (:mod:`deduction`), the
PAG round model (:mod:`protocol`), and the paper's attack scenarios
(:mod:`scenarios`).
"""

from __future__ import annotations

from repro.verifier.deduction import analyze, can_derive
from repro.verifier.protocol import PagScenario, Role
from repro.verifier.scenarios import (
    LinkSecrecy,
    attacker_knowledge,
    case1_network_attacker,
    case2_coalitions,
    check_secrecy,
    f_coalition_attack,
)
from repro.verifier.terms import (
    AEnc,
    Atom,
    HHash,
    Pair,
    PrivKey,
    Prod,
    PubKey,
    Sig,
    Term,
    multiset,
    tuple_term,
)

__all__ = [
    "AEnc",
    "Atom",
    "HHash",
    "LinkSecrecy",
    "Pair",
    "PagScenario",
    "PrivKey",
    "Prod",
    "PubKey",
    "Role",
    "Sig",
    "Term",
    "analyze",
    "attacker_knowledge",
    "can_derive",
    "case1_network_attacker",
    "case2_coalitions",
    "check_secrecy",
    "f_coalition_attack",
    "multiset",
    "tuple_term",
]
