"""Symbolic term algebra for the Dolev-Yao analysis of PAG.

The paper verifies privacy property P1 with ProVerif (section VI-A); we
reproduce the analysis with a small, purpose-built symbolic engine (see
DESIGN.md, substitutions).  Messages are terms; the attacker is a
deduction system over sets of terms.

The algebra models exactly the operations PAG relies on:

* pairing, asymmetric encryption, signatures (content-revealing);
* products of primes, with the *division* capability — knowing
  ``p1*p2*p3`` and ``p2, p3`` yields ``p1`` — but no factoring;
* the homomorphic hash with its two identities, normalised by
  construction: a hash is always ``HHash(product-of-updates,
  product-of-primes)``, so re-keying and combination are multiset
  unions and the equational theory becomes syntactic equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple

__all__ = [
    "Term",
    "Atom",
    "PubKey",
    "PrivKey",
    "Pair",
    "AEnc",
    "Sig",
    "Prod",
    "HHash",
    "Multiset",
    "multiset",
    "multiset_union",
    "multiset_subtract",
    "is_subset",
]

#: A multiset over atom names: sorted tuple of (name, multiplicity).
Multiset = Tuple[Tuple[str, int], ...]


def multiset(items: Iterable[str] | Mapping[str, int]) -> Multiset:
    """Build a normalised multiset from names or a name->count mapping."""
    counts: Dict[str, int] = {}
    if isinstance(items, Mapping):
        for name, count in items.items():
            if count < 0:
                raise ValueError("negative multiplicity")
            if count:
                counts[name] = counts.get(name, 0) + count
    else:
        for name in items:
            counts[name] = counts.get(name, 0) + 1
    return tuple(sorted(counts.items()))


def multiset_union(a: Multiset, b: Multiset) -> Multiset:
    counts = dict(a)
    for name, count in b:
        counts[name] = counts.get(name, 0) + count
    return tuple(sorted(counts.items()))


def is_subset(a: Multiset, b: Multiset) -> bool:
    """True when multiset ``a`` is contained in ``b``."""
    b_counts = dict(b)
    return all(b_counts.get(name, 0) >= count for name, count in a)


def multiset_subtract(a: Multiset, b: Multiset) -> Multiset:
    """``a - b``; requires ``b`` ⊆ ``a``."""
    if not is_subset(b, a):
        raise ValueError("subtrahend is not a sub-multiset")
    counts = dict(a)
    for name, count in b:
        counts[name] -= count
        if counts[name] == 0:
            del counts[name]
    return tuple(sorted(counts.items()))


class Term:
    """Base class; all terms are immutable and hashable."""

    __slots__ = ()


@dataclass(frozen=True)
class Atom(Term):
    """A basic name: an update, a prime, a nonce, an agent identity."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PubKey(Term):
    """Public key of an agent (always public)."""

    agent: str

    def __repr__(self) -> str:
        return f"pk({self.agent})"


@dataclass(frozen=True)
class PrivKey(Term):
    """Private key of an agent (known only to it, and to the attacker
    if the agent is corrupted)."""

    agent: str

    def __repr__(self) -> str:
        return f"sk({self.agent})"


@dataclass(frozen=True)
class Pair(Term):
    """Concatenation; n-tuples are right-nested pairs."""

    left: Term
    right: Term

    def __repr__(self) -> str:
        return f"<{self.left!r},{self.right!r}>"


def tuple_term(*parts: Term) -> Term:
    """Right-nested tuple builder."""
    if not parts:
        raise ValueError("empty tuple term")
    if len(parts) == 1:
        return parts[0]
    return Pair(parts[0], tuple_term(*parts[1:]))


@dataclass(frozen=True)
class AEnc(Term):
    """Asymmetric encryption of ``message`` under ``pk(agent)``."""

    message: Term
    agent: str

    def __repr__(self) -> str:
        return f"{{{self.message!r}}}pk({self.agent})"


@dataclass(frozen=True)
class Sig(Term):
    """``<m>_agent``: a signature from which the message is recoverable
    (the paper's signed messages are sent in clear with the signature)."""

    message: Term
    agent: str

    def __repr__(self) -> str:
        return f"<{self.message!r}>{self.agent}"


@dataclass(frozen=True)
class Prod(Term):
    """A product of primes, as a multiset of prime names.

    ``Prod((("p1", 1),))`` is the prime itself; products with several
    entries are the round keys and cofactors of section V.  Factoring is
    not an attacker capability; division by a known sub-product is.
    """

    primes: Multiset

    def __repr__(self) -> str:
        factors = []
        for name, count in self.primes:
            factors.extend([name] * count)
        return "*".join(factors) if factors else "1"

    @classmethod
    def of(cls, *names: str) -> "Prod":
        return cls(primes=multiset(names))


@dataclass(frozen=True)
class HHash(Term):
    """``H(prod updates)_(prod primes, M)`` in normal form.

    ``base`` is the multiset of update names (with multiplicities — the
    reception counters of section V-D become exponents), ``key`` the
    multiset of primes.  The two homomorphic identities are normalisation
    rules on this representation:

    * re-keying: ``H(H(u)_K1)_K2 = H(u)_(K1 ∪ K2)``
    * product:   ``H(u1)_K * H(u2)_K = H(u1*u2)_K``
    """

    base: Multiset
    key: Multiset

    def __repr__(self) -> str:
        return f"H({Prod(self.base)!r})_({Prod(self.key)!r})"

    @classmethod
    def of(cls, updates: Iterable[str], primes: Iterable[str]) -> "HHash":
        return cls(base=multiset(updates), key=multiset(primes))


__all__.append("tuple_term")
