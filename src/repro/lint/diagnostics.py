"""Diagnostic records and the rule catalogue for ``repro lint``.

Every analyzer reports :class:`Diagnostic` rows; the runner sorts and
renders them ruff-style (``path:line:col: CODE message``) so editors
and CI annotate findings the same way they annotate ruff's.

The catalogue in :data:`RULES` is the single source of truth for rule
codes: the pragma parser validates ``# lint: allow[CODE]`` comments
against it, ``repro lint --rules`` prints it, and
``docs/INVARIANTS.md`` documents it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Diagnostic", "RULES", "rule_exists"]


#: code -> one-line summary.  Codes are grouped by family: DET1xx are
#: determinism rules, WIRE2xx wire-schema coverage rules, PAR3xx
#: policy-parity rules, PRG9xx pragma hygiene.
RULES: Dict[str, str] = {
    "DET101": (
        "call on the module-level random singleton (use a seeded "
        "random.Random from sim/rng.py)"
    ),
    "DET102": (
        "unseeded or system RNG construction (random.Random() with no "
        "seed, random.SystemRandom)"
    ),
    "DET103": (
        "wall-clock time source (time.time, datetime.now, ...) in "
        "simulation code"
    ),
    "DET104": (
        "operating-system entropy source (os.urandom, secrets, "
        "uuid.uuid1/uuid4)"
    ),
    "DET105": (
        "id()-keyed container: id() values vary across processes and "
        "runs"
    ),
    "DET106": (
        "iteration over an unordered set feeds an ordered sink; sort "
        "first"
    ),
    "DET107": (
        "filesystem-order iteration (os.listdir, glob, iterdir) feeds "
        "an ordered sink; sort first"
    ),
    "WIRE201": "message kind has no registered wire codec",
    "WIRE202": (
        "unbounded varint read in a wire decoder (pass bound=...)"
    ),
    "WIRE203": "wire kind has no fixture in tests/net/fixtures.py",
    "WIRE204": "wire kind has no golden frame in golden_wire_v1.json",
    "WIRE205": (
        "stale wire coverage: fixture or golden entry names an "
        "unregistered kind"
    ),
    "PAR301": (
        "replica-worker scope mutates parent-session state (meters, "
        "verdict stores, counters live in the parent)"
    ),
    "PAR302": (
        "replica-worker scope writes module-global state shared with "
        "the parent process"
    ),
    "PRG901": "allow pragma is missing its mandatory justification",
    "PRG902": "allow pragma suppresses nothing (remove it)",
    "PRG903": "allow pragma names an unknown rule code",
}


def rule_exists(code: str) -> bool:
    return code in RULES


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, addressed like a compiler error.

    Attributes:
        path: file the finding is in (as given to the runner).
        line: 1-based line of the offending node.
        col: 1-based column (ruff convention; ast columns are 0-based
            and are shifted by the analyzers).
        code: rule code from :data:`RULES`.
        message: human-readable detail, specific to the site.
    """

    path: str
    line: int
    col: int
    code: str
    message: str = field(compare=False)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.message}"
        )


def sort_diagnostics(items: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(items)


def summarize(items: List[Diagnostic]) -> Tuple[int, Dict[str, int]]:
    """Total count plus a per-code histogram (for the CLI footer)."""
    by_code: Dict[str, int] = {}
    for item in items:
        by_code[item.code] = by_code.get(item.code, 0) + 1
    return len(items), dict(sorted(by_code.items()))


__all__ += ["sort_diagnostics", "summarize"]
