"""AST policy-parity analyzer (PAR3xx rules).

The bug shape behind every past parity regression: code that runs
*inside a replica worker* (a shard's rebuilt session in
``sim/execution.py``, a shard daemon in ``net/daemon.py``) reaching
out and mutating *parent-session* state — the authoritative meter,
verdict stores, or crypto counters that only the coordinator may
touch.  In process mode such a write is silently lost (the replica's
copy diverges); in thread mode it lands twice (once in the replica
capture, once directly), and either way serial and parallel runs stop
being bit-identical.

Scopes are replica-side when they match a built-in pattern
(``_ReplicaWorker``, module functions starting with ``_process_``,
``NodeDaemon``, ``_PeerLink``) or carry a ``# lint: replica-scope``
marker comment on the ``def``/``class`` line, so new worker entry
points opt in without linter edits.

Inside a replica scope the analyzer flags:

* PAR301 — mutation of *parent-rooted* state: any assignment, deletion
  or known mutator-method call (``.record``, ``.merge_from``,
  ``.add``, ``.append``, ...) whose receiver chain contains a
  parent-denoting identifier (``parent``, ``parent_session``,
  ``coordinator``, ...).  Replica code has no business holding such a
  reference mutably: the merge happens in the parent, after collect.
* PAR302 — writes to module-global state (``global X`` rebinding, or
  mutator calls on module-level ``_UNDERSCORE``/``UPPER`` names).  In
  thread mode replicas share the interpreter with the parent, so a
  module global is exactly the channel through which replica state can
  leak into the authoritative session.

The one legitimate global write (installing the per-process replica
slot in the pool initializer) carries an allow pragma with its
justification.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Sequence, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.pragmas import REPLICA_SCOPE_MARK

__all__ = ["analyze_parity"]

#: Identifiers that denote parent/coordinator state when they appear
#: anywhere in a receiver chain (``self.parent.meter``,
#: ``coordinator.session.counters`` ...).
_PARENT_TOKENS = frozenset(
    {
        "parent", "parent_session", "parent_network", "parent_meter",
        "parent_state", "parent_simulator", "coordinator",
        "authoritative", "authoritative_session",
    }
)

#: Built-in replica-scope name patterns (class or function names).
_SCOPE_PATTERNS = (
    re.compile(r"^_ReplicaWorker$"),
    re.compile(r"^_process_\w+$"),
    re.compile(r"^NodeDaemon$"),
    re.compile(r"^_PeerLink$"),
)

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "add", "append", "appendleft", "extend", "insert", "update",
        "setdefault", "pop", "popitem", "clear", "remove", "discard",
        "record", "merge_from", "push", "write", "add_verdict",
        "admit_node", "remove_node", "reset",
    }
)


def _chain_tokens(node: ast.AST) -> Set[str]:
    """All identifiers along an Attribute/Name/Subscript chain."""
    tokens: Set[str] = set()
    while True:
        if isinstance(node, ast.Attribute):
            tokens.add(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            tokens.add(node.id)
            return tokens
        else:
            return tokens


def _is_replica_scope(
    node: ast.AST, source_lines: Sequence[str]
) -> bool:
    name = getattr(node, "name", "")
    if any(p.match(name) for p in _SCOPE_PATTERNS):
        return True
    lineno = getattr(node, "lineno", 0)
    if 1 <= lineno <= len(source_lines):
        if REPLICA_SCOPE_MARK.search(source_lines[lineno - 1]):
            return True
        # Decorated defs: the marker may sit on the decorator line.
        for deco in getattr(node, "decorator_list", ()):
            dline = getattr(deco, "lineno", 0)
            if 1 <= dline <= len(source_lines) and (
                REPLICA_SCOPE_MARK.search(source_lines[dline - 1])
            ):
                return True
    return False


class _ScopeChecker(ast.NodeVisitor):
    """Checks one replica scope's body for parent/global mutations."""

    def __init__(
        self,
        path: str,
        scope_name: str,
        module_globals: Set[str],
    ) -> None:
        self.path = path
        self.scope_name = scope_name
        self.module_globals = module_globals
        self.declared_global: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []

    def _report(
        self, node: ast.AST, code: str, message: str
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                code,
                message,
            )
        )

    def _check_parent_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_parent_target(elt)
            return
        tokens = _chain_tokens(target)
        hit = tokens & _PARENT_TOKENS
        if hit:
            self._report(
                target,
                "PAR301",
                f"replica scope {self.scope_name!r} writes "
                f"parent-rooted state ({sorted(hit)[0]}); merge via "
                "collect() in the parent instead",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_parent_target(target)
            self._check_global_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_parent_target(node.target)
        self._check_global_write(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_parent_target(node.target)
            self._check_global_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_parent_target(target)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)
        for name in node.names:
            self._report(
                node,
                "PAR302",
                f"replica scope {self.scope_name!r} rebinds module "
                f"global {name!r}; shared module state leaks across "
                "the parent/replica boundary in thread mode",
            )
        self.generic_visit(node)

    def _check_global_write(
        self, target: ast.AST, stmt: ast.AST
    ) -> None:
        """Mutations whose receiver is a module-level global."""
        root = target
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if not isinstance(root, ast.Name) or root is target:
            return
        if root.id in self.module_globals:
            self._report(
                stmt,
                "PAR302",
                f"replica scope {self.scope_name!r} mutates module "
                f"global {root.id!r}; replicas must keep state in "
                "their own session",
            )

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute) and (
            node.func.attr in _MUTATORS
        ):
            tokens = _chain_tokens(node.func.value)
            hit = tokens & _PARENT_TOKENS
            if hit:
                self._report(
                    node,
                    "PAR301",
                    f"replica scope {self.scope_name!r} calls "
                    f".{node.func.attr}() on parent-rooted state "
                    f"({sorted(hit)[0]}); only the parent merges",
                )
            else:
                root = node.func.value
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in self.module_globals
                ):
                    self._report(
                        node,
                        "PAR302",
                        f"replica scope {self.scope_name!r} calls "
                        f".{node.func.attr}() on module global "
                        f"{root.id!r}",
                    )
        self.generic_visit(node)


def _module_global_names(tree: ast.Module) -> Set[str]:
    """Module-level mutable-looking bindings (``_x``/``UPPER``)."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id.startswith("_") or target.id.isupper():
                    names.add(target.id)
    return names


def analyze_parity(
    path: str, tree: ast.Module, source: Optional[str] = None
) -> List[Diagnostic]:
    """Run the PAR3xx rules over one parsed module."""
    source_lines: Sequence[str] = (
        source.splitlines() if source is not None else ()
    )
    module_globals = _module_global_names(tree)
    diagnostics: List[Diagnostic] = []

    def scan(node: ast.AST, in_scope: bool, scope_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                child_in_scope = in_scope or _is_replica_scope(
                    child, source_lines
                )
                child_name = (
                    f"{scope_name}.{child.name}" if scope_name
                    else child.name
                )
                if child_in_scope and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    checker = _ScopeChecker(
                        path, child_name, module_globals
                    )
                    for stmt in child.body:
                        checker.visit(stmt)
                    diagnostics.extend(checker.diagnostics)
                    # Nested defs are covered by the checker walk.
                    continue
                scan(child, child_in_scope, child_name)
            else:
                scan(child, in_scope, scope_name)

    scan(tree, False, "")
    return diagnostics
