"""Project-invariant static analysis (``repro lint``).

Three analyzer families guard the invariants the differential suite
can only probe dynamically:

* :mod:`repro.lint.determinism` — DET1xx: no ambient entropy, no wall
  clock, no address-keyed or hash-ordered data feeding ordered sinks.
* :mod:`repro.lint.wireschema` — WIRE2xx: total wire-format coverage
  (codec + bounds + fixture + golden frame per message kind).
* :mod:`repro.lint.parity` — PAR3xx: replica-worker code never mutates
  parent-session state or shared module globals.

See ``docs/INVARIANTS.md`` for the rule catalogue and the
``# lint: allow[RULE] justification`` pragma syntax.
"""

from __future__ import annotations

from repro.lint.diagnostics import RULES, Diagnostic
from repro.lint.runner import lint_file, lint_paths, lint_source, main

__all__ = [
    "RULES",
    "Diagnostic",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
