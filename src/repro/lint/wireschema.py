"""Wire-schema cross-check (WIRE2xx rules).

The v1 wire format is a compatibility contract: every message kind a
PAG session can emit must have a registered codec, bounded decoders, a
fixture in ``tests/net/fixtures.py`` and a pinned frame in
``tests/net/golden_wire_v1.json``.  Adding a message type without full
wire coverage should fail ``repro lint`` at push time, not a 3 AM
daemon run when the first unencodable message hits the transport.

The check imports the live registries (:mod:`repro.core.messages`,
:mod:`repro.net.wire`) into a :class:`WireModel` and verifies the
model; tests inject mutated models to prove each rule fires.  The
bounds rule (WIRE202) is AST-based: a reader-side ``varint()`` call in
``net/wire.py`` that passes no ``bound=`` accepts up to ``2**70`` —
every structural count on the wire must declare its ceiling.
"""

from __future__ import annotations

import ast
import importlib.util
import inspect
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic

__all__ = ["WireModel", "build_model", "check_model"]


@dataclass
class WireModel:
    """Everything the cross-check compares, decoupled from imports."""

    #: (kind_byte, class name, is_control, source line in wire.py).
    registered: List[Tuple[int, str, bool, int]]
    #: (class name, source line in messages.py) for every message
    #: type with a wire ``kind`` — the set that must be registered.
    message_classes: List[Tuple[str, int]]
    #: class names with at least one instance in tests/net/fixtures.py.
    fixture_classes: Set[str]
    #: class names appearing in golden_wire_v1.json frame keys.
    golden_classes: Set[str]
    #: ``r.varint()`` calls without a bound: (line, col).
    unbounded_varints: List[Tuple[int, int]] = field(
        default_factory=list
    )
    wire_path: str = "src/repro/net/wire.py"
    messages_path: str = "src/repro/core/messages.py"
    fixtures_path: str = "tests/net/fixtures.py"
    golden_path: str = "tests/net/golden_wire_v1.json"
    #: False when tests/ was not found (installed package); fixture
    #: and golden checks are skipped, registry checks still run.
    has_test_assets: bool = True


def _load_fixture_module(path: Path):
    spec = importlib.util.spec_from_file_location(
        "_repro_lint_wire_fixtures", path
    )
    if spec is None or spec.loader is None:  # pragma: no cover
        raise ImportError(f"cannot load fixtures from {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _scan_unbounded_varints(
    source: str,
) -> List[Tuple[int, int]]:
    """Reader-side ``varint()`` calls without a ``bound=``.

    Writer calls always pass the value positionally
    (``w.varint(len(...))``), reader calls pass at most the ``bound``
    keyword — so a zero-argument ``.varint()`` call is precisely an
    unbounded read.
    """
    tree = ast.parse(source)
    hits: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr == "varint"
        ):
            continue
        if node.args:
            continue  # writer side: varint(value)
        if any(kw.arg == "bound" for kw in node.keywords):
            continue
        hits.append((node.lineno, node.col_offset + 1))
    return hits


def build_model(repo_root: Path) -> WireModel:
    """Build the coverage model from the live code and test assets."""
    from repro.core import messages
    from repro.net import wire

    message_classes: List[Tuple[str, int]] = []
    for name in messages.__all__:
        cls = getattr(messages, name)
        if isinstance(getattr(cls, "kind", None), str):
            _, lineno = inspect.findsource(cls)
            message_classes.append((name, lineno + 1))

    registered: List[Tuple[int, str, bool, int]] = []
    for kind_byte, cls, control in wire.schema_table():
        _, lineno = inspect.findsource(cls)
        registered.append(
            (kind_byte, cls.__name__, control, lineno + 1)
        )

    fixtures_path = repo_root / "tests" / "net" / "fixtures.py"
    golden_path = repo_root / "tests" / "net" / "golden_wire_v1.json"
    has_assets = fixtures_path.exists() and golden_path.exists()
    fixture_classes: Set[str] = set()
    golden_classes: Set[str] = set()
    if has_assets:
        fixture_module = _load_fixture_module(fixtures_path)
        fixture_classes = {
            type(m).__name__ for m in fixture_module.all_messages()
        }
        golden = json.loads(golden_path.read_text())
        for key in golden.get("frames", {}):
            _, _, cls_name = key.partition("-")
            if cls_name:
                golden_classes.add(cls_name)

    wire_file = Path(inspect.getsourcefile(wire) or "")
    unbounded = _scan_unbounded_varints(wire_file.read_text())

    def rel(path: Path) -> str:
        try:
            return str(path.relative_to(repo_root))
        except ValueError:
            return str(path)

    return WireModel(
        registered=registered,
        message_classes=message_classes,
        fixture_classes=fixture_classes,
        golden_classes=golden_classes,
        unbounded_varints=unbounded,
        wire_path=rel(wire_file),
        messages_path=rel(
            Path(inspect.getsourcefile(messages) or "messages.py")
        ),
        fixtures_path=rel(fixtures_path),
        golden_path=rel(golden_path),
        has_test_assets=has_assets,
    )


def check_model(model: WireModel) -> List[Diagnostic]:
    """Verify total wire coverage over a :class:`WireModel`."""
    out: List[Diagnostic] = []
    registered_names = {name for _, name, _, _ in model.registered}

    for name, lineno in model.message_classes:
        if name not in registered_names:
            out.append(
                Diagnostic(
                    model.messages_path,
                    lineno,
                    1,
                    "WIRE201",
                    f"message kind {name!r} has no registered codec "
                    "in net/wire.py",
                )
            )

    for line, col in model.unbounded_varints:
        out.append(
            Diagnostic(
                model.wire_path,
                line,
                col,
                "WIRE202",
                "reader varint() without bound= accepts values up to "
                "2**70; declare the structural ceiling",
            )
        )

    if model.has_test_assets:
        for _, name, _, lineno in model.registered:
            if name not in model.fixture_classes:
                out.append(
                    Diagnostic(
                        model.wire_path,
                        lineno,
                        1,
                        "WIRE203",
                        f"wire kind {name!r} has no fixture in "
                        f"{model.fixtures_path}",
                    )
                )
            if name not in model.golden_classes:
                out.append(
                    Diagnostic(
                        model.wire_path,
                        lineno,
                        1,
                        "WIRE204",
                        f"wire kind {name!r} has no pinned frame in "
                        f"{model.golden_path}",
                    )
                )
        for name in sorted(
            model.fixture_classes - registered_names
        ):
            out.append(
                Diagnostic(
                    model.fixtures_path,
                    1,
                    1,
                    "WIRE205",
                    f"fixture instance of {name!r} matches no "
                    "registered wire schema",
                )
            )
        for name in sorted(model.golden_classes - registered_names):
            out.append(
                Diagnostic(
                    model.golden_path,
                    1,
                    1,
                    "WIRE205",
                    f"golden frame for {name!r} matches no "
                    "registered wire schema",
                )
            )
    return out


def check_wire_schema(
    repo_root: Optional[Path] = None,
) -> List[Diagnostic]:
    """Build the live model and check it (the ``repro lint`` entry)."""
    root = repo_root if repo_root is not None else Path.cwd()
    return check_model(build_model(root))


__all__ += ["check_wire_schema"]
