"""AST determinism analyzer (DET1xx rules).

Everything the differential suite promises — bit-identical verdicts
across serial/sharded/parallel/daemon policies, replayable fuzz
campaigns — rests on one invariant: *no simulation code consumes
ambient entropy*.  Randomness flows only through seeded
``random.Random`` instances derived from :mod:`repro.sim.rng`; time
never feeds protocol state; container iteration that lands in ordered
sinks (trace rows, meter records, verdict lists, wire encoders) is
over deterministically ordered collections.

This analyzer enforces the whole class statically:

* DET101 — calls on the module-level ``random`` singleton
  (``random.random()``, ``random.choice()``, ...), including
  from-imports of the singleton functions.
* DET102 — unseeded RNG construction: ``random.Random()`` with no
  arguments, ``random.SystemRandom`` anywhere, and the bare
  ``random.Random`` passed as a ``default_factory``.
* DET103 — wall-clock reads (``time.time``, ``datetime.now``, ...).
  Monotonic timers (``perf_counter``/``thread_time``) are *allowed*:
  they only ever feed wall-time stats, never protocol state.
* DET104 — OS entropy (``os.urandom``, ``secrets.*``, ``uuid.uuid1``,
  ``uuid.uuid4``).
* DET105 — ``id()``-keyed containers: CPython addresses differ across
  processes, so any ordering or lookup keyed on them diverges between
  the serial policy and replica workers.
* DET106 — iteration over a syntactic ``set`` that feeds an ordered
  sink (``.append``/``.record``/``yield``/``list(...)`` ...).  Plain
  ``dict`` iteration is insertion-ordered since 3.7 and is not
  flagged; ``sorted(...)`` wrappers discharge the finding.
* DET107 — filesystem-order iteration (``os.listdir``, ``glob``,
  ``Path.iterdir``) feeding the same sinks without ``sorted(...)``.

Legitimate exceptions (the seeded-stream factory itself, benchmark
entropy) carry ``# lint: allow[RULE] justification`` pragmas — see
:mod:`repro.lint.pragmas`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.lint.diagnostics import Diagnostic

__all__ = ["analyze_determinism"]

#: Module-singleton functions of :mod:`random` (DET101 when called on
#: the module or via from-import).
_SINGLETON_FNS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate",
        "normalvariate", "paretovariate", "randbytes", "randint",
        "random", "randrange", "sample", "seed", "setstate", "shuffle",
        "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

#: Dotted names that read the wall clock (DET103).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Dotted names that tap OS entropy (DET104).
_OS_ENTROPY = frozenset(
    {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"}
)

#: Attribute/method names that commit elements in a fixed order: the
#: "ordered sinks" of the paper's trace rows, meter records, verdict
#: lists and wire encoders.
_ORDERED_SINKS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "record", "write",
        "writelines", "writerow", "writerows", "send", "put", "emit",
        "encode", "push", "add_row", "feed",
    }
)

#: Reducers whose result does not depend on iteration order; a
#: comprehension over a set inside one of these is fine.
_ORDER_FREE = frozenset(
    {
        "sorted", "sum", "min", "max", "len", "any", "all", "set",
        "frozenset", "Counter",
    }
)

#: Callables returning entries in filesystem order (DET107).
_FS_ORDER = frozenset(
    {
        "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
    }
)
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTracker:
    """Maps local names to the canonical dotted names they import."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_imports(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of an expression, import-aware."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def _is_set_expr(node: ast.AST) -> bool:
    """True when the expression is *syntactically* an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    # set.union(...) / a.intersection(b) on a syntactic set.
    if isinstance(node, ast.Call) and isinstance(
        node.func, ast.Attribute
    ):
        if node.func.attr in (
            "union", "intersection", "difference",
            "symmetric_difference",
        ):
            return _is_set_expr(node.func.value)
    return False


def _body_has_ordered_sink(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _ORDERED_SINKS:
                    return True
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                return True
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, imports: _ImportTracker) -> None:
        self.path = path
        self.imports = imports
        self.diagnostics: List[Diagnostic] = []
        #: comprehension nodes discharged by an order-free reducer.
        #: Keyed by id() legitimately: the set lives for one in-process
        #: AST walk and never orders or crosses anything.
        self._order_free_comps: Set[int] = set()

    def _report(
        self, node: ast.AST, code: str, message: str
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                code,
                message,
            )
        )

    # -- DET101/DET102/DET103/DET104: entropy and clock calls ---------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_entropy_call(node)
        if isinstance(node.func, ast.Name):
            if node.func.id in _ORDER_FREE:
                for arg in node.args:
                    if isinstance(
                        arg,
                        (ast.ListComp, ast.GeneratorExp, ast.SetComp),
                    ):
                        # lint: allow[DET105] one-walk, in-process
                        # node-identity memo; order-free by definition
                        self._order_free_comps.add(id(arg))
            elif node.func.id in ("list", "tuple"):
                for arg in node.args:
                    if _is_set_expr(arg):
                        self._report(
                            node,
                            "DET106",
                            "materialising a set into an ordered "
                            "sequence; wrap it in sorted(...)",
                        )
                    if self._is_fs_order_call(arg):
                        self._report(
                            node,
                            "DET107",
                            "materialising a filesystem listing "
                            "without sorted(...)",
                        )
        if isinstance(node.func, ast.Attribute) and node.func.attr == (
            "join"
        ):
            for arg in node.args:
                if _is_set_expr(arg):
                    self._report(
                        node,
                        "DET106",
                        "joining a set in hash order; wrap it in "
                        "sorted(...)",
                    )
        self._check_id_keyed_call(node)
        self.generic_visit(node)

    def _check_entropy_call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved is None:
            return
        if resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if tail in _SINGLETON_FNS:
                self._report(
                    node,
                    "DET101",
                    f"random.{tail}() draws from the process-global "
                    "singleton; derive a stream from sim/rng.py "
                    "instead",
                )
                return
            if tail == "Random" and not node.args and not node.keywords:
                self._report(
                    node,
                    "DET102",
                    "random.Random() without a seed is entropy from "
                    "the OS; pass a derived seed",
                )
                return
            if tail == "SystemRandom":
                self._report(
                    node,
                    "DET102",
                    "random.SystemRandom is OS entropy by design; "
                    "simulations must use seeded streams",
                )
                return
        if resolved in _WALL_CLOCK:
            self._report(
                node,
                "DET103",
                f"{resolved}() reads the wall clock; simulation state "
                "must not depend on real time",
            )
            return
        if resolved in _OS_ENTROPY or resolved.startswith("secrets."):
            self._report(
                node,
                "DET104",
                f"{resolved}() taps OS entropy; derive randomness "
                "from the session seed",
            )

    # -- DET102: bare random.Random as a default_factory --------------

    def visit_keyword(self, node: ast.keyword) -> None:
        if node.arg == "default_factory":
            resolved = self.imports.resolve(node.value)
            if resolved in ("random.Random", "random.SystemRandom"):
                self._report(
                    node.value,
                    "DET102",
                    "default_factory=random.Random builds an unseeded "
                    "RNG per instance; default to a seeded stream",
                )
        self.generic_visit(node)

    # -- DET105: id()-keyed containers ---------------------------------

    @staticmethod
    def _contains_id_call(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
        return False

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._contains_id_call(node.slice):
            self._report(
                node,
                "DET105",
                "container indexed by id(); addresses differ across "
                "processes and replays",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._contains_id_call(key):
                self._report(
                    key,
                    "DET105",
                    "dict literal keyed by id(); addresses differ "
                    "across processes and replays",
                )
        self.generic_visit(node)

    def _check_id_keyed_call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in (
                "get", "setdefault", "pop", "add", "discard", "remove",
            ):
                if node.args and self._contains_id_call(node.args[0]):
                    self._report(
                        node,
                        "DET105",
                        f".{node.func.attr}() keyed by id(); "
                        "addresses differ across processes",
                    )
        for kw in node.keywords:
            if (
                kw.arg == "key"
                and isinstance(kw.value, ast.Name)
                and kw.value.id == "id"
            ):
                self._report(
                    kw.value,
                    "DET105",
                    "sorting/grouping with key=id is address order, "
                    "not a stable order",
                )

    # -- DET106/DET107: unordered iteration into ordered sinks ---------

    def _is_fs_order_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        resolved = self.imports.resolve(node.func)
        if resolved in _FS_ORDER:
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ORDER_METHODS
        )

    def visit_For(self, node: ast.For) -> None:
        if _body_has_ordered_sink(node.body):
            if _is_set_expr(node.iter):
                self._report(
                    node.iter,
                    "DET106",
                    "loop over a set feeds an ordered sink; iterate "
                    "sorted(...) instead",
                )
            elif self._is_fs_order_call(node.iter):
                self._report(
                    node.iter,
                    "DET107",
                    "loop over a filesystem listing feeds an ordered "
                    "sink; iterate sorted(...) instead",
                )
        self.generic_visit(node)

    def _visit_comp(
        self, node: ast.AST, generators: List[ast.comprehension]
    ) -> None:
        if id(node) in self._order_free_comps:
            return
        for gen in generators:
            if _is_set_expr(gen.iter):
                self._report(
                    gen.iter,
                    "DET106",
                    "comprehension over a set produces an ordered "
                    "result; iterate sorted(...) instead",
                )
            elif self._is_fs_order_call(gen.iter):
                self._report(
                    gen.iter,
                    "DET107",
                    "comprehension over a filesystem listing; iterate "
                    "sorted(...) instead",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, node.generators)
        self.generic_visit(node)


def analyze_determinism(
    path: str, tree: ast.Module
) -> List[Diagnostic]:
    """Run the DET1xx rules over one parsed module."""
    imports = _ImportTracker()
    imports.visit_imports(tree)
    visitor = _DeterminismVisitor(path, imports)
    visitor.visit(tree)
    return visitor.diagnostics
