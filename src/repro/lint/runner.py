"""The ``repro lint`` driver: walk, analyze, suppress, report.

Runs the AST analyzers (:mod:`determinism <repro.lint.determinism>`,
:mod:`parity <repro.lint.parity>`) over every Python file under the
given paths, applies ``# lint: allow[RULE]`` pragmas, appends pragma
hygiene findings, runs the wire-schema cross-check once per
invocation, and renders everything ruff-style::

    src/repro/sim/faults.py:116:12: DET102 random.Random() without ...

Exit status is the number of findings clamped to 1, so CI gates on it
directly.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.determinism import analyze_determinism
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    sort_diagnostics,
    summarize,
)
from repro.lint.parity import analyze_parity
from repro.lint.pragmas import scan_pragmas
from repro.lint.wireschema import check_wire_schema

__all__ = ["lint_file", "lint_paths", "main"]

_SKIP_DIRS = {"__pycache__", ".hypothesis", ".pytest_cache", ".git"}


def _iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
            continue
        if not path.is_dir():
            continue
        for sub in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(sub.parts):
                yield sub


def lint_source(path: str, source: str) -> List[Diagnostic]:
    """Analyze one in-memory module (the unit the tests drive)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path,
                exc.lineno or 1,
                (exc.offset or 0) + 1,
                "PRG903",
                f"file does not parse: {exc.msg}",
            )
        ]
    raw = analyze_determinism(path, tree)
    raw += analyze_parity(path, tree, source)
    table = scan_pragmas(source)
    kept = [
        diag
        for diag in raw
        if not table.suppresses(diag.line, diag.code)
    ]
    kept.extend(table.hygiene_diagnostics(path))
    return kept


def lint_file(path: Path, display: Optional[str] = None) -> List[
    Diagnostic
]:
    return lint_source(display or str(path), path.read_text())


def lint_paths(
    paths: Sequence[Path],
    repo_root: Optional[Path] = None,
    wire_check: bool = True,
) -> List[Diagnostic]:
    """Analyze every file under ``paths`` plus the wire cross-check."""
    diagnostics: List[Diagnostic] = []
    for file_path in _iter_python_files(list(paths)):
        diagnostics.extend(lint_file(file_path))
    if wire_check:
        diagnostics.extend(check_wire_schema(repo_root))
    return sort_diagnostics(diagnostics)


def _default_paths() -> List[Path]:
    """The repro package itself, wherever this install lives."""
    return [Path(__file__).resolve().parent.parent]


def _print_rules() -> None:
    width = max(len(code) for code in RULES)
    for code, summary in sorted(RULES.items()):
        print(f"{code:<{width}}  {summary}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static project-invariant linter: determinism, "
            "wire-schema coverage, policy parity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro "
        "package sources)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list every rule code and exit",
    )
    parser.add_argument(
        "--no-wire-check",
        action="store_true",
        help="skip the wire-schema cross-check (pure AST pass only)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root for locating tests/net assets "
        "(default: the current directory)",
    )
    args = parser.parse_args(argv)

    if args.rules:
        _print_rules()
        return 0

    paths = [Path(p) for p in args.paths] or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro lint: no such path: {p}", file=sys.stderr)
        return 2

    diagnostics = lint_paths(
        paths,
        repo_root=args.root,
        wire_check=not args.no_wire_check,
    )
    for diag in diagnostics:
        print(diag.render())
    total, by_code = summarize(diagnostics)
    if total:
        histogram = ", ".join(
            f"{code}: {count}" for code, count in by_code.items()
        )
        print(f"Found {total} finding(s) ({histogram})")
        return 1
    print("repro lint: all clean")
    return 0
