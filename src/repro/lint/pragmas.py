"""``# lint: allow[RULE] justification`` pragma parsing.

The determinism and parity analyzers have a small set of legitimate
exceptions (the seeded-RNG factory itself, benchmark entropy, the
per-process replica slot).  Those sites carry an explicit allow pragma
*with a mandatory justification*, so every suppression is a reviewed,
documented decision rather than a silent hole:

    rng = random.Random()  # lint: allow[DET102] fuzz CLI entropy only

A pragma suppresses matching diagnostics on its own line and, when it
is a comment-only line, on the next code line — the 79-column budget
often has no room for an inline comment.  Unused pragmas and pragmas
without justification are themselves findings (PRG902 / PRG901), so
the allowlist cannot rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.lint.diagnostics import Diagnostic, rule_exists

__all__ = ["Pragma", "PragmaTable", "scan_pragmas"]

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*allow\[(?P<codes>[A-Za-z0-9_,\s]*)\]"
    r"[ \t]*(?P<justification>.*)$"
)

#: Marker comment that declares a def/class as replica-worker scope for
#: the parity analyzer (see :mod:`repro.lint.parity`).
REPLICA_SCOPE_MARK = re.compile(r"#\s*lint:\s*replica-scope\b")


@dataclass
class Pragma:
    """One parsed allow pragma."""

    line: int
    codes: Tuple[str, ...]
    justification: str
    #: line(s) whose diagnostics this pragma may suppress.
    applies_to: Tuple[int, ...] = ()
    used: bool = field(default=False, compare=False)


@dataclass
class PragmaTable:
    """All pragmas of one file, indexed for suppression lookups."""

    pragmas: List[Pragma]
    #: (line, code) -> pragma index, for O(1) suppression checks.
    _index: Dict[Tuple[int, str], int]

    def suppresses(self, line: int, code: str) -> bool:
        key = (line, code)
        idx = self._index.get(key)
        if idx is None:
            return False
        self.pragmas[idx].used = True
        return True

    def hygiene_diagnostics(self, path: str) -> List[Diagnostic]:
        """PRG901/902/903 findings for this file's pragmas."""
        out: List[Diagnostic] = []
        for pragma in self.pragmas:
            if not pragma.justification.strip():
                out.append(
                    Diagnostic(
                        path,
                        pragma.line,
                        1,
                        "PRG901",
                        "allow pragma must carry a justification "
                        "(# lint: allow[CODE] why this is safe)",
                    )
                )
            unknown = [c for c in pragma.codes if not rule_exists(c)]
            for code in unknown:
                out.append(
                    Diagnostic(
                        path,
                        pragma.line,
                        1,
                        "PRG903",
                        f"unknown rule code {code!r} in allow pragma",
                    )
                )
            if (
                not pragma.used
                and pragma.justification.strip()
                and not unknown
            ):
                out.append(
                    Diagnostic(
                        path,
                        pragma.line,
                        1,
                        "PRG902",
                        "allow pragma suppresses no finding; remove "
                        f"it (codes: {', '.join(pragma.codes)})",
                    )
                )
        return out


def _next_code_line(lines: List[str], after: int) -> int:
    """1-based line of the first non-blank, non-comment line after
    ``after`` (also 1-based); 0 if none."""
    for i in range(after, len(lines)):
        stripped = lines[i].strip()
        if stripped and not stripped.startswith("#"):
            return i + 1
    return 0


def _comment_tokens(source: str) -> List[Tuple[int, str, bool]]:
    """(line, comment text, is_comment_only_line) for real comments.

    Tokenizing (rather than regex-scanning raw lines) keeps pragma
    syntax *mentioned in docstrings* — like this module's own — from
    being parsed as live pragmas.
    """
    out: List[Tuple[int, str, bool]] = []
    lines = source.splitlines()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        lineno = tok.start[0]
        text = lines[lineno - 1] if lineno <= len(lines) else ""
        out.append(
            (lineno, tok.string, text.strip().startswith("#"))
        )
    return out


def scan_pragmas(source: str) -> PragmaTable:
    lines = source.splitlines()
    pragmas: List[Pragma] = []
    index: Dict[Tuple[int, str], int] = {}
    for lineno, comment, comment_only in _comment_tokens(source):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            continue
        codes = tuple(
            c.strip() for c in match.group("codes").split(",")
            if c.strip()
        )
        justification = match.group("justification").strip()
        applies = [lineno]
        if comment_only:
            nxt = _next_code_line(lines, lineno)
            if nxt:
                applies.append(nxt)
        pragma = Pragma(
            line=lineno,
            codes=codes,
            justification=justification,
            applies_to=tuple(applies),
        )
        slot = len(pragmas)
        pragmas.append(pragma)
        for target in applies:
            for code in codes:
                index.setdefault((target, code), slot)
    return PragmaTable(pragmas=pragmas, _index=index)
