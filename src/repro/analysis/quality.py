"""Sustainable video quality per link capacity — Table II of the paper.

For each protocol and each link technology, find the highest rung of the
quality ladder whose per-node bandwidth fits the link.  RAC's cells: its
per-node cost scales with the full membership, so no quality fits even
a 10 Gbps link (the paper's ∅ cells).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.bandwidth import ActingBandwidthModel, PagBandwidthModel
from repro.baselines.rac import rac_per_node_kbps
from repro.core.config import PagConfig
from repro.streaming.video import (
    LINK_CAPACITIES_KBPS,
    VideoQuality,
    max_quality_under,
)

__all__ = [
    "Table2Cell",
    "table2",
    "pag_cost_of_quality",
    "acting_cost_of_quality",
]


def pag_cost_of_quality(
    quality: VideoQuality, n_nodes: int = 1000
) -> float:
    """Per-node bandwidth PAG consumes streaming at ``quality``."""
    config = PagConfig.for_system_size(
        n_nodes, stream_rate_kbps=quality.payload_kbps
    )
    return PagBandwidthModel(config=config).total_kbps()


def acting_cost_of_quality(
    quality: VideoQuality, n_nodes: int = 1000
) -> float:
    """Per-node bandwidth AcTinG consumes streaming at ``quality``."""
    return ActingBandwidthModel.for_system(
        n_nodes, quality.payload_kbps
    ).total_kbps()


def rac_cost_of_quality(quality: VideoQuality, n_nodes: int = 1000) -> float:
    return rac_per_node_kbps(quality.payload_kbps, n_nodes)


@dataclass(frozen=True)
class Table2Cell:
    """One (protocol, link) cell: best quality and the bandwidth it uses."""

    protocol: str
    link: str
    quality: Optional[str]
    used_kbps: Optional[float]

    def render(self) -> str:
        if self.quality is None:
            return "∅"
        used = self.used_kbps
        if used >= 1000:
            return f"{self.quality} ({used / 1000.0:.1f} Mbps)"
        return f"{self.quality} ({used:.0f} Kbps)"


def table2(n_nodes: int = 1000) -> Dict[str, List[Table2Cell]]:
    """Regenerate Table II: protocol -> one cell per link capacity."""
    cost_functions = {
        "PAG": lambda q: pag_cost_of_quality(q, n_nodes),
        "AcTinG": lambda q: acting_cost_of_quality(q, n_nodes),
        "RAC": lambda q: rac_cost_of_quality(q, n_nodes),
    }
    table: Dict[str, List[Table2Cell]] = {}
    for protocol, cost in cost_functions.items():
        cells = []
        for link, capacity in LINK_CAPACITIES_KBPS.items():
            best = max_quality_under(capacity, cost)
            cells.append(
                Table2Cell(
                    protocol=protocol,
                    link=link,
                    quality=best.name if best else None,
                    used_kbps=cost(best) if best else None,
                )
            )
        table[protocol] = cells
    return table
