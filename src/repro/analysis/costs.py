"""Cryptographic cost accounting — Table I of the paper.

The paper measures "the number of generated RSA encryptions and
homomorphic hashes per second rather than the CPU load, which depends on
the hardware used" (section VII-C).  Two reproductions are provided:

* closed-form operation counts per node per second, derived from the
  protocol's message complexity (validated against the simulator's
  counters in ``tests/analysis/test_costs.py``);
* the Table I generator used by ``benchmarks/bench_table1_crypto_costs``.

Headline structure of Table I: signatures per second are *constant*
(33 in the paper: the number of protocol messages per round does not
depend on the stream rate), while homomorphic hashes are *linear in the
chunk rate* (the buffermap dominates: every owned chunk of the last
``depth`` rounds is hashed once per issued prime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.bandwidth import pag_duplicate_factor
from repro.core.config import PagConfig
from repro.streaming.video import QUALITY_LADDER, VideoQuality

__all__ = [
    "signatures_per_second",
    "hashes_per_second",
    "table1_rows",
    "Table1Row",
]


def signatures_per_second(fanout: int = 3, monitors: int = 3) -> float:
    """RSA signatures one node generates per round (= per second).

    Counted from the protocol:

    * as server, per successor: KeyRequest, Serve, Attestation  -> 3f
    * as receiver, per predecessor: KeyResponse, Ack, AttestationRelay
      -> 3f (f predecessors in expectation)
    * as monitor: message-8 broadcasts for its designated pairs
      (f per monitored node split over fm monitors, each broadcast to
      fm-1 peers -> f(fm-1) in expectation across fm monitored nodes)
      and message-9 relays (f per monitored node -> f*fm ... relayed to
      the server's fm monitors, one signature per message).

    With f = fm = 3 this gives 9 + 9 + 6 + 9 = 33 — exactly the
    constant row of Table I.
    """
    as_server = 3 * fanout
    as_receiver = 3 * fanout
    as_monitor_broadcasts = fanout * (monitors - 1)
    as_monitor_relays = fanout * monitors
    return float(
        as_server + as_receiver + as_monitor_broadcasts + as_monitor_relays
    )


def hashes_per_second(
    quality: VideoQuality,
    config: PagConfig | None = None,
) -> float:
    """Homomorphic hashes one node computes per second at a quality.

    Dominated by buffermap construction: each issued prime hashes the
    owned updates of the last ``depth`` rounds (f primes per round).
    Smaller terms: per-successor classification of the forward set,
    attestation pairs, acks, and the monitors' lift operations.
    """
    cfg = config or PagConfig()
    f = cfg.fanout
    u = quality.payload_kbps * 1000.0 / (cfg.update_bytes * 8.0)
    dup = pag_duplicate_factor(f, cfg.buffermap_depth)
    buffermap = f * cfg.buffermap_depth * u
    classification = f * u * dup
    attestations = 2.0 * f
    acks = 1.0 * f
    monitor_lifts = 2.0 * f  # lift forward+ack-only per designated pair
    return buffermap + classification + attestations + acks + monitor_lifts


@dataclass(frozen=True)
class Table1Row:
    """One column of Table I."""

    quality: str
    payload_kbps: float
    rsa_signatures_per_s: float
    homomorphic_hashes_per_s: float


def table1_rows(config: PagConfig | None = None) -> List[Table1Row]:
    """Regenerate Table I for the full quality ladder."""
    cfg = config or PagConfig()
    rows = []
    for quality in QUALITY_LADDER:
        rows.append(
            Table1Row(
                quality=quality.name,
                payload_kbps=quality.payload_kbps,
                rsa_signatures_per_s=signatures_per_second(
                    cfg.fanout, cfg.monitors_per_node
                ),
                homomorphic_hashes_per_s=hashes_per_second(quality, cfg),
            )
        )
    return rows
