"""Analysis layer: bandwidth models, cost accounting, privacy, game theory."""

from __future__ import annotations

from repro.analysis.bandwidth import (
    DUPLICATE_DELIVERY_FACTOR,
    ActingBandwidthModel,
    PagBandwidthModel,
    acting_duplicate_factor,
    pag_duplicate_factor,
    plain_gossip_kbps,
)
from repro.analysis.costs import (
    Table1Row,
    hashes_per_second,
    signatures_per_second,
    table1_rows,
)
from repro.analysis.detection import (
    DetectionLatency,
    PopulationImpact,
    detection_latency,
    selfish_population_impact,
)
from repro.analysis.nash import (
    DeviationOutcome,
    UtilityModel,
    evaluate_deviation,
)
from repro.analysis.privacy import (
    Figure10Point,
    acting_discovery_probability,
    figure10_series,
    pag_discovery_probability,
    theoretical_minimum,
)
from repro.analysis.quality import (
    Table2Cell,
    acting_cost_of_quality,
    pag_cost_of_quality,
    table2,
)

__all__ = [
    "ActingBandwidthModel",
    "DUPLICATE_DELIVERY_FACTOR",
    "DetectionLatency",
    "DeviationOutcome",
    "Figure10Point",
    "PopulationImpact",
    "PagBandwidthModel",
    "Table1Row",
    "Table2Cell",
    "UtilityModel",
    "acting_cost_of_quality",
    "detection_latency",
    "acting_discovery_probability",
    "acting_duplicate_factor",
    "evaluate_deviation",
    "figure10_series",
    "hashes_per_second",
    "pag_cost_of_quality",
    "pag_discovery_probability",
    "pag_duplicate_factor",
    "plain_gossip_kbps",
    "selfish_population_impact",
    "signatures_per_second",
    "table1_rows",
    "table2",
    "theoretical_minimum",
]
