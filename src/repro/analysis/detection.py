"""Detection latency and the impact of undetected selfishness.

Two quantitative companions to the paper's accountability story:

* :func:`detection_latency` — how many rounds pass between a node's
  first violated obligation and its first conviction, per strategy.
  PAG's log-less monitoring checks every exchange every round, so
  convictions land within the dispute window (2 rounds) of the first
  non-trivial violation — unlike audit-based systems whose latency is
  the audit period.
* :func:`selfish_population_impact` — the motivating measurement of the
  paper's introduction ("above a given proportion of selfish clients,
  the compliant clients observe a major degradation in the quality of
  the video stream"): stream continuity of compliant nodes as the
  free-rider fraction grows, with detection disabled (what happens
  without PAG) and enabled (the deterrent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.adversary.selfish import FreeRider
from repro.core.behavior import Behavior
from repro.core.config import PagConfig
from repro.core.session import PagSession

__all__ = [
    "DetectionLatency",
    "detection_latency",
    "PopulationImpact",
    "selfish_population_impact",
]


@dataclass(frozen=True)
class DetectionLatency:
    """Rounds from first obligation violation to first conviction."""

    strategy: str
    first_violation_round: Optional[int]
    first_conviction_round: Optional[int]

    @property
    def latency_rounds(self) -> Optional[int]:
        if (
            self.first_violation_round is None
            or self.first_conviction_round is None
        ):
            return None
        return self.first_conviction_round - self.first_violation_round


def detection_latency(
    behavior: Behavior,
    n_nodes: int = 20,
    max_rounds: int = 14,
    deviant_id: int = 7,
) -> DetectionLatency:
    """Run round by round and record when the deviant is first convicted.

    The first violation is approximated by the deviant's first round
    with a non-empty serving obligation (before that, an empty serve is
    indistinguishable from compliance).
    """
    session = PagSession.create(
        n_nodes, behaviors={deviant_id: behavior}
    )
    first_violation: Optional[int] = None
    first_conviction: Optional[int] = None
    deviant = session.nodes[deviant_id]
    for round_no in range(max_rounds):
        session.run(1)
        if first_violation is None:
            obligation = deviant.state.forward_sets.get(round_no)
            if obligation is not None and not obligation.is_empty():
                # The obligation is served (or not) next round.
                first_violation = round_no + 1
        if first_conviction is None and deviant_id in (
            session.convicted_nodes()
        ):
            first_conviction = round_no
            break
    return DetectionLatency(
        strategy=type(behavior).__name__,
        first_violation_round=first_violation,
        first_conviction_round=first_conviction,
    )


@dataclass(frozen=True)
class PopulationImpact:
    """Stream quality of compliant nodes under a selfish population."""

    selfish_fraction: float
    detection_enabled: bool
    compliant_continuity: float
    selfish_convicted_fraction: float


def selfish_population_impact(
    fractions: Sequence[float],
    n_nodes: int = 30,
    rounds: int = 18,
    detection_enabled: bool = False,
    seed: int = 1,
) -> List[PopulationImpact]:
    """Measure compliant nodes' continuity as free-riders multiply.

    With ``detection_enabled=False`` this reproduces the motivating
    degradation (free-riders keep consuming without forwarding, and the
    epidemic loses reach); with detection on, the free-riders are
    convicted — in a deployment they would be expelled, restoring the
    equilibrium.
    """
    from repro.sim.rng import SeedSequence

    results = []
    for fraction in fractions:
        config = PagConfig(
            detection_enabled=detection_enabled, seed=seed
        )
        count = int(round((n_nodes - 1) * fraction))
        rng = SeedSequence(seed).stream("selfish", int(fraction * 100))
        consumers = list(range(1, n_nodes))
        selfish = set(rng.sample(consumers, count)) if count else set()
        behaviors: Dict[int, Behavior] = {
            node: FreeRider() for node in selfish
        }
        session = PagSession.create(
            n_nodes, config=config, behaviors=behaviors
        )
        session.run(rounds)
        compliant = [n for n in session.nodes if n not in selfish]
        continuity = sum(
            session.playback_report(n).continuity for n in compliant
        ) / len(compliant)
        convicted = session.convicted_nodes()
        convicted_fraction = (
            len(convicted & selfish) / len(selfish) if selfish else 0.0
        )
        results.append(
            PopulationImpact(
                selfish_fraction=fraction,
                detection_enabled=detection_enabled,
                compliant_continuity=continuity,
                selfish_convicted_fraction=convicted_fraction,
            )
        )
    return results
