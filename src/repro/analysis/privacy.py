"""Privacy under coalitions — Fig. 10 of the paper.

Closed-form probabilities that a coalition controlling a fraction ``c``
of the membership discovers a given exchange, for PAG (as a function of
the fanout/monitor count) and for AcTinG (whose audited logs expose
interactions outright).  The Monte-Carlo counterpart over concrete
topologies lives in :class:`repro.adversary.coalition.Coalition`; a test
cross-validates the two.

Attack conditions (sections VI-A and VII-E):

* **Theoretical minimum** — one endpoint is corrupted:
  ``1 - (1-c)^2``.  No protocol can do better.
* **PAG** — both endpoints honest, at least one corrupted monitor of
  the receiver (it holds a prime-product cofactor), and all of the
  receiver's predecessors except at most two collude (dividing known
  primes out of a cofactor must isolate the victim's prime).
* **AcTinG** — interactions sit in cleartext in both endpoints' secure
  logs; every audit hands the log to a monitor, and log segments spread
  through cross-audits, so exposure grows with the number of distinct
  nodes that ever audited either endpoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "theoretical_minimum",
    "pag_discovery_probability",
    "acting_discovery_probability",
    "figure10_series",
    "Figure10Point",
]


def _binomial_pmf(k: int, n: int, p: float) -> float:
    return math.comb(n, k) * p**k * (1.0 - p) ** (n - k)


def theoretical_minimum(c: float) -> float:
    """P(at least one endpoint of a random exchange is corrupted)."""
    _check_fraction(c)
    return 1.0 - (1.0 - c) ** 2


def pag_discovery_probability(
    c: float, fanout: int = 3, monitors: int | None = None
) -> float:
    """P(a random exchange A->B is discovered) under PAG.

    The receiver B has ``fanout`` predecessors in expectation (the paper
    couples successor count, predecessor count and monitor count — "PAG
    is configured with the same numbers of successors and monitors per
    node").  Conditional on both endpoints honest, the attack needs:

    * at least one of B's ``monitors`` corrupted, and
    * at most one of B's other ``fanout - 1`` predecessors honest
      (with A, that makes "all predecessors except at most two").

    Raising the fanout/monitor count makes the predecessor condition
    harder much faster than the monitor condition gets easier, which is
    why PAG-5-monitors sits below PAG-3-monitors in Fig. 10.
    """
    _check_fraction(c)
    if fanout < 1:
        raise ValueError("fanout must be at least 1")
    fm = monitors if monitors is not None else fanout
    endpoint = theoretical_minimum(c)
    both_honest = (1.0 - c) ** 2
    other_preds = fanout - 1
    # P[#honest among the other predecessors <= 1]
    preds_collude = sum(
        _binomial_pmf(k, other_preds, c)
        for k in range(max(0, other_preds - 1), other_preds + 1)
    )
    monitor_corrupt = 1.0 - (1.0 - c) ** fm
    return endpoint + both_honest * preds_collude * monitor_corrupt


def acting_discovery_probability(
    c: float,
    monitors: int = 3,
    audit_exposure_rounds: int = 20,
) -> float:
    """P(a random exchange is discovered) under AcTinG.

    An interaction is recorded in both endpoints' logs; each log is
    handed to its ``monitors`` and, through AcTinG's cross-audits (an
    auditor fetches the partner's log to check consistency), reaches a
    fresh set of nodes every round.  Over an exposure window of ``W``
    rounds the record is seen by roughly ``2*(monitors + W)`` distinct
    nodes; one corrupted viewer suffices.

    With the defaults this reproduces the paper's observation that "all
    interactions are discovered when an attacker controls 10% of nodes
    in AcTinG".
    """
    _check_fraction(c)
    viewers = 2 * (monitors + audit_exposure_rounds)
    return 1.0 - (1.0 - c) ** viewers


@dataclass(frozen=True)
class Figure10Point:
    """One x-position of Fig. 10."""

    attacker_fraction: float
    acting: float
    pag_3_monitors: float
    pag_5_monitors: float
    theoretical_minimum: float


def figure10_series(
    fractions: Sequence[float] | None = None,
) -> List[Figure10Point]:
    """The four curves of Fig. 10, in percent-ready fractions."""
    if fractions is None:
        fractions = [i / 100.0 for i in range(0, 101, 5)]
    points = []
    for c in fractions:
        points.append(
            Figure10Point(
                attacker_fraction=c,
                acting=acting_discovery_probability(c),
                pag_3_monitors=pag_discovery_probability(c, fanout=3),
                pag_5_monitors=pag_discovery_probability(c, fanout=5),
                theoretical_minimum=theoretical_minimum(c),
            )
        )
    return points


def _check_fraction(c: float) -> None:
    if not 0.0 <= c <= 1.0:
        raise ValueError(f"attacker fraction {c} outside [0, 1]")
