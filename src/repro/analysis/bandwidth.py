"""Analytic per-node bandwidth models for PAG, AcTinG and plain gossip.

The packet-level simulator is exact but cannot run a million nodes in
Python; the paper faced the same wall and "computed the scalability of
the protocol when the number of nodes was too high to be simulated"
(section VII-A).  These closed-form models enumerate the same messages
the simulator sends — per node, per round, in the *download* direction —
and are validated against the simulator at small N by the test suite
(``tests/analysis/test_bandwidth_model.py``).

All results are unidirectional Kbps, the unit of Figs. 7-9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import PagConfig
from repro.membership.views import default_fanout
from repro.sim.message import WireSizes

__all__ = [
    "PagBandwidthModel",
    "ActingBandwidthModel",
    "plain_gossip_kbps",
    "pag_duplicate_factor",
    "acting_duplicate_factor",
    "DUPLICATE_DELIVERY_FACTOR",
]

#: Simultaneity-only duplicate factor: mean payload copies per chunk
#: when the buffermap horizon covers the whole update lifetime, so the
#: only duplicates are same-round serves from several predecessors
#: (section V-D "Multiple receptions").  Measured from the packet-level
#: simulator.
DUPLICATE_DELIVERY_FACTOR = 1.3

#: Measured duplicate factors at the paper's buffermap depth of 4
#: rounds, by fanout.  With a 10-round lifetime and a 4-round buffermap
#: horizon, chunks re-circulate as payload once they leave the
#: advertised window — the dominant PAG overhead, and the reason the
#: paper reports that "a given node may have to forward several times a
#: given update to its successors".  Values measured by
#: tests/analysis/test_bandwidth_model.py's companion calibration runs.
_PAG_DUP_BY_FANOUT_DEPTH4 = {3: 2.8, 4: 5.2, 5: 5.4, 6: 5.6}


def pag_duplicate_factor(fanout: int, buffermap_depth: int = 4) -> float:
    """Mean payload copies per chunk per node, by configuration."""
    if buffermap_depth >= 6:
        return DUPLICATE_DELIVERY_FACTOR
    if buffermap_depth <= 2:
        # Severe recirculation; measured ~9 at fanout 3.
        return 3.2 * _PAG_DUP_BY_FANOUT_DEPTH4.get(3, 2.8)
    table = _PAG_DUP_BY_FANOUT_DEPTH4
    if fanout in table:
        return table[fanout]
    if fanout < 3:
        return table[3]
    return table[6] + 0.2 * (fanout - 6)


def acting_duplicate_factor(fanout: int) -> float:
    """AcTinG's request negotiation deduplicates across rounds; only
    simultaneous proposals cause duplicate requests."""
    return 1.0 + 0.07 * fanout


def _kbps(bytes_per_round: float, round_seconds: float = 1.0) -> float:
    return bytes_per_round * 8.0 / 1000.0 / round_seconds


@dataclass
class PagBandwidthModel:
    """Download bandwidth of one PAG node, by protocol component.

    Args:
        config: protocol parameters (rate, update size, fanout, ...).
        sizes: wire-size constants (defaults shared with the simulator).
        duplicate_factor: mean payload copies per chunk.
    """

    config: PagConfig
    sizes: WireSizes = field(default_factory=WireSizes)
    duplicate_factor: float | None = None

    def __post_init__(self) -> None:
        if self.duplicate_factor is None:
            self.duplicate_factor = pag_duplicate_factor(
                self.config.fanout, self.config.buffermap_depth
            )

    # -- building blocks -----------------------------------------------

    @property
    def updates_per_round(self) -> float:
        cfg = self.config
        return (
            cfg.stream_rate_kbps
            * 1000.0
            * cfg.round_seconds
            / (cfg.update_bytes * 8.0)
        )

    @property
    def entries_per_serve(self) -> float:
        """Serve entries ≈ what the server received last round."""
        return self.updates_per_round * self.duplicate_factor

    def components(self) -> Dict[str, float]:
        """Per-component download in Kbps (sums to :meth:`total_kbps`)."""
        cfg = self.config
        s = self.sizes
        f = cfg.fanout
        fm = cfg.monitors_per_node
        u = self.updates_per_round
        entries = self.entries_per_serve
        entry_meta = s.update_id + 2 + 1  # id, count, flags

        # Fresh payload: each chunk arrives duplicate_factor times.
        payload = u * self.duplicate_factor * cfg.update_bytes

        # As server: f KeyResponses (prime + buffermap) + f Acks.
        buffermap_hashes = cfg.buffermap_depth * u
        key_responses = f * (
            s.header
            + s.prime
            + buffermap_hashes * s.hash_value
            + s.signature
            + s.encryption_overhead
        )
        acks = f * (s.header + s.hash_value + s.signature + 12)

        # As receiver: f KeyRequests, f Serves (metadata; payload counted
        # above), f Attestations.
        key_requests = f * (s.header + s.signature)
        # Each of ~f predecessors serves its whole forward set (~entries
        # items): new chunks as payload (counted above), the rest as
        # id+count metadata.
        serve_meta = (
            f
            * (
                s.header
                + f * s.prime  # K(R-1, A): product of ~f primes
                + s.signature
                + s.encryption_overhead
            )
            + f * entries * entry_meta
        )
        attestations = f * (s.header + 2 * s.hash_value + s.signature + 12)

        # As monitor: pairs 6/7 from monitored nodes, peer broadcasts,
        # ack relays.  Each node monitors fm nodes on average; each
        # monitored node receives from ~f predecessors per round.
        pair_6 = s.header + s.hash_value + s.signature + 12
        pair_7 = (
            s.header
            + 2 * s.hash_value
            + s.signature
            + 12
            + (f - 1) * s.prime
            + s.signature
            + s.encryption_overhead
        )
        pairs = f * (pair_6 + pair_7)  # f pairs per X, split across fm,
        # times fm monitored nodes -> f per X times fm / fm = f ... per X
        broadcasts = (
            f * (fm - 1) * (s.header + 3 * s.hash_value + 2 * s.signature)
        )
        relays = f * fm * (s.header + s.hash_value + 2 * s.signature + 12)
        monitor_traffic = pairs + broadcasts + relays

        return {
            "payload": _kbps(payload, cfg.round_seconds),
            "buffermaps": _kbps(key_responses, cfg.round_seconds),
            "acks": _kbps(acks, cfg.round_seconds),
            "key_requests": _kbps(key_requests, cfg.round_seconds),
            "serve_metadata": _kbps(serve_meta, cfg.round_seconds),
            "attestations": _kbps(attestations, cfg.round_seconds),
            "monitoring": _kbps(monitor_traffic, cfg.round_seconds),
        }

    def total_kbps(self) -> float:
        return sum(self.components().values())

    @classmethod
    def for_system(
        cls, n_nodes: int, rate_kbps: float, update_bytes: int = 938
    ) -> "PagBandwidthModel":
        """Model with the paper's size-dependent fanout (Fig. 9)."""
        config = PagConfig.for_system_size(
            n_nodes,
            stream_rate_kbps=rate_kbps,
            update_bytes=update_bytes,
        )
        return cls(config=config)


@dataclass
class ActingBandwidthModel:
    """Download bandwidth of one AcTinG node.

    AcTinG's propose/request/serve negotiation delivers each chunk once;
    the accountability overhead is cleartext identifiers, per-message
    signatures, and audited log segments.
    """

    rate_kbps: float
    update_bytes: int = 938
    fanout: int = 3
    monitors_per_node: int = 3
    audit_probability: float = 0.3
    sizes: WireSizes = field(default_factory=WireSizes)
    round_seconds: float = 1.0

    @property
    def updates_per_round(self) -> float:
        return (
            self.rate_kbps
            * 1000.0
            * self.round_seconds
            / (self.update_bytes * 8.0)
        )

    def components(self) -> Dict[str, float]:
        s = self.sizes
        f = self.fanout
        u = self.updates_per_round
        payload = (
            u
            * acting_duplicate_factor(f)
            * (self.update_bytes + s.update_id)
        )
        proposals = f * (s.header + u * s.update_id + s.signature)
        # Requests this node sends are upload; downloads are the serves
        # (counted in payload) plus requests *received* as a server.
        requests = f * (s.header + (u / f) * s.update_id + s.signature)
        # Audits: each of my monitors samples my log with probability p
        # per round; as an auditor I download segments of my monitored
        # nodes.  Log entries accumulate at (f sends + f receives)/round.
        entries_per_round = 2.0 * f
        audit_down = (
            self.audit_probability
            * self.monitors_per_node
            * (entries_per_round * 48 + s.header + s.signature)
        )
        return {
            "payload": _kbps(payload, self.round_seconds),
            "proposals": _kbps(proposals, self.round_seconds),
            "requests": _kbps(requests, self.round_seconds),
            "audits": _kbps(audit_down, self.round_seconds),
        }

    def total_kbps(self) -> float:
        return sum(self.components().values())

    @classmethod
    def for_system(
        cls, n_nodes: int, rate_kbps: float
    ) -> "ActingBandwidthModel":
        f = default_fanout(n_nodes)
        return cls(rate_kbps=rate_kbps, fanout=f, monitors_per_node=f)


def plain_gossip_kbps(
    rate_kbps: float,
    update_bytes: int = 938,
    duplicate_factor: float = DUPLICATE_DELIVERY_FACTOR,
) -> float:
    """Download of a plain push-gossip node: payload times duplicates."""
    sizes = WireSizes()
    per_chunk = update_bytes + sizes.update_id
    chunks = rate_kbps * 1000.0 / (update_bytes * 8.0)
    return _kbps(chunks * duplicate_factor * per_chunk)
