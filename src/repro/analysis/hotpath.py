"""Hot-path micro-benchmarks: the perf trajectory of this reproduction.

The paper's Table I reports raw crypto throughput (4,800 homomorphic
hashes/s/core at 512 bits with openssl) and the deployment sustains one
gossip round per second.  This module measures the same quantities for
this codebase — homomorphic hashes/s at the 256- and 512-bit modulus
sizes, fixed-base rekeys/s, pooled primes/s, and end-to-end simulator
rounds/s — and emits them as machine-readable JSON
(``BENCH_hotpath.json``) so successive PRs can track regressions and
wins.  Run it via ``python -m repro bench`` or through
``benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import json
import random
import time
from typing import Dict, Optional

from repro.crypto.backend import (
    Backend,
    default_backend,
    gmpy2_available,
)
from repro.crypto.homomorphic import HomomorphicHasher, make_modulus
from repro.crypto.primes import PrimePool

__all__ = [
    "measure_hash_throughput",
    "measure_rekey_throughput",
    "measure_prime_throughput",
    "measure_engine_throughput",
    "run_hotpath_bench",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 1

_BENCH_SEED = 0x9A6


def _timebox(fn, min_seconds: float, min_iterations: int = 8) -> float:
    """Run ``fn(i)`` repeatedly for at least ``min_seconds``; return ops/s."""
    count = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while count < min_iterations or time.perf_counter() < deadline:
        fn(count)
        count += 1
    return count / (time.perf_counter() - start)


def measure_hash_throughput(
    modulus_bits: int,
    seconds: float = 0.25,
    backend: Optional[Backend] = None,
) -> float:
    """Homomorphic hashes/s: fresh base and prime-sized exponent each call.

    Bases and exponents are drawn up front and never repeat, so the
    hasher's memo and fixed-base caches cannot flatter the number — this
    is the cold-exponentiation rate, the Table I unit.
    """
    rng = random.Random(_BENCH_SEED)
    hasher = HomomorphicHasher(
        modulus=make_modulus(modulus_bits, rng), backend=backend
    )
    bases = [rng.getrandbits(modulus_bits * 2) for _ in range(512)]
    exponents = [
        rng.getrandbits(modulus_bits) | (1 << (modulus_bits - 1)) | 1
        for _ in range(512)
    ]

    def one(i: int) -> None:
        hasher.hash(bases[i % 512] + i, exponents[(i * 31) % 512] + 2 * i)

    return _timebox(one, seconds)


def measure_rekey_throughput(
    modulus_bits: int,
    seconds: float = 0.25,
    backend: Optional[Backend] = None,
) -> float:
    """Hot-base rekeys/s: one hot base raised to many wide exponents.

    This is the monitor's message-8 workload (the same attested hash
    lifted to many cofactors), measured through ``hasher.rekey`` so it
    exercises whatever the active backend actually does there — the
    fixed-base power ladder under pure Python, plain ``powmod`` under
    gmpy2 (where the ladder is disabled because GMP wins outright).
    """
    rng = random.Random(_BENCH_SEED + 1)
    hasher = HomomorphicHasher(
        modulus=make_modulus(modulus_bits, rng), backend=backend
    )
    base = rng.getrandbits(modulus_bits)
    exponents = [
        rng.getrandbits(modulus_bits) | 1 for _ in range(512)
    ]
    # Warm the base (two sightings build the fixed-base table, where
    # applicable) outside the clock.
    hasher.rekey(base, exponents[0])
    hasher.rekey(base, exponents[1])

    def one(i: int) -> None:
        # Fresh exponent every call: repeated pairs would measure the
        # memo, not the rekey arithmetic.
        hasher.rekey(base, exponents[i % 512] + 2 * (i // 512) + 2)

    return _timebox(one, seconds)


def measure_prime_throughput(
    bits: int = 512, count: int = 8, seed: int = _BENCH_SEED
) -> float:
    """Pooled primes/s at the paper's per-link prime size."""
    pool = PrimePool(bits, random.Random(seed))
    start = time.perf_counter()
    pool.take_many(count)
    return count / (time.perf_counter() - start)


def measure_engine_throughput(
    nodes: int = 40, rounds: int = 8
) -> Dict[str, float]:
    """End-to-end simulator rounds/s on a full PAG session."""
    from repro.core import PagConfig, PagSession

    config = PagConfig.for_system_size(nodes, stream_rate_kbps=300.0)
    session = PagSession.create(nodes, config=config)
    start = time.perf_counter()
    session.run(rounds)
    elapsed = time.perf_counter() - start
    return {
        "nodes": nodes,
        "rounds": rounds,
        "seconds": round(elapsed, 4),
        "rounds_per_s": round(rounds / elapsed, 4),
        "hashes": session.context.hasher.operations,
    }


def run_hotpath_bench(
    out_path: Optional[str] = "BENCH_hotpath.json",
    quick: bool = False,
    engine_nodes: int = 40,
    engine_rounds: int = 8,
) -> Dict:
    """Run every hot-path measurement and optionally write the JSON.

    Args:
        out_path: where to write ``BENCH_hotpath.json`` (None: don't).
        quick: shrink the time boxes for smoke-test use.
        engine_nodes / engine_rounds: scale of the end-to-end session.
    """
    seconds = 0.05 if quick else 0.25
    backend = default_backend()
    report = {
        "schema": SCHEMA_VERSION,
        "backend": backend.name,
        "gmpy2_available": gmpy2_available(),
        "hashes_per_s": {
            "256": round(measure_hash_throughput(256, seconds), 2),
            "512": round(measure_hash_throughput(512, seconds), 2),
        },
        "rekey_fixed_base_per_s": {
            "512": round(measure_rekey_throughput(512, seconds), 2),
        },
        "primes_per_s": {
            "512": round(
                measure_prime_throughput(512, count=3 if quick else 8), 2
            ),
        },
        "engine": measure_engine_throughput(engine_nodes, engine_rounds),
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        report["written_to"] = out_path
    return report
