"""Hot-path micro-benchmarks: the perf trajectory of this reproduction.

The paper's Table I reports raw crypto throughput (4,800 homomorphic
hashes/s/core at 512 bits with openssl) and the deployment sustains one
gossip round per second.  This module measures the same quantities for
this codebase — homomorphic hashes/s at the 256- and 512-bit modulus
sizes, fixed-base rekeys/s, pooled primes/s, and end-to-end simulator
rounds/s — and emits them as machine-readable JSON
(``BENCH_hotpath.json``) so successive PRs can track regressions and
wins.  Run it via ``python -m repro bench`` or through
``benchmarks/bench_hotpath.py``.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Dict, Optional, Sequence

from repro.crypto.backend import (
    Backend,
    default_backend,
    gmpy2_available,
)
from repro.crypto.homomorphic import HomomorphicHasher, make_modulus
from repro.crypto.primes import PrimePool
from repro.sim.metrics import BandwidthMeter, cdf_points

__all__ = [
    "DictMeterBaseline",
    "measure_hash_throughput",
    "measure_rekey_throughput",
    "measure_prime_throughput",
    "measure_engine_throughput",
    "measure_meter_cdf_throughput",
    "measure_meter_matrix_throughput",
    "measure_parallel_scaling",
    "measure_batch_verify",
    "measure_shared_ladder",
    "measure_population_throughput",
    "measure_service_hooks",
    "run_hotpath_bench",
    "SCHEMA_VERSION",
]

#: 2: added ``engine.cache`` (hasher hit rates) and ``meter_cdf``
#: (columnar vs dict-probe steady-state CDF aggregation).
#: 3: added ``parallel`` — per-worker scaling rows of the
#: ParallelShardedPolicy process backend on the fig9 scenario (wall
#: clock, per-shard CPU critical path, and the projected multi-core
#: round throughput), plus ``cpu_count`` so single-core wall numbers
#: read as what they are.
#: 4: added ``batch_verify`` (fold-cost of the monitor obligation:
#: per-pair pow vs one Straus multi-exponentiation, primitive and
#: engine-level) and ``shared_ladder`` (fig9 worker CPU with and
#: without the parent-precomputed fixed-base ladder table).
#: 5: added ``meter_matrix`` — the full Fig-7 aggregation
#: (``all_node_kbps`` + ``cdf_points``) on the shared numpy
#: (node × round) matrix vs the columnar fallback, outputs asserted
#: bit-identical before timing.
#: 6: added ``population`` — the million-node population tier
#: (vectorised honest plane over a full-fidelity cohort, columnar
#: spill, memoised class crypto) with nodes/sec and peak RSS; and the
#: section selector (``repro bench --section NAME``) that re-times one
#: section and merges it into the existing report file.
#: 7: added ``service_hooks`` — per-round cost of the service-mode
#: observability hooks (no tap, tap with no subscriber, tap with one
#: draining subscriber); the idle-tap fraction is the "zero cost
#: without subscribers" number service mode promises.
SCHEMA_VERSION = 7

_BENCH_SEED = 0x9A6


class DictMeterBaseline:
    """The seed's ``(node, round)``-keyed bandwidth accounting.

    Kept as the reference implementation: the parity tests prove the
    columnar :class:`~repro.sim.metrics.BandwidthMeter` produces
    byte-identical totals, and the ``meter_cdf`` benchmark quantifies
    what retiring the per-(node, round) dict probes bought.
    """

    def __init__(self) -> None:
        self.per_round_up = {}
        self.per_round_down = {}
        self.rounds_seen = 0

    def record(self, sender: int, recipient: int, size: int, rnd: int) -> None:
        key_up = (sender, rnd)
        key_down = (recipient, rnd)
        self.per_round_up[key_up] = self.per_round_up.get(key_up, 0) + size
        self.per_round_down[key_down] = (
            self.per_round_down.get(key_down, 0) + size
        )
        if rnd + 1 > self.rounds_seen:
            self.rounds_seen = rnd + 1

    def node_bytes(
        self,
        node: int,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> int:
        last = self.rounds_seen - 1 if last_round is None else last_round
        total = 0
        for rnd in range(first_round, last + 1):
            if direction in ("both", "up"):
                total += self.per_round_up.get((node, rnd), 0)
            if direction in ("both", "down"):
                total += self.per_round_down.get((node, rnd), 0)
        return total

    def all_node_kbps(
        self,
        nodes,
        round_seconds: float = 1.0,
        first_round: int = 0,
        last_round: int | None = None,
        direction: str = "both",
    ) -> Dict[int, float]:
        last = self.rounds_seen - 1 if last_round is None else last_round
        duration = (last - first_round + 1) * round_seconds
        scale = 8.0 / 1000.0 / duration
        return {
            node: self.node_bytes(node, first_round, last, direction) * scale
            for node in nodes
        }


def _timebox(fn, min_seconds: float, min_iterations: int = 8) -> float:
    """Run ``fn(i)`` repeatedly for at least ``min_seconds``; return ops/s."""
    count = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while count < min_iterations or time.perf_counter() < deadline:
        fn(count)
        count += 1
    return count / (time.perf_counter() - start)


def measure_hash_throughput(
    modulus_bits: int,
    seconds: float = 0.25,
    backend: Optional[Backend] = None,
) -> float:
    """Homomorphic hashes/s: fresh base and prime-sized exponent each call.

    Bases and exponents are drawn up front and never repeat, so the
    hasher's memo and fixed-base caches cannot flatter the number — this
    is the cold-exponentiation rate, the Table I unit.
    """
    rng = random.Random(_BENCH_SEED)
    hasher = HomomorphicHasher(
        modulus=make_modulus(modulus_bits, rng), backend=backend
    )
    bases = [rng.getrandbits(modulus_bits * 2) for _ in range(512)]
    exponents = [
        rng.getrandbits(modulus_bits) | (1 << (modulus_bits - 1)) | 1
        for _ in range(512)
    ]

    def one(i: int) -> None:
        hasher.hash(bases[i % 512] + i, exponents[(i * 31) % 512] + 2 * i)

    return _timebox(one, seconds)


def measure_rekey_throughput(
    modulus_bits: int,
    seconds: float = 0.25,
    backend: Optional[Backend] = None,
) -> float:
    """Hot-base rekeys/s: one hot base raised to many wide exponents.

    This is the monitor's message-8 workload (the same attested hash
    lifted to many cofactors), measured through ``hasher.rekey`` so it
    exercises whatever the active backend actually does there — the
    fixed-base power ladder under pure Python, plain ``powmod`` under
    gmpy2 (where the ladder is disabled because GMP wins outright).
    """
    rng = random.Random(_BENCH_SEED + 1)
    hasher = HomomorphicHasher(
        modulus=make_modulus(modulus_bits, rng), backend=backend
    )
    base = rng.getrandbits(modulus_bits)
    exponents = [
        rng.getrandbits(modulus_bits) | 1 for _ in range(512)
    ]
    # Warm the base (two sightings build the fixed-base table, where
    # applicable) outside the clock.
    hasher.rekey(base, exponents[0])
    hasher.rekey(base, exponents[1])

    def one(i: int) -> None:
        # Fresh exponent every call: repeated pairs would measure the
        # memo, not the rekey arithmetic.
        hasher.rekey(base, exponents[i % 512] + 2 * (i // 512) + 2)

    return _timebox(one, seconds)


def measure_prime_throughput(
    bits: int = 512, count: int = 8, seed: int = _BENCH_SEED
) -> float:
    """Pooled primes/s at the paper's per-link prime size."""
    pool = PrimePool(bits, random.Random(seed))
    start = time.perf_counter()
    pool.take_many(count)
    return count / (time.perf_counter() - start)


def measure_engine_throughput(
    nodes: int = 40, rounds: int = 8
) -> Dict[str, float]:
    """End-to-end simulator rounds/s on a full PAG session."""
    from repro.core import PagConfig, PagSession

    config = PagConfig.for_system_size(nodes, stream_rate_kbps=300.0)
    session = PagSession.create(nodes, config=config)
    start = time.perf_counter()
    session.run(rounds)
    elapsed = time.perf_counter() - start
    stats = session.context.hasher.cache_stats()
    return {
        "nodes": nodes,
        "rounds": rounds,
        "seconds": round(elapsed, 4),
        "rounds_per_s": round(rounds / elapsed, 4),
        "hashes": session.context.hasher.operations,
        "cache": {
            "memo_hit_rate": round(stats["memo_hit_rate"], 4),
            "fixed_base_hit_rate": round(stats["fixed_base_hit_rate"], 4),
            "memo_entries": stats["memo_entries"],
            "memo_max": stats["memo_max"],
            "fixed_base_entries": stats["fixed_base_entries"],
            "fixed_base_max": stats["fixed_base_max"],
        },
    }


def measure_meter_cdf_throughput(
    nodes: int = 240, rounds: int = 60, seconds: float = 0.25
) -> Dict[str, float]:
    """Steady-state CDF aggregations/s: columnar meter vs dict probes.

    Fills a columnar :class:`BandwidthMeter` and the seed-layout
    :class:`DictMeterBaseline` with the identical synthetic workload
    (every node up/down every round), then times the full Fig. 7
    aggregation — window sums for all nodes plus the CDF — on each.
    """
    rng = random.Random(_BENCH_SEED + 2)
    columnar = BandwidthMeter()
    baseline = DictMeterBaseline()
    for rnd in range(rounds):
        for node in range(nodes):
            size = rng.randrange(500, 4000)
            peer = (node + 1 + rnd) % nodes
            if peer == node:
                peer = (node + 1) % nodes
            columnar.record(node, peer, size, rnd)
            baseline.record(node, peer, size, rnd)
    node_ids = list(range(nodes))
    warmup = max(1, rounds // 5)

    def one_columnar(_i: int) -> None:
        cdf_points(columnar.all_node_kbps(node_ids, first_round=warmup))

    def one_dict(_i: int) -> None:
        cdf_points(baseline.all_node_kbps(node_ids, first_round=warmup))

    columnar_per_s = _timebox(one_columnar, seconds, min_iterations=3)
    dict_per_s = _timebox(one_dict, seconds, min_iterations=3)
    return {
        "nodes": nodes,
        "rounds": rounds,
        "columnar_per_s": round(columnar_per_s, 2),
        "dict_per_s": round(dict_per_s, 2),
        "speedup": round(columnar_per_s / dict_per_s, 2),
    }


def measure_meter_matrix_throughput(
    nodes: int = 240, rounds: int = 60, seconds: float = 0.25
) -> Dict[str, object]:
    """Vectorised vs columnar meter aggregation on identical traffic.

    Two :class:`BandwidthMeter` instances record the same synthetic
    workload; one runs its aggregate reads on the shared numpy
    (node × round) matrix, the other is pinned to the columnar fallback
    (``vectorize=False``).  Before anything is timed the two arms'
    ``all_node_kbps``, ``cdf_points`` and ``snapshot`` outputs are
    asserted equal — the matrix is an execution strategy, never a
    different answer.  The timed quantity is the full Fig-7 aggregation
    (window sums over all nodes plus the CDF), matrix cache warm, the
    steady-state read pattern of ``ScenarioResult.collect``.
    """
    rng = random.Random(_BENCH_SEED + 4)
    vectorized = BandwidthMeter()
    columnar = BandwidthMeter(vectorize=False)
    for rnd in range(rounds):
        for node in range(nodes):
            size = rng.randrange(500, 4000)
            peer = (node + 1 + rnd) % nodes
            if peer == node:
                peer = (node + 1) % nodes
            vectorized.record(node, peer, size, rnd)
            columnar.record(node, peer, size, rnd)
    node_ids = list(range(nodes))
    warmup = max(1, rounds // 5)

    def aggregate(meter: BandwidthMeter, vectorize: bool):
        values = meter.all_node_kbps(
            node_ids, first_round=warmup, direction="down"
        )
        return values, cdf_points(values, vectorize=vectorize)

    if aggregate(vectorized, True) != aggregate(columnar, False):
        raise RuntimeError(
            "vectorised meter aggregation diverged from the columnar pass"
        )
    if vectorized.snapshot() != columnar.snapshot():
        raise RuntimeError(
            "vectorised meter snapshot diverged from the columnar pass"
        )

    vectorized_per_s = _timebox(
        lambda _i: aggregate(vectorized, True), seconds, min_iterations=3
    )
    columnar_per_s = _timebox(
        lambda _i: aggregate(columnar, False), seconds, min_iterations=3
    )
    return {
        "nodes": nodes,
        "rounds": rounds,
        "vectorized_per_s": round(vectorized_per_s, 2),
        "columnar_per_s": round(columnar_per_s, 2),
        "speedup": round(vectorized_per_s / columnar_per_s, 2),
        "identical": True,
    }


def measure_parallel_scaling(
    workers_list: Sequence[int] = (1, 2, 4),
    quick: bool = False,
    scenario: str = "fig9",
) -> Dict:
    """Round-throughput of the parallel backend vs the serial engine.

    Runs the fig9 scalability scenario once serially, then once per
    worker count under :class:`~repro.sim.execution.ParallelShardedPolicy`
    (process backend), asserting bit-identical results each time.  Two
    throughput views are recorded per row:

    * ``wall_*`` — observed wall clock on *this* machine.  On a box with
      fewer cores than workers the processes timeslice one core, so wall
      speedup saturates at <= 1; ``cpu_count`` is recorded alongside for
      exactly that reason.
    * ``projected_multicore_*`` — measured coordinator CPU (the parent
      process: partition, metadata merge, blob routing) plus the
      per-barrier critical path of worker CPU time (the slowest shard's
      thread-CPU, summed over barriers).  That sum is the round time a
      machine with one core per worker could not beat, and every term
      is measured from clocks in this run, not modeled.
    """
    import dataclasses as _dc

    from repro.scenarios import get_scenario
    from repro.sim.execution import ParallelShardedPolicy

    spec = get_scenario(scenario)
    if quick:
        spec = spec.with_overrides(nodes=36, rounds=6, warmup_rounds=2)
    spec = _dc.replace(spec, policy=None)
    start = time.perf_counter()
    serial = spec.run()
    serial_wall = time.perf_counter() - start
    reference = (serial.messages_sent, serial.total_bytes, serial.node_kbps)
    rows = []
    for workers in workers_list:
        policy = ParallelShardedPolicy(workers=workers, backend="process")
        start = time.perf_counter()
        cpu_start = time.process_time()
        result = spec.run(policy)
        wall = time.perf_counter() - start
        parent_cpu = time.process_time() - cpu_start
        if (
            result.messages_sent,
            result.total_bytes,
            result.node_kbps,
        ) != reference:
            raise RuntimeError(
                f"parallel run with {workers} workers diverged from the "
                "serial reference; execution-policy equivalence is broken"
            )
        stats = policy.stats
        projected = parent_cpu + stats.critical_cpu_seconds
        rows.append({
            "workers": workers,
            "mode": policy.mode,
            "wall_seconds": round(wall, 4),
            "wall_rounds_per_s": round(spec.rounds / wall, 4),
            "speedup_wall": round(serial_wall / wall, 2),
            "parent_cpu_seconds": round(parent_cpu, 4),
            "worker_busy_cpu_seconds": round(stats.busy_cpu_seconds, 4),
            "critical_path_cpu_seconds": round(
                stats.critical_cpu_seconds, 4
            ),
            "shard_imbalance": round(stats.imbalance(), 4),
            "projected_multicore_seconds": round(projected, 4),
            "projected_multicore_rounds_per_s": round(
                spec.rounds / projected, 4
            ),
            "speedup_projected_multicore": round(
                serial_wall / projected, 2
            ),
        })
    return {
        "scenario": spec.name,
        "nodes": spec.nodes,
        "rounds": spec.rounds,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_wall, 4),
        "serial_rounds_per_s": round(spec.rounds / serial_wall, 4),
        "rows": rows,
    }


def measure_batch_verify(
    quick: bool = False,
    seconds: float = 0.25,
    backend: Optional[Backend] = None,
    scenario: str = "fig9",
) -> Dict:
    """Fold-cost of the monitor obligation: per-pair vs batched.

    Two levels:

    * ``primitive`` — the exact monitor-path shape at paper sizes: k
      attested hashes under a 512-bit modulus, each raised to the
      product of the *other* k-1 512-bit primes.  Per-pair folding pays
      k full square-and-multiply chains; the Straus fold
      (:meth:`~repro.crypto.backend.Backend.multi_powmod`) shares one
      chain for the whole batch.  Both are timed on identical inputs
      and checked equal before a row is recorded.
    * ``engine`` — the fig9 scenario reshaped to single-monitor nodes
      (the deployment shape where lifted pairs never leave an engine,
      so the batched fold actually replaces per-pair ``pow``), run with
      ``batch_verify`` off and on.  Messages, bandwidth and operation
      tallies are asserted identical; only the wall clock and the fold
      strategy differ.
    """
    import dataclasses as _dc

    from repro.crypto.primes import generate_distinct_primes
    from repro.scenarios import get_scenario

    backend = backend or default_backend()
    rng = random.Random(_BENCH_SEED + 3)
    modulus = make_modulus(512, rng)
    primitive_rows = []
    for pairs_count in (3, 8):
        primes = generate_distinct_primes(pairs_count, 512, rng)
        key = 1
        for p in primes:
            key *= p
        pairs = [
            (pow(rng.getrandbits(1024) | 1, p, modulus), key // p)
            for p in primes
        ]
        reference = 1
        for base, exponent in pairs:
            reference = reference * pow(base, exponent, modulus) % modulus
        if backend.multi_powmod(pairs, modulus) != reference:
            raise RuntimeError("batched fold diverged from per-pair fold")

        def per_pair(_i: int) -> None:
            acc = 1
            for base, exponent in pairs:
                acc = acc * backend.powmod(base, exponent, modulus) % modulus

        def batched(_i: int) -> None:
            backend.multi_powmod(pairs, modulus)

        per_pair_per_s = _timebox(per_pair, seconds, min_iterations=3)
        batched_per_s = _timebox(batched, seconds, min_iterations=3)
        primitive_rows.append({
            "pairs": pairs_count,
            "modulus_bits": 512,
            "prime_bits": 512,
            "per_pair_folds_per_s": round(per_pair_per_s, 2),
            "batched_folds_per_s": round(batched_per_s, 2),
            "speedup": round(batched_per_s / per_pair_per_s, 2),
        })

    from repro.core.verification import _entry_power
    from repro.gossip.updates import content_integer

    spec = get_scenario(scenario)
    if quick:
        spec = spec.with_overrides(nodes=36, rounds=6, warmup_rounds=2)
    else:
        spec = spec.with_overrides(nodes=60, rounds=10)
    spec = _dc.replace(spec, policy=None, monitors_per_node=1)
    results = {}
    timings = {}
    lifts = {}
    # Alternate arms and keep each arm's minimum wall clock: a fixed
    # order would hand the second arm the process-global caches
    # (_entry_power, content_integer) warmed by the first, conflating
    # the fold strategy with cache warm-up — so those caches are also
    # cleared before every run.
    for label, batch_on in (
        ("on", True), ("off", False), ("on", True), ("off", False)
    ):
        _entry_power.cache_clear()
        content_integer.cache_clear()
        run_spec = _dc.replace(spec, batch_verify=batch_on)
        start = time.perf_counter()
        result = run_spec.run()
        wall = time.perf_counter() - start
        observed = (
            result.messages_sent,
            result.total_bytes,
            result.node_kbps,
            result.crypto_hashes,
        )
        if results.setdefault(label, observed) != observed:
            raise RuntimeError("batch_verify arm diverged between runs")
        if label not in timings or wall < timings[label]:
            timings[label] = wall
        lifts[label] = result.session.context.hasher.batched_lifts
    if results["on"] != results["off"]:
        raise RuntimeError(
            "batch_verify on/off runs diverged; the fold must be invisible"
        )
    return {
        "primitive": primitive_rows,
        "engine": {
            "scenario": spec.name,
            "nodes": spec.nodes,
            "rounds": spec.rounds,
            "monitors_per_node": 1,
            "batch_off_seconds": round(timings["off"], 4),
            "batch_on_seconds": round(timings["on"], 4),
            "speedup": round(timings["off"] / timings["on"], 3),
            "batched_lifts": lifts["on"],
            "identical": True,
        },
    }


def measure_shared_ladder(
    workers: int = 4, quick: bool = False, scenario: str = "fig9"
) -> Dict:
    """Worker-CPU cost of rebuilding fixed-base tables per replica.

    Runs the fig9 scenario on the process-backed parallel policy with
    ``share_ladders`` off and on, recording the summed worker thread-CPU
    and the per-barrier critical path.  Results are asserted identical
    between the runs — the table changes where the ladder levels come
    from, never what they compute.  Each arm runs twice, alternating,
    and keeps its *minimum* CPU reading: on a shared box single runs
    jitter by more than the effect under measurement, and the minimum
    is the standard noise-robust estimate of intrinsic CPU cost.
    """
    import dataclasses as _dc

    from repro.scenarios import get_scenario
    from repro.sim.execution import ParallelShardedPolicy

    spec = get_scenario(scenario)
    if quick:
        spec = spec.with_overrides(nodes=36, rounds=6, warmup_rounds=2)
    spec = _dc.replace(spec, policy=None)
    rows = {}
    reference = None
    for label, share in (
        ("on", True), ("off", False), ("on", True), ("off", False)
    ):
        policy = ParallelShardedPolicy(
            workers=workers, backend="process", share_ladders=share
        )
        start = time.perf_counter()
        result = spec.run(policy)
        wall = time.perf_counter() - start
        observed = (result.messages_sent, result.total_bytes, result.node_kbps)
        if reference is None:
            reference = observed
        elif observed != reference:
            raise RuntimeError(
                "shared-ladder run diverged from the unshared reference"
            )
        stats = policy.stats
        row = {
            "wall_seconds": round(wall, 4),
            "worker_busy_cpu_seconds": round(stats.busy_cpu_seconds, 4),
            "critical_path_cpu_seconds": round(
                stats.critical_cpu_seconds, 4
            ),
        }
        best = rows.get(label)
        if best is None or (
            row["worker_busy_cpu_seconds"]
            < best["worker_busy_cpu_seconds"]
        ):
            rows[label] = row
    off_cpu = rows["off"]["worker_busy_cpu_seconds"]
    on_cpu = rows["on"]["worker_busy_cpu_seconds"]
    return {
        "scenario": spec.name,
        "nodes": spec.nodes,
        "rounds": spec.rounds,
        "workers": workers,
        "without_table": rows["off"],
        "with_table": rows["on"],
        "worker_cpu_saved_seconds": round(off_cpu - on_cpu, 4),
        "worker_cpu_saved_fraction": round(
            (off_cpu - on_cpu) / off_cpu if off_cpu else 0.0, 4
        ),
    }


def measure_population_throughput(
    quick: bool = False, scenario: str = "fig9-1m"
) -> Dict:
    """Nodes/sec of the population tier on the fig9-shaped 1M scenario.

    Runs the registered million-node scenario (or a 100k-node smoke
    shape with ``quick``) and reports simulated node-rounds per wall
    second as ``nodes_per_sec`` — each round touches every node of the
    population once, so this is the population engine's throughput
    unit — plus the population-wide mean bandwidth and the process
    peak RSS that bound the run.
    """
    from repro.scenarios import get_scenario

    spec = get_scenario(scenario)
    if quick:
        spec = spec.with_overrides(
            rounds=4, warmup_rounds=1, population=100_000
        )
    start = time.perf_counter()
    result = spec.run()
    wall = time.perf_counter() - start
    node_rounds = spec.population * spec.rounds
    return {
        "scenario": spec.name,
        "population": spec.population,
        "cohort_nodes": spec.nodes,
        "rounds": spec.rounds,
        "wall_seconds": round(wall, 4),
        "nodes_per_sec": round(node_rounds / wall, 2),
        "population_mean_down_kbps": round(
            result.population_mean_kbps, 2
        ),
        "cohort_mean_down_kbps": round(result.mean_kbps, 2),
        "peak_rss_mb": round(result.peak_rss_mb, 1),
        "plane": dict(result.plane_stats),
    }


def measure_service_hooks(
    nodes: int = 40, rounds: int = 10, repeats: int = 3
) -> Dict:
    """Per-round cost of the service-mode observability hooks.

    The hook cost is microseconds against rounds that take tens of
    milliseconds, so end-to-end wall deltas are scheduler noise.  The
    section therefore times the hooks *directly*: the per-tick cost of
    the attached round hook with no bus subscriber (the idle ``repro
    serve`` contract — one attribute check) and with one bounded
    subscriber (full event assembly and fan-out).  The overhead
    fractions scale those tick costs against the measured untapped
    round wall — that ratio is the number PERFORMANCE.md quotes
    against the < 2% service-mode bar.  Median-of-``repeats``
    end-to-end rounds/s for the three variants ride along as context.
    """
    from repro.scenarios.spec import ScenarioSpec
    from repro.service.events import EventBus
    from repro.service.hooks import SessionTap

    spec = ScenarioSpec(
        name="bench-service-hooks",
        nodes=nodes,
        rounds=rounds,
        warmup_rounds=2,
    )
    seconds = 0.1

    def wall(mode: str) -> float:
        session = spec.build(None)
        bus = EventBus()
        subscription = None
        if mode != "untapped":
            SessionTap(session, bus).attach()
        if mode == "subscribed":
            subscription = bus.subscribe()
        start = time.perf_counter()
        session.run(spec.rounds)
        elapsed = time.perf_counter() - start
        if subscription is not None:
            subscription.drain()
            subscription.close()
        return elapsed

    # Interleave the variants so machine noise hits all three alike.
    walls: Dict[str, list] = {
        "untapped": [], "idle": [], "subscribed": [],
    }
    for _ in range(repeats):
        for mode in walls:
            walls[mode].append(wall(mode))
    medians = {
        mode: sorted(samples)[len(samples) // 2]
        for mode, samples in walls.items()
    }

    # Direct per-tick hook cost on a finished session.
    session = spec.build(None)
    bus = EventBus()
    tap = SessionTap(session, bus)
    tap.attach()
    session.run(spec.rounds)
    sink = session.simulator.event_sink
    idle_ticks_per_s = _timebox(lambda i: sink(i % rounds), seconds)
    subscription = bus.subscribe(maxlen=64)
    subscribed_ticks_per_s = _timebox(
        lambda i: sink(i % rounds), seconds
    )
    subscription.close()

    round_wall = medians["untapped"] / rounds
    return {
        "nodes": nodes,
        "rounds": rounds,
        "untapped_rounds_per_s": round(rounds / medians["untapped"], 2),
        "idle_tap_rounds_per_s": round(rounds / medians["idle"], 2),
        "subscribed_rounds_per_s": round(
            rounds / medians["subscribed"], 2
        ),
        "idle_tick_ns": round(1e9 / idle_ticks_per_s, 1),
        "subscribed_tick_us": round(1e6 / subscribed_ticks_per_s, 2),
        "idle_overhead_fraction": round(
            (1.0 / idle_ticks_per_s) / round_wall, 6
        ),
        "subscribed_overhead_fraction": round(
            (1.0 / subscribed_ticks_per_s) / round_wall, 6
        ),
    }


def run_hotpath_bench(
    out_path: Optional[str] = "BENCH_hotpath.json",
    quick: bool = False,
    engine_nodes: int = 40,
    engine_rounds: int = 8,
    sections: Optional[Sequence[str]] = None,
) -> Dict:
    """Run the hot-path measurements and optionally write the JSON.

    Args:
        out_path: where to write ``BENCH_hotpath.json`` (None: don't).
        quick: shrink the time boxes for smoke-test use.
        engine_nodes / engine_rounds: scale of the end-to-end session.
        sections: section names to (re-)measure; None measures all.
            With a selection, sections already present in ``out_path``
            are carried over unchanged and only the selected ones are
            re-timed — ``repro bench --section population`` updates one
            number without re-running the whole suite.
    """
    seconds = 0.05 if quick else 0.25
    backend = default_backend()
    builders = {
        "hashes_per_s": lambda: {
            "256": round(measure_hash_throughput(256, seconds), 2),
            "512": round(measure_hash_throughput(512, seconds), 2),
        },
        "rekey_fixed_base_per_s": lambda: {
            "512": round(measure_rekey_throughput(512, seconds), 2),
        },
        "primes_per_s": lambda: {
            "512": round(
                measure_prime_throughput(512, count=3 if quick else 8), 2
            ),
        },
        "engine": lambda: measure_engine_throughput(
            engine_nodes, engine_rounds
        ),
        "meter_cdf": lambda: measure_meter_cdf_throughput(
            nodes=60 if quick else 240,
            rounds=20 if quick else 60,
            seconds=seconds,
        ),
        "meter_matrix": lambda: measure_meter_matrix_throughput(
            nodes=60 if quick else 240,
            rounds=20 if quick else 60,
            seconds=seconds,
        ),
        "parallel": lambda: measure_parallel_scaling(
            workers_list=(2, 4) if quick else (1, 2, 4),
            quick=quick,
        ),
        "batch_verify": lambda: measure_batch_verify(
            quick=quick, seconds=seconds, backend=backend
        ),
        "shared_ladder": lambda: measure_shared_ladder(
            workers=4, quick=quick
        ),
        "population": lambda: measure_population_throughput(quick=quick),
        "service_hooks": lambda: measure_service_hooks(
            nodes=16 if quick else 40,
            rounds=5 if quick else 10,
            repeats=2 if quick else 3,
        ),
    }
    if sections is None:
        selected = list(builders)
    else:
        unknown = sorted(set(sections) - set(builders))
        if unknown:
            raise ValueError(
                f"unknown bench section(s) {unknown}; known: "
                f"{sorted(builders)}"
            )
        selected = [name for name in builders if name in set(sections)]
    report = {
        "schema": SCHEMA_VERSION,
        "backend": backend.name,
        "gmpy2_available": gmpy2_available(),
    }
    if (
        sections is not None
        and out_path is not None
        and os.path.exists(out_path)
    ):
        with open(out_path, encoding="utf-8") as fh:
            previous = json.load(fh)
        previous.pop("written_to", None)
        for key, value in previous.items():
            if key not in report:
                report[key] = value
    for name in selected:
        report[name] = builders[name]()
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        report["written_to"] = out_path
    return report
