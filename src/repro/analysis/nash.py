"""The Nash-equilibrium argument of section VI-B, made executable.

The paper claims "PAG is a Nash equilibrium, which means that selfish
nodes have no interest in deviating from the protocol": every unilateral
deviation is detected, detection produces a proof, and the punished node
loses the stream — so any bandwidth saved is dominated by the benefit
lost.

This module defines the utility function and evaluates concrete
deviations by running the packet-level protocol: a deviation's utility
is computed from the deviator's *measured* bandwidth, *measured*
playback continuity, and whether the monitoring infrastructure convicted
it.  The claim is verified (not assumed) by
``tests/analysis/test_nash.py`` and ``benchmarks/bench_nash_deviations``
over the whole deviation catalogue of :mod:`repro.adversary.selfish`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.behavior import Behavior
from repro.core.config import PagConfig
from repro.core.session import PagSession

__all__ = ["UtilityModel", "DeviationOutcome", "evaluate_deviation"]


@dataclass(frozen=True)
class UtilityModel:
    """Utility = stream benefit - bandwidth cost - punishment.

    Attributes:
        benefit_per_continuity: value of watching the full stream; the
            dominant term — users run the application because they want
            the content (section II-A).
        cost_per_kbps: disutility of one Kbps of sustained bandwidth
            (what a selfish node is trying to save).
        punishment: utility lost upon conviction — in deployed
            accountable systems, expulsion, i.e. the whole future
            benefit of the stream.
    """

    benefit_per_continuity: float = 100.0
    cost_per_kbps: float = 0.01
    punishment: float = 100.0

    def utility(
        self, continuity: float, bandwidth_kbps: float, convicted: bool
    ) -> float:
        value = (
            self.benefit_per_continuity * continuity
            - self.cost_per_kbps * bandwidth_kbps
        )
        if convicted:
            value -= self.punishment
        return value


@dataclass(frozen=True)
class DeviationOutcome:
    """Measured result of one deviation experiment."""

    deviation: str
    correct_utility: float
    deviant_utility: float
    deviant_convicted: bool
    correct_bandwidth_kbps: float
    deviant_bandwidth_kbps: float
    bandwidth_saved_kbps: float

    @property
    def deviation_profitable(self) -> bool:
        """True would falsify the Nash-equilibrium claim."""
        return self.deviant_utility > self.correct_utility


def evaluate_deviation(
    behavior: Behavior,
    n_nodes: int = 20,
    rounds: int = 16,
    deviant_id: int = 7,
    model: Optional[UtilityModel] = None,
    config: Optional[PagConfig] = None,
) -> DeviationOutcome:
    """Run the same session twice — all-correct, then with one deviant —
    and compare the deviant's utilities.

    Both runs share the seed, so the topology, stream and randomness are
    identical; only the deviant's behaviour differs (the definition of a
    unilateral deviation).
    """
    model = model or UtilityModel()

    baseline = PagSession.create(n_nodes, config=config)
    baseline.run(rounds)
    correct_bw = baseline.bandwidth_kbps(direction="both")[deviant_id]
    correct_continuity = baseline.playback_report(deviant_id).continuity
    correct_utility = model.utility(
        correct_continuity, correct_bw, convicted=False
    )

    deviant_session = PagSession.create(
        n_nodes, config=config, behaviors={deviant_id: behavior}
    )
    deviant_session.run(rounds)
    deviant_bw = deviant_session.bandwidth_kbps(direction="both")[deviant_id]
    deviant_continuity = deviant_session.playback_report(
        deviant_id
    ).continuity
    convicted = deviant_id in deviant_session.convicted_nodes()
    deviant_utility = model.utility(
        deviant_continuity, deviant_bw, convicted=convicted
    )

    return DeviationOutcome(
        deviation=type(behavior).__name__,
        correct_utility=correct_utility,
        deviant_utility=deviant_utility,
        deviant_convicted=convicted,
        correct_bandwidth_kbps=correct_bw,
        deviant_bandwidth_kbps=deviant_bw,
        bandwidth_saved_kbps=correct_bw - deviant_bw,
    )
