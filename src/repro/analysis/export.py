"""Export every regenerated table and figure as CSV/JSON artefacts.

`python -m repro export --out results/` writes one file per experiment
so the series can be re-plotted or diffed against other runs without
re-running the simulations embedded in the benchmark suite.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List

from repro.analysis.bandwidth import ActingBandwidthModel, PagBandwidthModel
from repro.analysis.costs import table1_rows
from repro.analysis.privacy import figure10_series
from repro.analysis.quality import table2
from repro.core.config import PagConfig

__all__ = ["export_all", "EXPORTERS"]


def _write_csv(path: Path, header: List[str], rows: List[List]) -> None:
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_fig8(out_dir: Path) -> Path:
    rows = []
    for kb in (1, 2, 5, 10, 20, 50, 100):
        config = PagConfig.for_system_size(
            1000, stream_rate_kbps=300.0, update_bytes=int(kb * 125)
        )
        rows.append(
            [kb, round(PagBandwidthModel(config=config).total_kbps(), 1)]
        )
    path = out_dir / "fig8_update_size.csv"
    _write_csv(path, ["update_kbit", "bandwidth_kbps"], rows)
    return path


def export_fig9(out_dir: Path) -> Path:
    rows = []
    for n in (10**3, 10**4, 10**5, 10**6):
        pag = PagBandwidthModel.for_system(n, 300.0).total_kbps()
        acting = ActingBandwidthModel.for_system(n, 300.0).total_kbps()
        rows.append([n, round(pag, 1), round(acting, 1)])
    path = out_dir / "fig9_scalability.csv"
    _write_csv(path, ["nodes", "pag_kbps", "acting_kbps"], rows)
    return path


def export_fig10(out_dir: Path) -> Path:
    rows = [
        [
            p.attacker_fraction,
            round(p.acting, 4),
            round(p.pag_3_monitors, 4),
            round(p.pag_5_monitors, 4),
            round(p.theoretical_minimum, 4),
        ]
        for p in figure10_series()
    ]
    path = out_dir / "fig10_coalitions.csv"
    _write_csv(
        path,
        ["attacker_fraction", "acting", "pag_3", "pag_5", "minimum"],
        rows,
    )
    return path


def export_table1(out_dir: Path) -> Path:
    rows = [
        [
            r.quality,
            r.payload_kbps,
            r.rsa_signatures_per_s,
            round(r.homomorphic_hashes_per_s, 1),
        ]
        for r in table1_rows()
    ]
    path = out_dir / "table1_crypto_costs.csv"
    _write_csv(
        path,
        ["quality", "payload_kbps", "signatures_per_s", "hashes_per_s"],
        rows,
    )
    return path


def export_table2(out_dir: Path) -> Path:
    payload = {
        protocol: [
            {
                "link": cell.link,
                "quality": cell.quality,
                "used_kbps": (
                    round(cell.used_kbps, 1)
                    if cell.used_kbps is not None
                    else None
                ),
            }
            for cell in cells
        ]
        for protocol, cells in table2().items()
    }
    path = out_dir / "table2_video_quality.json"
    path.write_text(json.dumps(payload, indent=2, ensure_ascii=False))
    return path


EXPORTERS = {
    "fig8": export_fig8,
    "fig9": export_fig9,
    "fig10": export_fig10,
    "table1": export_table1,
    "table2": export_table2,
}


def export_all(out_dir: str | Path) -> Dict[str, Path]:
    """Write every artefact; returns experiment id -> file path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    return {name: exporter(out) for name, exporter in EXPORTERS.items()}
