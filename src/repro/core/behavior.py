"""Behaviour hooks: where correct and selfish nodes differ.

A PAG node consults its behaviour object before every action a selfish
node might skip to save resources (section II-A: selfish nodes "maximise
their benefit ... while minimising their contribution").  The default
:class:`CorrectBehavior` performs every action; the strategies in
:mod:`repro.adversary.selfish` override individual hooks.

Keeping deviations behind an explicit interface means the protocol code
itself is written once, and every deviation the accountability analysis
of section VI-B considers maps to exactly one hook.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.messages import ServeEntry

__all__ = ["Behavior", "CorrectBehavior"]


class Behavior:
    """Decision hooks consulted by :class:`~repro.core.node.PagNode`.

    Every method answers "does the node perform this protocol step?",
    or filters the content of a step.  Subclass and override to express
    a selfish strategy.
    """

    def initiates_exchange(self, successor: int, round_no: int) -> bool:
        """Contact this successor at all (KeyRequest, message 1)?"""
        return True

    def filter_serve(
        self, entries: Sequence[ServeEntry], successor: int, round_no: int
    ) -> Tuple[ServeEntry, ...]:
        """The entries actually served (message 3); drop some to cheat."""
        return tuple(entries)

    def answers_key_request(self, predecessor: int, round_no: int) -> bool:
        """Issue a prime to this predecessor (message 2)?  Refusing is a
        violation of R1 (obligation to receive)."""
        return True

    def sends_ack(self, server: int, round_no: int) -> bool:
        """Acknowledge a received serve (message 5)?"""
        return True

    def declares_to_monitors(self, server: int, round_no: int) -> bool:
        """Send the AckCopy/AttestationRelay pair (messages 6-7)?"""
        return True

    def answers_probe(self, monitor: int, round_no: int) -> bool:
        """Acknowledge a monitor-relayed serve after an accusation?"""
        return True

    def answers_investigation(self, monitor: int, round_no: int) -> bool:
        """Respond to an investigation request from a monitor?"""
        return True

    def accuses_silent_successor(self, successor: int, round_no: int) -> bool:
        """Accuse a successor that did not acknowledge (Fig. 3)?"""
        return True

    def performs_monitoring(self) -> bool:
        """Carry out monitor duties for the nodes this node monitors?"""
        return True

    def transforms_lifted(self) -> bool:
        """Does :meth:`transform_lifted` ever change a pair?

        Derived from whether the subclass overrides the hook, so an
        adversarial behavior can never forget to advertise itself: if
        :meth:`transform_lifted` is the base identity, the monitor
        engine may skip per-pair materialisation entirely (batched
        verification folds the raw pairs instead).
        """
        return (
            type(self).transform_lifted is not Behavior.transform_lifted
        )

    def transform_lifted(
        self,
        monitored: int,
        predecessor: int,
        round_no: int,
        lifted: Tuple[int, int],
    ) -> Tuple[int, int]:
        """The lifted hash pair this node broadcasts as a designated
        monitor (message 8).  A lying monitor corrupts it — caught by
        the section V-B cross-checks when enabled."""
        return lifted


class CorrectBehavior(Behavior):
    """A node that follows the protocol to the letter."""
