"""Shared session context handed to every PAG node and monitor engine."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.config import PagConfig
from repro.core.signing import Signer, TokenSigner
from repro.crypto.backend import resolve_backend
from repro.crypto.homomorphic import HomomorphicHasher, make_modulus
from repro.crypto.keystore import CryptoCounters
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.rng import SeedSequence

__all__ = ["PagContext"]


@dataclass
class PagContext:
    """Everything a PAG participant needs besides its own state.

    Attributes:
        config: session parameters.
        directory: membership (including the source id).
        views: successor/monitor/predecessor oracle.
        hasher: the shared homomorphic hash (public modulus M).
        signer: signature scheme (real RSA or counted tokens).
        seeds: per-component randomness.
        counters: session-wide tallies of asymmetric operations and prime
            generations (signatures/verifications are tallied inside the
            signer, homomorphic hashes inside the hasher).
    """

    config: PagConfig
    directory: Directory
    views: ViewProvider
    hasher: HomomorphicHasher
    signer: Signer
    seeds: SeedSequence
    counters: CryptoCounters = field(default_factory=CryptoCounters)

    def counters_encrypt(self) -> None:
        """Tally one public-key encryption (a ``{...}pk(X)`` wrapper)."""
        self.counters.encryptions += 1

    def counters_decrypt(self) -> None:
        self.counters.decryptions += 1

    @classmethod
    def build(
        cls,
        config: PagConfig,
        directory: Directory,
        signer: Signer | None = None,
        active_from: dict | None = None,
    ) -> "PagContext":
        """Wire up a context from a config and membership.

        Args:
            active_from: node id -> first participating round, for
                sessions with mid-stream arrivals (see
                :class:`~repro.membership.views.ViewProvider`).
        """
        seeds = SeedSequence(config.seed)
        views = ViewProvider(
            directory=directory,
            seeds=seeds.child("views"),
            fanout=config.fanout,
            monitors_per_node=config.monitors_per_node,
            active_from=dict(active_from or {}),
        )
        modulus_rng = seeds.stream("modulus")
        backend = None
        if config.crypto_backend != "auto":
            backend = resolve_backend(config.crypto_backend)
        hasher = HomomorphicHasher(
            modulus=make_modulus(config.sim_modulus_bits, modulus_rng),
            backend=backend,
            memo_max=config.hash_memo_entries,
            fixed_base_max=config.fixed_base_cache_entries,
        )
        return cls(
            config=config,
            directory=directory,
            views=views,
            hasher=hasher,
            signer=signer if signer is not None else TokenSigner(),
            seeds=seeds,
        )

    @property
    def source_id(self) -> int:
        if self.directory.source_id is None:
            raise ValueError("session has no source")
        return self.directory.source_id

    def prime_rng(self, node_id: int) -> random.Random:
        """Per-node stream for drawing link primes."""
        return self.seeds.stream("primes", node_id)

    def is_monitored(self, node_id: int) -> bool:
        """The source is assumed correct and therefore unmonitored."""
        return node_id != self.directory.source_id

    def monitors_of(self, node_id: int) -> List[int]:
        return self.views.monitors(node_id)

    def active_monitors_of(self, node_id: int, round_no: int) -> List[int]:
        """The monitors of ``node_id`` that have arrived by ``round_no``.

        Monitor sets are session-stable, but with join churn a set may
        name nodes announced ahead of their arrival.  Duty-targeted
        traffic (the round-robin declaration designation and its
        failure-path redeclarations) consults this view so the duty is
        carried by the monitors actually present — and is picked up by
        a late-arriving monitor the round it joins.  Falls back to the
        stable set if none of them has arrived (the sends are then
        dropped like any traffic to an absent node, and redeclaration
        retries next round).
        """
        active = self.views.active_from
        monitors = self.views.monitors(node_id)
        if not active:
            return monitors
        present = [m for m in monitors if active.get(m, 0) <= round_no]
        return present or monitors
