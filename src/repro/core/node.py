"""PAG protocol participants: consumer nodes and the source.

A :class:`PagNode` plays three roles simultaneously:

* **server** — each round it runs the five-message exchange of Fig. 5
  with every successor, serving the updates it received the previous
  round;
* **receiver** — it issues fresh primes, verifies attestations, signs
  acknowledgements, and declares its receptions to its monitors
  (messages 6-7 of Fig. 6);
* **monitor** — it hosts a :class:`~repro.core.monitor.MonitorEngine`
  carrying out its duties towards the nodes it monitors.

All deviations a selfish node might attempt are delegated to the node's
:class:`~repro.core.behavior.Behavior` object, so this class encodes the
protocol exactly once.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.core.accusations import VerdictLog
from repro.core.behavior import Behavior, CorrectBehavior
from repro.core.context import PagContext
from repro.core.messages import (
    Accusation,
    Ack,
    AckCopy,
    AckRelay,
    Attestation,
    AttestationRelay,
    AttestationRelayBatch,
    Confirm,
    DeclarationAck,
    InvestigateRequest,
    InvestigateResponse,
    KeyRequest,
    KeyResponse,
    MonitorBroadcast,
    MonitorProbe,
    Nack,
    ProbeAck,
    SelfCheck,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.core.monitor import MonitorEngine
from repro.core.state import OutgoingExchange, PagNodeState
from repro.core.verification import ack_hash, hash_entries, serve_hashes
from repro.crypto.primes import PrimePool
from repro.gossip.source import StreamSchedule
from repro.gossip.updates import Update, UpdateStore
from repro.sim.message import Message
from repro.sim.network import Network
from repro.sim.node import SimNode

__all__ = ["PagNode", "PagSourceNode"]


class PagNode(SimNode):
    """A consumer node running PAG."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        context: PagContext,
        behavior: Optional[Behavior] = None,
    ) -> None:
        super().__init__(node_id, network)
        self.context = context
        self.behavior = behavior if behavior is not None else CorrectBehavior()
        self.state = PagNodeState()
        self.store = UpdateStore()
        self.monitor = MonitorEngine(
            host_id=node_id,
            context=context,
            send=self.send,
            active=(
                context.config.detection_enabled
                and self.behavior.performs_monitoring()
            ),
            # Join churn: a late-arriving monitor must not judge
            # exchanges whose declarations predate its arrival.
            first_round=context.views.active_from.get(node_id, 0),
            # Honest behaviors never change a lifted pair; handing the
            # engine no hook at all lets batched verification defer the
            # per-pair exponentiations (the hook forces materialisation).
            lift_transform=(
                self.behavior.transform_lifted
                if self.behavior.transforms_lifted()
                else None
            ),
        )
        self._prime_rng = context.prime_rng(node_id)
        #: sieve-windowed pool amortising the per-round prime draws.
        self._prime_pool = PrimePool(
            context.config.sim_prime_bits, self._prime_rng
        )
        #: (round, contents) advertised to every predecessor this round.
        self._buffermap_cache: Tuple[int, List[int]] = (-1, [])
        self._queued_accusations: List[Tuple[int, OutgoingExchange]] = []
        self._contacted: Dict[int, List[int]] = {}
        self._designations: Dict[int, int] = {}
        #: declarations awaiting a DeclarationAck, keyed (round, server):
        #: {"attestation", "ack", "tried": [monitor ids]}.
        self._pending_declarations: Dict[Tuple[int, int], Dict] = {}

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        self.monitor.begin_round(round_no)
        self._send_queued_accusations(round_no)
        self._redeclare_unacknowledged(round_no)
        contacted = self._contacted.setdefault(round_no, [])
        for successor in self.context.views.successors(self.node_id, round_no):
            if not self.behavior.initiates_exchange(successor, round_no):
                continue
            contacted.append(successor)
            self.send(
                KeyRequest(
                    sender=self.node_id,
                    recipient=successor,
                    round_no=round_no,
                    signature=self._sign(f"keyreq|{round_no}|{successor}"),
                )
            )

    def end_round(self, round_no: int) -> None:
        self._queue_accusations(round_no)
        self.monitor.end_round(round_no)
        self.store.drop_expired(round_no)
        horizon = round_no - self.context.config.playout_delay_rounds - 4
        self.state.prune_before(horizon)
        for rnd in [r for r in self._designations if r < horizon]:
            del self._designations[rnd]

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        handler = {
            KeyRequest: self._on_key_request,
            KeyResponse: self._on_key_response,
            Serve: self._on_serve,
            Attestation: self._on_attestation,
            Ack: self._on_ack,
            AckCopy: self.monitor.on_ack_copy,
            AttestationRelay: self.monitor.on_attestation_relay,
            AttestationRelayBatch: (
                self.monitor.on_attestation_relay_batch
            ),
            MonitorBroadcast: self.monitor.on_monitor_broadcast,
            AckRelay: self.monitor.on_ack_relay,
            Accusation: self.monitor.on_accusation,
            MonitorProbe: self._on_monitor_probe,
            ProbeAck: self.monitor.on_probe_ack,
            Confirm: self.monitor.on_confirm,
            Nack: self.monitor.on_nack,
            InvestigateRequest: self._on_investigate_request,
            InvestigateResponse: self.monitor.on_investigate_response,
            DeclarationAck: self._on_declaration_ack,
            SelfCheck: self.monitor.on_self_check,
        }.get(type(message))
        if handler is not None:
            handler(message)

    # ------------------------------------------------------------------
    # Server side (A in Fig. 5)
    # ------------------------------------------------------------------

    def _forward_items(self, round_no: int) -> List[Tuple[Update, int]]:
        """What this node must serve in ``round_no`` (with counts)."""
        return self.state.forward_set(round_no - 1).items()

    def _serving_key(self, round_no: int) -> Tuple[int, int]:
        """``K(round_no - 1, self)`` and its prime count, for the Ack."""
        return self.state.round_key(round_no - 1)

    def _on_key_response(self, message: KeyResponse) -> None:
        round_no = message.round_no
        successor = message.sender
        self.context_decrypt()
        if not self.context.signer.verify(
            successor,
            self._key_response_desc(message),
            message.signature,
        ):
            return
        prime = message.prime
        entries = self._classify_entries(
            self._forward_items(round_no), message.buffermap, prime, round_no
        )
        entries = self.behavior.filter_serve(entries, successor, round_no)
        key_prev, key_count = self._serving_key(round_no)
        hash_forward, hash_ack_only = serve_hashes(
            self.context.hasher, entries, prime
        )
        unsigned = SignedAttestation(
            round_no=round_no,
            server=self.node_id,
            receiver=successor,
            hash_forward=hash_forward,
            hash_ack_only=hash_ack_only,
            signature=0,
        )
        attestation = replace(
            unsigned,
            signature=self.context.signer.sign(
                self.node_id, unsigned.payload_bytes_desc()
            ),
        )
        exchange = OutgoingExchange(
            successor=successor,
            round_no=round_no,
            entries=entries,
            key_prev=key_prev,
            key_prime_count=key_count,
            expected_ack_hash=ack_hash(self.context.hasher, entries, key_prev),
            served=True,
        )
        self.state.outgoing[(round_no, successor)] = exchange
        self.context.counters_encrypt()
        self.send(
            Serve(
                sender=self.node_id,
                recipient=successor,
                round_no=round_no,
                key_prev=key_prev,
                key_prime_count=key_count,
                entries=entries,
                signature=self._sign(f"serve|{round_no}|{successor}"),
            )
        )
        self.send(
            Attestation(
                sender=self.node_id,
                recipient=successor,
                round_no=round_no,
                attestation=attestation,
            )
        )

    def _classify_entries(
        self,
        items: List[Tuple[Update, int]],
        buffermap: frozenset,
        prime: int,
        round_no: int,
    ) -> Tuple[ServeEntry, ...]:
        """Split the forward set into payload / ack-only entries for one
        successor (sections V-A and V-D)."""
        hasher = self.context.hasher
        ghosts_forward = self.context.config.forward_owned_ghosts
        entries = []
        for update, count in items:
            owned = hasher.hash(update.content, prime) in buffermap
            expiring = update.expires_next_round(round_no)
            ack_only = expiring or (owned and not ghosts_forward)
            entries.append(
                ServeEntry(
                    update=update,
                    count=count,
                    has_payload=not owned,
                    ack_only=ack_only,
                )
            )
        return tuple(entries)

    def _on_ack(self, message: Ack) -> None:
        ack = message.ack
        exchange = self.state.outgoing.get((ack.round_no, ack.receiver))
        if exchange is None:
            return
        if not self.context.signer.verify(
            ack.receiver, ack.payload_bytes_desc(), ack.signature
        ):
            return
        if ack.hash_total != exchange.expected_ack_hash:
            return  # a wrong ack counts as no ack: the accusation will fire
        exchange.ack = ack

    def _queue_accusations(self, round_no: int) -> None:
        """End of round: contacted successors without a valid ack are
        accused (Fig. 3), whether they refused the key exchange or
        refused the acknowledgement."""
        for successor in self._contacted.pop(round_no, []):
            exchange = self.state.outgoing.get((round_no, successor))
            if exchange is None:
                # The successor never even issued a prime (message 2
                # withheld): accuse with the set we meant to serve.
                exchange = self._pseudo_exchange(round_no, successor)
                self.state.outgoing[(round_no, successor)] = exchange
            if exchange.acknowledged or exchange.accused:
                continue
            if not self.behavior.accuses_silent_successor(successor, round_no):
                continue
            exchange.accused = True
            self._queued_accusations.append((round_no, exchange))

    def _pseudo_exchange(
        self, round_no: int, successor: int
    ) -> OutgoingExchange:
        """The serve we would have sent, reconstructed for an accusation.

        Without a KeyResponse there is no buffermap and no prime, so all
        entries carry payload and only expiration drives the ack-only
        split.
        """
        entries = tuple(
            ServeEntry(
                update=update,
                count=count,
                has_payload=True,
                ack_only=update.expires_next_round(round_no),
            )
            for update, count in self._forward_items(round_no)
        )
        key_prev, key_count = self._serving_key(round_no)
        return OutgoingExchange(
            successor=successor,
            round_no=round_no,
            entries=entries,
            key_prev=key_prev,
            key_prime_count=key_count,
            expected_ack_hash=ack_hash(self.context.hasher, entries, key_prev),
            served=False,
        )

    def _send_queued_accusations(self, round_no: int) -> None:
        pending, self._queued_accusations = self._queued_accusations, []
        for exchange_round, exchange in pending:
            targets = list(self.context.monitors_of(exchange.successor))
            targets += [
                m
                for m in self.context.monitors_of(self.node_id)
                if m not in targets and m != exchange.successor
            ]
            for target in targets:
                if target == self.node_id:
                    continue
                self.send(
                    Accusation(
                        sender=self.node_id,
                        recipient=target,
                        round_no=round_no,
                        accused=exchange.successor,
                        exchange_round=exchange_round,
                        entries=exchange.entries,
                        key_prev=exchange.key_prev,
                        key_prime_count=exchange.key_prime_count,
                        signature=self._sign(
                            f"accuse|{exchange.successor}|{exchange_round}"
                        ),
                    )
                )

    def _on_investigate_request(self, message: InvestigateRequest) -> None:
        if not self.behavior.answers_investigation(
            message.sender, message.round_no
        ):
            return
        exchange = self.state.outgoing.get(
            (message.exchange_round, message.successor)
        )
        ack = exchange.ack if exchange is not None else None
        accused = exchange.accused if exchange is not None else False
        self.send(
            InvestigateResponse(
                sender=self.node_id,
                recipient=message.sender,
                round_no=message.round_no,
                successor=message.successor,
                exchange_round=message.exchange_round,
                ack=ack,
                accused_instead=accused,
                signature=self._sign(
                    f"invresp|{message.successor}|{message.exchange_round}"
                ),
            )
        )

    # ------------------------------------------------------------------
    # Receiver side (B in Fig. 5)
    # ------------------------------------------------------------------

    def _on_key_request(self, message: KeyRequest) -> None:
        round_no = message.round_no
        predecessor = message.sender
        if not self.behavior.answers_key_request(predecessor, round_no):
            return
        if self.state.prime_for(round_no, predecessor) is not None:
            return  # idempotence: one prime per link per round
        prime = self._fresh_prime(round_no)
        self.state.issue_prime(round_no, predecessor, prime)
        self.context.counters.prime_generations += 1
        buffermap = frozenset(
            self.context.hasher.hash(content, prime)
            for content in self._buffermap_contents(round_no)
        )
        response = KeyResponse(
            sender=self.node_id,
            recipient=predecessor,
            round_no=round_no,
            prime=prime,
            buffermap=buffermap,
            signature=0,
        )
        response.signature = self.context.signer.sign(
            self.node_id, self._key_response_desc(response)
        )
        self.context.counters_encrypt()
        self.send(response)

    def _fresh_prime(self, round_no: int) -> int:
        issued = set(self.state.primes_issued.get(round_no, {}).values())
        while True:
            prime = self._prime_pool.take()
            if prime not in issued:
                return prime

    def _buffermap_contents(self, round_no: int) -> List[int]:
        """Contents advertised in this round's buffermaps.

        Cached per round: every predecessor's KeyRequest reads the same
        store state, because all KeyRequests of a round are queued at
        round start and therefore drain before any of the round's serves
        is ingested.
        """
        cached_round, contents = self._buffermap_cache
        if cached_round == round_no:
            return contents
        depth = self.context.config.buffermap_depth
        uids = self.store.recent_uids(round_no, depth)
        contents = []
        for uid in sorted(uids):
            update = self.store.get(uid)
            if update is not None:
                contents.append(update.content)
        self._buffermap_cache = (round_no, contents)
        return contents

    def _on_serve(self, message: Serve) -> None:
        self.context_decrypt()
        key = (message.round_no, message.sender)
        self.state.pending_serves[key] = message

    def _on_attestation(self, message: Attestation) -> None:
        round_no = message.round_no
        server = message.sender
        serve = self.state.pending_serves.pop((round_no, server), None)
        if serve is None:
            return
        prime = self.state.prime_for(round_no, server)
        if prime is None:
            return
        attestation = message.attestation
        if not self.context.signer.verify(
            server, attestation.payload_bytes_desc(), attestation.signature
        ):
            return
        expected = serve_hashes(self.context.hasher, serve.entries, prime)
        if (attestation.hash_forward, attestation.hash_ack_only) != expected:
            return  # "the attestation ... can be verified by node B"
        self._ingest_serve(serve, round_no)
        if not self.behavior.sends_ack(server, round_no):
            return
        ack = self._sign_ack(
            round_no, server, serve.entries, serve.key_prev,
            serve.key_prime_count,
        )
        self.state.acks_sent[(round_no, server)] = ack
        self.send(
            Ack(
                sender=self.node_id,
                recipient=server,
                round_no=round_no,
                ack=ack,
            )
        )
        if self.behavior.declares_to_monitors(server, round_no):
            self._declare_to_monitors(round_no, server, attestation, ack)
            if self.context.config.monitor_cross_checks:
                self._send_self_checks(round_no, server, serve)

    def _ingest_serve(self, serve: Serve, round_no: int) -> None:
        forward_set = self.state.forward_set(round_no)
        for entry in serve.entries:
            if entry.has_payload:
                self.store.add(entry.update, round_no)
            if not entry.ack_only:
                forward_set.add(entry.update, entry.count)

    def _sign_ack(
        self,
        round_no: int,
        server: int,
        entries: Tuple[ServeEntry, ...],
        key_prev: int,
        key_prime_count: int,
    ) -> SignedAck:
        total = ack_hash(self.context.hasher, entries, key_prev)
        unsigned = SignedAck(
            round_no=round_no,
            receiver=self.node_id,
            server=server,
            hash_total=total,
            key_prime_count=key_prime_count,
            signature=0,
        )
        return replace(
            unsigned,
            signature=self.context.signer.sign(
                self.node_id, unsigned.payload_bytes_desc()
            ),
        )

    def _declare_to_monitors(
        self,
        round_no: int,
        server: int,
        attestation: SignedAttestation,
        ack: SignedAck,
    ) -> None:
        """Messages 6 and 7: declare the reception to one monitor.

        Each predecessor's pair goes to a *different* monitor, assigned
        round-robin in arrival order, "to prevent monitors from
        receiving all the products of the prime numbers" (section V-B):
        two cofactors of the same round reveal individual primes through
        a gcd.

        With join churn the rotation runs over the monitors that have
        actually arrived (:meth:`PagContext.active_monitors_of
        <repro.core.context.PagContext.active_monitors_of>`): the duty
        is reassigned to the present monitors and a late-arriving one
        enters the rotation the round it joins.
        """
        monitors = self.context.active_monitors_of(self.node_id, round_no)
        counter = self._designations.get(round_no, round_no)
        self._designations[round_no] = counter + 1
        monitor = monitors[counter % len(monitors)]
        self._pending_declarations[(round_no, server)] = {
            "attestation": attestation,
            "ack": ack,
            "tried": [monitor],
        }
        self._send_declaration_pair(
            round_no, server, attestation, ack, monitor
        )

    def _send_declaration_pair(
        self,
        round_no: int,
        server: int,
        attestation: SignedAttestation,
        ack: SignedAck,
        monitor: int,
    ) -> None:
        cofactor, cofactor_count = self.state.cofactor(round_no, server)
        self.send(
            AckCopy(
                sender=self.node_id,
                recipient=monitor,
                round_no=round_no,
                ack=ack,
            )
        )
        self.context.counters_encrypt()
        self.send(
            AttestationRelay(
                sender=self.node_id,
                recipient=monitor,
                round_no=round_no,
                attestation=attestation,
                cofactor=cofactor,
                cofactor_prime_count=cofactor_count,
                signature=self._sign(
                    f"attrelay|{round_no}|{server}|{cofactor}"
                ),
            )
        )

    def _on_declaration_ack(self, message: DeclarationAck) -> None:
        self._pending_declarations.pop(
            (message.exchange_round, message.server), None
        )

    def _redeclare_unacknowledged(self, round_no: int) -> None:
        """A silent designated monitor is presumed dead: re-send the
        declaration pair to every monitor not yet tried.

        The obligation check runs at the end of round ``decl_round + 1``,
        so there is exactly one round to recover a failed declaration —
        retrying a single monitor per round cannot meet that deadline
        when the retry target is itself gone (a designated monitor in
        outage plus a freshly departed peer monitor convicts the honest
        declarer's own predecessor chain).  Fanning the retry out
        realises the paper's at-least-one-correct-monitor assumption
        within the deadline; the happy path still hands each monitor at
        most one cofactor (the cofactor travels again only on failure,
        as before — just to the whole remainder of the set at once).
        """
        monitors = self.context.active_monitors_of(self.node_id, round_no)
        for (decl_round, server), pending in list(
            self._pending_declarations.items()
        ):
            if decl_round >= round_no:
                continue  # the original send is still in flight
            untried = [m for m in monitors if m not in pending["tried"]]
            if not untried:
                del self._pending_declarations[(decl_round, server)]
                continue
            for target in untried:
                pending["tried"].append(target)
                self._send_declaration_pair(
                    decl_round,
                    server,
                    pending["attestation"],
                    pending["ack"],
                    target,
                )

    def _send_self_checks(
        self, round_no: int, server: int, serve: Serve
    ) -> None:
        """Section V-B: compute the lifted pair ourselves and send it,
        signed, to every monitor, so they can check each other."""
        key, _count = self.state.round_key(round_no)
        forward = [e for e in serve.entries if not e.ack_only]
        ack_only = [e for e in serve.entries if e.ack_only]
        from repro.core.verification import hash_entries

        lifted_forward = hash_entries(self.context.hasher, forward, key)
        lifted_ack_only = hash_entries(self.context.hasher, ack_only, key)
        for monitor in self.context.monitors_of(self.node_id):
            check = SelfCheck(
                sender=self.node_id,
                recipient=monitor,
                round_no=round_no,
                predecessor=server,
                lifted_forward=lifted_forward,
                lifted_ack_only=lifted_ack_only,
                signature=0,
            )
            check.signature = self.context.signer.sign(
                self.node_id, check.payload_desc()
            )
            self.send(check)

    def _on_monitor_probe(self, message: MonitorProbe) -> None:
        if not self.behavior.answers_probe(message.sender, message.round_no):
            return
        # Late ingestion: the payloads are still useful for playback,
        # but probed entries do not re-enter the forwarding obligation
        # (see DESIGN.md: failure-path simplification).
        for entry in message.entries:
            if entry.has_payload:
                self.store.add(entry.update, message.round_no)
        ack = self._sign_ack(
            message.exchange_round,
            message.accuser,
            message.entries,
            message.key_prev,
            message.key_prime_count,
        )
        self.send(
            ProbeAck(
                sender=self.node_id,
                recipient=message.sender,
                round_no=message.round_no,
                ack=ack,
            )
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _key_response_desc(message: KeyResponse) -> bytes:
        return (
            f"keyresp|{message.round_no}|{message.sender}|"
            f"{message.recipient}|{message.prime}|"
            f"{sorted(message.buffermap)}".encode()
        )

    def _sign(self, description: str) -> int:
        return self.context.signer.sign(self.node_id, description.encode())

    def context_decrypt(self) -> None:
        self.context.counters_decrypt()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def verdicts(self) -> VerdictLog:
        return self.monitor.verdicts


class PagSourceNode(PagNode):
    """The stream source.

    Serves freshly released chunks through the standard exchange.  Its
    acknowledgement key is a private per-round prime (it has no
    predecessors, hence no ``K(R-1)``); its monitors' checks are skipped
    because the source is correct by assumption (section III).
    """

    def __init__(
        self,
        node_id: int,
        network: Network,
        context: PagContext,
        schedule: StreamSchedule,
    ) -> None:
        super().__init__(node_id, network, context)
        self.schedule = schedule
        self.released: List[Update] = []
        self._round_chunks: Dict[int, List[Update]] = {}
        self._source_keys: Dict[int, int] = {}

    def begin_round(self, round_no: int) -> None:
        chunks = self.schedule.release(round_no)
        self.released.extend(chunks)
        self._round_chunks[round_no] = chunks
        self._source_keys[round_no] = self._prime_pool.take()
        super().begin_round(round_no)

    def _forward_items(self, round_no: int) -> List[Tuple[Update, int]]:
        return [(u, 1) for u in self._round_chunks.get(round_no, [])]

    def _serving_key(self, round_no: int) -> Tuple[int, int]:
        key = self._source_keys.get(round_no)
        if key is None:
            key = self._prime_pool.take()
            self._source_keys[round_no] = key
        return key, 1

    def end_round(self, round_no: int) -> None:
        super().end_round(round_no)
        horizon = round_no - 4
        for store in (self._round_chunks, self._source_keys):
            for rnd in [r for r in store if r < horizon]:
                del store[rnd]

    def total_released(self) -> int:
        return len(self.released)
