"""The monitor engine: log-less verification of reception and forwarding.

Every node hosts one :class:`MonitorEngine` that carries out its duties
towards the nodes it monitors (section IV-A).  Per monitored node X and
round R the engine:

1. **Receiver side** — receives X's AckCopy/AttestationRelay pairs
   (messages 6-7), lifts each attested hash to X's full round key with
   the supplied cofactor (message 8 computation), broadcasts the lifted
   values to the other monitors of X, and relays X's acknowledgement to
   the monitors of the serving node (message 9).  At the end of the
   round, the per-predecessor lifted hashes multiply into X's
   *forwarding obligation*: ``H(everything X must forward)_(K(R,X))``
   (section V-C).

2. **Server side** — during round R+1 collects, for each successor D of
   X, the relayed acknowledgement (message 9 from D's monitors, or a
   Confirm from the accusation path).  Each ack must equal X's round-R
   obligation.  A missing ack opens a :class:`CaseFile`: the engine asks
   X to exhibit D's signed ack ("they ask node A for the acknowledgement
   that node B should have sent", section IV-A); exhibition convicts D,
   a Nack from D's monitors convicts D, and silence or an unbacked
   accusation claim convicts X at the deadline.

Monitors never see update contents, identifiers, or individual primes on
the happy path — only hashes and prime *products* — which is the privacy
property P1.  Only the accusation path (Fig. 3) reveals a serve's
content to the accused node's monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.accusations import CaseFile, FaultReason, Verdict, VerdictLog
from repro.core.context import PagContext
from repro.core.messages import (
    Accusation,
    AckCopy,
    AckRelay,
    AttestationRelay,
    AttestationRelayBatch,
    Confirm,
    DeclarationAck,
    InvestigateRequest,
    InvestigateResponse,
    MonitorBroadcast,
    MonitorProbe,
    Nack,
    ProbeAck,
    RelayPair,
    SelfCheck,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.core.verification import (
    BatchVerifier,
    combine_lifted,
    hash_entries,
    lift_attested,
)
from repro.sim.message import Message

__all__ = ["MonitorEngine", "MONITOR_COUNTER_KEYS"]

#: Rounds granted to resolve a dispute before conviction at the deadline
#: (accusation + probe + nack travel takes two rounds in the simulator).
_CASE_DEADLINE_ROUNDS = 2

#: The fixed accusation-path counter schema every engine carries, in
#: canonical order.  Parallel shard merges, JSON summaries and the
#: service layer's per-round counter deltas all iterate this tuple, so
#: adding a counter here is the single schema change.
MONITOR_COUNTER_KEYS: Tuple[str, ...] = (
    "declarations_processed",
    "declarations_rejected",
    "accusations_received",
    "accusation_claims",
    "probes_sent",
    "probe_acks_accepted",
    "confirms_sent",
    "nacks_sent",
    "cases_opened",
    "cases_resolved",
    "deadline_convictions",
)


@dataclass
class _ReceiverRecord:
    """Message 6/7 bookkeeping for one (monitored, predecessor, round)."""

    ack: Optional[SignedAck] = None
    attestation: Optional[object] = None
    cofactor: int = 1
    processed: bool = False
    #: the attestation arrived inside an AttestationRelayBatch, whose
    #: peer sharing is the forwarded batch itself — the pair folds into
    #: the round's BatchVerifier instead of materialising a lift.
    batched: bool = False


@dataclass
class _PendingProbe:
    """A probe sent after an accusation, awaiting the accused's ack."""

    accused: int
    accuser: int
    exchange_round: int
    entries: Tuple[ServeEntry, ...]
    key_prev: int
    key_prime_count: int
    answered: bool = False


class MonitorEngine:
    """Monitoring duties of one host node.

    Args:
        host_id: the node carrying out the duties.
        context: shared session context.
        send: callback delivering a message to the network.
        active: monitoring can be disabled (selfish monitors, or pure
            data-path bandwidth runs).
        first_round: the host's first participating round (join churn).
            A monitor that arrives mid-session missed the declarations
            of earlier rounds, so it must not judge exchanges whose
            obligation accumulates from rounds before it was present —
            its duties start with the first full declaration round it
            observed.
    """

    def __init__(
        self,
        host_id: int,
        context: PagContext,
        send: Callable[[Message], None],
        active: bool = True,
        lift_transform: Optional[Callable] = None,
        first_round: int = 0,
    ) -> None:
        self.host_id = host_id
        self.context = context
        self.send = send
        self.active = active
        self.first_round = first_round
        #: hook applied to lifted pairs before broadcasting (message 8);
        #: a lying monitor corrupts here (Behavior.transform_lifted).
        self.lift_transform = lift_transform
        self.verdicts = VerdictLog()
        config = context.config
        #: batched monitor verification (PagConfig.batch_verify): fold a
        #: round's message-8 lifts with one multi-exponentiation where
        #: the individual lifted values never reach the wire.  Lifts
        #: that *are* broadcast (peer monitors exist), transformed (a
        #: lying monitor's hook) or cross-checked against signed
        #: self-checks (section V-B compares them value by value) must
        #: be materialised per pair, so those paths are unchanged.
        #: batched *wire* pairs (AttestationRelayBatch) may fold without
        #: materialised lifts whenever no per-pair value must be
        #: produced for a transform hook or a section V-B cross-check;
        #: unlike ``_defer_lifts`` this is independent of batch_verify —
        #: the message itself is inherently batched.
        self._fold_batched = lift_transform is None and not getattr(
            config, "monitor_cross_checks", False
        )
        self._defer_lifts = (
            getattr(config, "batch_verify", True) and self._fold_batched
        )
        #: (monitored, round) -> deferred same-modulus lift folds.
        self._batch: Dict[Tuple[int, int], BatchVerifier] = {}
        #: (monitored, pred, round) pairs already folded from a wire
        #: batch — BatchVerifier adds are irreversible, so duplicate
        #: forwarded copies must be dropped here, not after the fold.
        self._batch_seen: set[Tuple[int, int, int]] = set()
        #: (monitored, pred, round) -> paired messages 6/7.
        self._receiver_records: Dict[
            Tuple[int, int, int], _ReceiverRecord
        ] = {}
        #: (monitored, round) -> pred -> (lifted_fwd, lifted_ack, source).
        self._lifted: Dict[
            Tuple[int, int], Dict[int, Tuple[int, int, int]]
        ] = {}
        #: section V-B cross-checks: (monitored, round) -> pred -> pair.
        self._self_checks: Dict[
            Tuple[int, int], Dict[int, Tuple[int, int]]
        ] = {}
        #: (server, round) -> successor -> relayed SignedAck.
        self._relays: Dict[Tuple[int, int], Dict[int, SignedAck]] = {}
        #: open disputes by case key.
        self._cases: Dict[Tuple[int, int, int], CaseFile] = {}
        #: accusation claims seen: (accuser, accused, round).
        self._accusation_claims: set[Tuple[int, int, int]] = set()
        #: probes awaiting ProbeAck, keyed by (accused, accuser, round).
        self._pending_probes: Dict[Tuple[int, int, int], _PendingProbe] = {}
        #: messages to emit at the start of the next round.
        self._outbox_next_round: List[Callable[[int], Message]] = []
        #: accusation-path and declaration-seam tallies, surfaced via
        #: ``PagSession.accusation_report`` and the run summaries.  Keys
        #: are fixed at construction (:data:`MONITOR_COUNTER_KEYS`) so
        #: parallel shard merges, JSON reports and the service layer's
        #: counter deltas see a stable schema.
        self.counters: Dict[str, int] = {
            key: 0 for key in MONITOR_COUNTER_KEYS
        }

    def set_behavior_hooks(
        self, active: bool, lift_transform: Optional[Callable]
    ) -> None:
        """Re-derive the behaviour-dependent wiring after a strategy
        swap (operator control).

        Mirrors the constructor's derivation exactly, so a node whose
        behaviour is flipped between rounds is indistinguishable from
        one built with the new behaviour — the property the service
        layer's static/dynamic differential test pins down.
        """
        config = self.context.config
        self.active = active
        self.lift_transform = lift_transform
        self._fold_batched = lift_transform is None and not getattr(
            config, "monitor_cross_checks", False
        )
        self._defer_lifts = (
            getattr(config, "batch_verify", True) and self._fold_batched
        )

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        """Emit deferred traffic (investigations, nacks) for this round."""
        if not self.active:
            return
        pending, self._outbox_next_round = self._outbox_next_round, []
        for build in pending:
            message = build(round_no)
            if message is not None:
                self.send(message)

    def end_round(self, round_no: int) -> None:
        """Finalise obligations and run the server-side checks."""
        if not self.active:
            return
        self._check_servers(round_no)
        self._close_unanswered_probes(round_no)
        self._resolve_deadlines(round_no)
        self._prune(round_no)

    # ------------------------------------------------------------------
    # Receiver-side monitoring (messages 6-9)
    # ------------------------------------------------------------------

    def on_ack_copy(self, message: AckCopy) -> None:
        if not self.active:
            return
        ack = message.ack
        if not self._ack_signature_valid(ack):
            self.counters["declarations_rejected"] += 1
            return  # a forged copy must not enter the relay chain
        record = self._record_for(message.sender, ack.server, ack.round_no)
        record.ack = ack
        self._maybe_process_pair(message.sender, ack.server, ack.round_no)

    def on_attestation_relay(self, message: AttestationRelay) -> None:
        if not self.active:
            return
        attestation = message.attestation
        if not self.context.signer.verify(
            attestation.server,
            attestation.payload_bytes_desc(),
            attestation.signature,
        ):
            self.counters["declarations_rejected"] += 1
            return  # forged attestation: ignore (cannot be lifted safely)
        if not self.context.signer.verify(
            message.sender,
            (
                f"attrelay|{attestation.round_no}|{attestation.server}|"
                f"{message.cofactor}"
            ).encode(),
            message.signature,
        ):
            # The declarer's outer signature covers the cofactor: a
            # tampered cofactor would lift the attested hash to a bogus
            # obligation and falsely convict the server downstream, so
            # the relay is discarded here and the declarer's missing
            # DeclarationAck rotates it to its next monitor.
            self.counters["declarations_rejected"] += 1
            return
        key = (message.sender, attestation.server, attestation.round_no)
        record = self._record_for(*key)
        record.attestation = attestation
        record.cofactor = message.cofactor
        self._maybe_process_pair(*key)

    def on_attestation_relay_batch(
        self, message: AttestationRelayBatch
    ) -> None:
        """Batched message 7: raw (hash, cofactor) pairs, one signature.

        Direct from the declarer, every valid pair enters the normal
        receiver record (paired with its AckCopy, acknowledged with a
        DeclarationAck, its ack relayed as message 9) — but the lift is
        never materialised: the same signed batch is forwarded to the
        peer monitors in place of per-pair MonitorBroadcasts, and every
        monitor folds the raw pairs through its round
        :class:`BatchVerifier` (one multi-exponentiation per obligation
        instead of one wide ``pow`` per pair, now also when fm > 1).
        """
        if not self.active:
            return
        declarer = message.declarer
        if not self.context.signer.verify(
            declarer, message.payload_desc(), message.signature
        ):
            # One outer signature covers every cofactor in the list; a
            # tampered batch is discarded whole, and the declarer's
            # missing DeclarationAcks rotate the pairs to its next
            # monitors as individual relays.
            self.counters["declarations_rejected"] += 1
            return
        forwarded = message.sender != declarer
        if not forwarded and self._fold_batched:
            # Peer sharing for the whole batch: forward the declarer's
            # own signed artifact (peers re-verify the declarer's
            # signature; this monitor cannot corrupt it).
            for peer in self.context.monitors_of(declarer):
                if peer == self.host_id:
                    continue
                self.send(
                    AttestationRelayBatch(
                        sender=self.host_id,
                        recipient=peer,
                        round_no=message.round_no,
                        declarer=declarer,
                        pairs=message.pairs,
                        signature=message.signature,
                    )
                )
        for pair in message.pairs:
            att = pair.attestation
            if not self.context.signer.verify(
                att.server, att.payload_bytes_desc(), att.signature
            ):
                self.counters["declarations_rejected"] += 1
                continue
            if forwarded:
                self._on_forwarded_pair(declarer, pair, message.sender)
                continue
            key = (declarer, att.server, att.round_no)
            record = self._record_for(*key)
            record.attestation = att
            record.cofactor = pair.cofactor
            record.batched = self._fold_batched
            self._maybe_process_pair(*key)

    def _on_forwarded_pair(
        self, monitored: int, pair: RelayPair, source: int
    ) -> None:
        """A peer-forwarded batch pair: fold it, or fall back to a
        materialised lift when a transform/cross-check needs per-pair
        values (mirroring :meth:`on_monitor_broadcast`)."""
        att = pair.attestation
        if self._fold_batched:
            self._fold_wire_pair(monitored, att, pair.cofactor)
            return
        hasher = self.context.hasher
        self._accumulate(
            monitored,
            att.round_no,
            att.server,
            lift_attested(hasher, att.hash_forward, pair.cofactor),
            lift_attested(hasher, att.hash_ack_only, pair.cofactor),
            source=source,
        )

    def _fold_wire_pair(
        self, monitored: int, att: SignedAttestation, cofactor: int
    ) -> None:
        """Fold one wire-carried raw pair into the round's verifier.

        The ack-only lift is tallied but folded out: monitors
        acknowledge the expiring/duplicate list without adding it to
        the forwarding obligation (section V-D).
        """
        key = (monitored, att.server, att.round_no)
        if key in self._batch_seen:
            return
        self._batch_seen.add(key)
        verifier = self._batch.setdefault(
            (monitored, att.round_no), BatchVerifier(self.context.hasher)
        )
        verifier.add(att.hash_forward, cofactor)
        verifier.add(att.hash_ack_only, cofactor, include=False)

    def _record_for(
        self, monitored: int, predecessor: int, round_no: int
    ) -> _ReceiverRecord:
        key = (monitored, predecessor, round_no)
        return self._receiver_records.setdefault(key, _ReceiverRecord())

    def _maybe_process_pair(
        self, monitored: int, predecessor: int, round_no: int
    ) -> None:
        """Once both messages 6 and 7 arrived: lift, broadcast, relay."""
        record = self._record_for(monitored, predecessor, round_no)
        if (
            record.processed
            or record.ack is None
            or record.attestation is None
        ):
            return
        record.processed = True
        self.counters["declarations_processed"] += 1
        # Confirm receipt so the declarer knows this monitor is alive
        # (otherwise it re-sends the pair to its next monitor).
        self.send(
            DeclarationAck(
                sender=self.host_id,
                recipient=monitored,
                round_no=round_no,
                server=predecessor,
                exchange_round=round_no,
                signature=self._sign(
                    f"declack|{monitored}|{predecessor}|{round_no}"
                ),
            )
        )
        att = record.attestation
        hasher = self.context.hasher
        if record.batched:
            # The pair arrived in an AttestationRelayBatch: the signed
            # batch itself was forwarded to the peer monitors, so no
            # per-pair lift is ever materialised — fold the raw pair
            # (even when fm > 1) and relay the ack as usual.
            self._fold_wire_pair(monitored, att, record.cofactor)
            self._relay_ack(predecessor, record.ack, round_no)
            return
        if self._defer_lifts and not any(
            peer != self.host_id
            for peer in self.context.monitors_of(monitored)
        ):
            # Sole monitor of X: the lifted pair would never leave this
            # engine, so instead of one wide ``pow`` per pair the raw
            # (hash, cofactor) pairs accumulate into the round's batch
            # and fold in a single multi-exponentiation pass on demand.
            # The ack-only lift is tallied but folded out: monitors
            # acknowledge the expiring/duplicate list without adding it
            # to the forwarding obligation (section V-D).
            verifier = self._batch.setdefault(
                (monitored, round_no), BatchVerifier(hasher)
            )
            verifier.add(att.hash_forward, record.cofactor)
            verifier.add(att.hash_ack_only, record.cofactor, include=False)
            self._relay_ack(predecessor, record.ack, round_no)
            return
        lifted_forward = lift_attested(
            hasher, att.hash_forward, record.cofactor
        )
        lifted_ack_only = lift_attested(
            hasher, att.hash_ack_only, record.cofactor
        )
        if self.lift_transform is not None:
            lifted_forward, lifted_ack_only = self.lift_transform(
                monitored, predecessor, round_no,
                (lifted_forward, lifted_ack_only),
            )
        self._accumulate(
            monitored, round_no, predecessor, lifted_forward,
            lifted_ack_only, source=self.host_id,
        )
        # Message 8: share the lifted pair with the other monitors of X.
        for peer in self.context.monitors_of(monitored):
            if peer == self.host_id:
                continue
            self.send(
                MonitorBroadcast(
                    sender=self.host_id,
                    recipient=peer,
                    round_no=round_no,
                    monitored=monitored,
                    predecessor=predecessor,
                    lifted_forward=lifted_forward,
                    lifted_ack_only=lifted_ack_only,
                    ack=record.ack,
                    signature=self._sign(
                        f"mb|{monitored}|{predecessor}|{round_no}|"
                        f"{lifted_forward}|{lifted_ack_only}"
                    ),
                )
            )
        # Message 9: relay X's ack to the serving node's monitors.
        self._relay_ack(predecessor, record.ack, round_no)

    def _relay_ack(self, server: int, ack: SignedAck, round_no: int) -> None:
        if not self.context.is_monitored(server):
            return  # the source is correct by assumption: nobody checks it
        for monitor in self.context.monitors_of(server):
            if monitor == self.host_id:
                self._store_relay(server, ack)
                continue
            self.send(
                AckRelay(
                    sender=self.host_id,
                    recipient=monitor,
                    round_no=round_no,
                    server=server,
                    ack=ack,
                    signature=self._sign(
                        f"relay|{server}|{ack.receiver}|{ack.round_no}|"
                        f"{ack.hash_total}"
                    ),
                )
            )

    def on_monitor_broadcast(self, message: MonitorBroadcast) -> None:
        if not self.active:
            return
        self._accumulate(
            message.monitored,
            message.ack.round_no,
            message.predecessor,
            message.lifted_forward,
            message.lifted_ack_only,
            source=message.sender,
        )

    def on_self_check(self, message: SelfCheck) -> None:
        """Section V-B cross-check: the monitored node's own lifted pair."""
        if not self.active:
            return
        if not self.context.signer.verify(
            message.sender, message.payload_desc(), message.signature
        ):
            return
        per_pred = self._self_checks.setdefault(
            (message.sender, message.round_no), {}
        )
        per_pred.setdefault(
            message.predecessor,
            (message.lifted_forward, message.lifted_ack_only),
        )

    def on_ack_relay(self, message: AckRelay) -> None:
        if not self.active:
            return
        if not self._ack_signature_valid(message.ack):
            return  # forged relay: an attacker framing the server
        self._store_relay(message.server, message.ack)

    def _ack_signature_valid(self, ack: SignedAck) -> bool:
        return self.context.signer.verify(
            ack.receiver, ack.payload_bytes_desc(), ack.signature
        )

    def _store_relay(self, server: int, ack: SignedAck) -> None:
        per_round = self._relays.setdefault((server, ack.round_no), {})
        per_round[ack.receiver] = ack
        # A late relay can still exonerate an open case.
        case = self._cases.get((server, ack.receiver, ack.round_no))
        if case is not None and not case.resolved:
            self._judge_relay(case, ack)

    def _accumulate(
        self,
        monitored: int,
        round_no: int,
        predecessor: int,
        lifted_forward: int,
        lifted_ack_only: int,
        source: int,
    ) -> None:
        per_pred = self._lifted.setdefault((monitored, round_no), {})
        per_pred.setdefault(
            predecessor, (lifted_forward, lifted_ack_only, source)
        )

    def obligation(self, monitored: int, round_no: int) -> int:
        """``H(forward product of round_no)_(K(round_no, monitored))``.

        The multiplicative combination of section V-C; 1 when the node
        received nothing that round.  Lifts that were materialised (for
        broadcast, or received from peers) multiply directly; deferred
        pairs fold through the round's :class:`BatchVerifier` in one
        multi-exponentiation pass — the same product, bit for bit.
        """
        per_pred = self._lifted.get((monitored, round_no), {})
        combined = combine_lifted(
            self.context.hasher,
            (forward for forward, _ack_only, _src in per_pred.values()),
        )
        verifier = self._batch.get((monitored, round_no))
        if verifier is None:
            return combined
        return combined * verifier.fold() % self.context.hasher.modulus

    def obligation_from_self_checks(
        self, monitored: int, round_no: int
    ) -> Optional[int]:
        """Obligation recomputed from the node's own signed self-checks
        (None when cross-checks are off or incomplete)."""
        per_pred = self._self_checks.get((monitored, round_no))
        if not per_pred:
            return None
        lifted = self._lifted.get((monitored, round_no), {})
        if not set(per_pred) >= set(lifted):
            # The node's checks omit a declared receipt: a partial
            # forwarder shrinking its own evidence cannot arbitrate.
            # The superset direction is allowed — a predecessor's
            # declaration can be legitimately missing (the declarer
            # crashed or left before redeclaring), and claiming a
            # phantom receipt never pays: the successors' acks only
            # match if the node really forwarded that content.
            return None
        return combine_lifted(
            self.context.hasher,
            (forward for forward, _ack_only in per_pred.values()),
        )

    # ------------------------------------------------------------------
    # Server-side checks
    # ------------------------------------------------------------------

    def _check_servers(self, round_no: int) -> None:
        """End of round R: every monitored server must have valid acks."""
        if self.first_round > 0 and round_no - 1 < self.first_round:
            # Join churn: the obligation for round R accumulates from
            # round R-1 declarations; a monitor that joined after that
            # round never saw them and cannot judge these exchanges.
            # Session-start monitors (first_round 0) are untouched —
            # their round-0 checks run exactly as before.
            return
        for server in self.context.views.monitored_by(self.host_id):
            if not self.context.is_monitored(server):
                continue
            expected = self.obligation(server, round_no - 1)
            relays = self._relays.get((server, round_no), {})
            for successor in self.context.views.successors(server, round_no):
                ack = relays.get(successor)
                if ack is not None:
                    self._judge_ack(server, successor, round_no, ack, expected)
                else:
                    self._open_case(server, successor, round_no)

    def _judge_ack(
        self,
        server: int,
        successor: int,
        round_no: int,
        ack: SignedAck,
        expected: int,
    ) -> None:
        if not self.context.signer.verify(
            ack.receiver, ack.payload_bytes_desc(), ack.signature
        ):
            self._open_case(server, successor, round_no)
            return
        if ack.hash_total != expected:
            # Section V-B cross-check arbitration: if the node's own
            # signed self-checks produce exactly the acknowledged hash,
            # the mismatch is a lying designated monitor, not the server.
            self_expected = self.obligation_from_self_checks(
                server, round_no - 1
            )
            if self_expected is not None and ack.hash_total == self_expected:
                self._convict_lying_monitors(server, round_no - 1)
                return
            self.verdicts.record(
                Verdict(
                    node=server,
                    reason=FaultReason.WRONG_FORWARD_SET,
                    exchange_round=round_no,
                    detected_by=self.host_id,
                    evidence=(
                        f"successor {successor} acknowledged "
                        f"{ack.hash_total:#x} but the accumulated obligation "
                        f"is {expected:#x}"
                    ),
                )
            )

    def _convict_lying_monitors(self, monitored: int, round_no: int) -> None:
        """Per-predecessor comparison: every broadcast value that differs
        from the node's signed self-check convicts its source monitor."""
        lifted = self._lifted.get((monitored, round_no), {})
        checks = self._self_checks.get((monitored, round_no), {})
        for pred, (fwd, _ao, source) in lifted.items():
            check = checks.get(pred)
            if check is None or check[0] == fwd:
                continue
            if source == self.host_id:
                continue  # we computed this ourselves; not our lie to judge
            self.verdicts.record(
                Verdict(
                    node=source,
                    reason=FaultReason.MONITOR_MISBEHAVIOR,
                    exchange_round=round_no,
                    detected_by=self.host_id,
                    evidence=(
                        f"broadcast lifted hash for predecessor {pred} of "
                        f"node {monitored} disagrees with the node's signed "
                        "self-check; successors' acks side with the node"
                    ),
                )
            )

    def _judge_relay(self, case: CaseFile, ack: SignedAck) -> None:
        """A relay/confirm arrived for an open case: settle it."""
        expected = self.obligation(case.server, case.exchange_round - 1)
        case.resolved = True
        self.counters["cases_resolved"] += 1
        if ack.hash_total != expected:
            self.verdicts.record(
                Verdict(
                    node=case.server,
                    reason=FaultReason.WRONG_FORWARD_SET,
                    exchange_round=case.exchange_round,
                    detected_by=self.host_id,
                    evidence=(
                        f"late ack from {case.successor} mismatches "
                        "obligation"
                    ),
                )
            )

    def _open_case(self, server: int, successor: int, round_no: int) -> None:
        key = (server, successor, round_no)
        if key in self._cases:
            return
        self.counters["cases_opened"] += 1
        case = CaseFile(
            server=server,
            successor=successor,
            exchange_round=round_no,
            deadline_round=round_no + _CASE_DEADLINE_ROUNDS,
        )
        if (server, successor, round_no) in self._accusation_claims:
            case.server_claims_accusation = True
        self._cases[key] = case
        # Ask the server to exhibit the missing acknowledgement.
        case.investigated = True
        self._outbox_next_round.append(
            lambda rnd, s=server, d=successor, r=round_no: InvestigateRequest(
                sender=self.host_id,
                recipient=s,
                round_no=rnd,
                successor=d,
                exchange_round=r,
                signature=self._sign(f"inv|{s}|{d}|{r}"),
            )
        )

    # ------------------------------------------------------------------
    # Accusation path (Fig. 3)
    # ------------------------------------------------------------------

    def on_accusation(self, message: Accusation) -> None:
        if not self.active:
            return
        accuser = message.sender
        accused = message.accused
        claim = (accuser, accused, message.exchange_round)
        if self.host_id in self.context.monitors_of(accuser):
            # CC copy: the accuser proves it tried; note the claim so an
            # open case does not convict it at the deadline.
            self.counters["accusation_claims"] += 1
            self._accusation_claims.add(claim)
            case = self._cases.get(claim)
            if case is not None:
                case.server_claims_accusation = True
        if self.host_id in self.context.monitors_of(accused):
            # Forward the serve to the accused and demand an ack.
            self.counters["accusations_received"] += 1
            self.counters["probes_sent"] += 1
            self._pending_probes[claim] = _PendingProbe(
                accused=accused,
                accuser=accuser,
                exchange_round=message.exchange_round,
                entries=message.entries,
                key_prev=message.key_prev,
                key_prime_count=message.key_prime_count,
            )
            self.send(
                MonitorProbe(
                    sender=self.host_id,
                    recipient=accused,
                    round_no=message.round_no,
                    accuser=accuser,
                    exchange_round=message.exchange_round,
                    entries=message.entries,
                    key_prev=message.key_prev,
                    key_prime_count=message.key_prime_count,
                    signature=self._sign(
                        f"probe|{accused}|{accuser}|{message.exchange_round}"
                    ),
                )
            )

    def on_probe_ack(self, message: ProbeAck) -> None:
        if not self.active:
            return
        ack = message.ack
        # Pending probes are keyed (accuser, accused, exchange round);
        # the probe ack's server is the accuser, its receiver the accused.
        key = (ack.server, ack.receiver, ack.round_no)
        probe = self._pending_probes.get(key)
        if probe is None or probe.answered:
            return
        expected = hash_entries(
            self.context.hasher, probe.entries, probe.key_prev
        )
        if ack.hash_total != expected or not self.context.signer.verify(
            ack.receiver, ack.payload_bytes_desc(), ack.signature
        ):
            return  # a bogus probe answer counts as no answer
        probe.answered = True
        self.counters["probe_acks_accepted"] += 1
        # Confirm to the accuser's monitors (and the accuser's own check).
        for monitor in self.context.monitors_of(probe.accuser):
            if monitor == self.host_id:
                self._store_relay(probe.accuser, ack)
                continue
            self.counters["confirms_sent"] += 1
            self.send(
                Confirm(
                    sender=self.host_id,
                    recipient=monitor,
                    round_no=message.round_no,
                    ack=ack,
                    signature=self._sign(
                        f"confirm|{ack.receiver}|{ack.server}|{ack.round_no}"
                    ),
                )
            )

    def on_confirm(self, message: Confirm) -> None:
        if not self.active:
            return
        if not self._ack_signature_valid(message.ack):
            return
        self._store_relay(message.ack.server, message.ack)

    def on_nack(self, message: Nack) -> None:
        if not self.active:
            return
        # A Nack from one prober does not override a valid ack that
        # reached us through another path (a Confirm from a different
        # monitor, or a regular relay): only convict if the exchange
        # remains unacknowledged.  This keeps lossy networks from
        # producing false convictions.
        acked = (
            self._relays.get(
                (message.accuser, message.exchange_round), {}
            ).get(message.accused)
            is not None
        )
        if not acked:
            self.verdicts.record(
                Verdict(
                    node=message.accused,
                    reason=FaultReason.REFUSED_RECEPTION,
                    exchange_round=message.exchange_round,
                    detected_by=self.host_id,
                    evidence=(
                        f"monitor {message.sender} probed "
                        f"{message.accused} after an accusation by "
                        f"{message.accuser}; no ack"
                    ),
                )
            )
        case = self._cases.get(
            (message.accuser, message.accused, message.exchange_round)
        )
        if case is not None and not case.resolved:
            case.resolved = True
            self.counters["cases_resolved"] += 1

    def _close_unanswered_probes(self, round_no: int) -> None:
        for key, probe in list(self._pending_probes.items()):
            if probe.answered:
                del self._pending_probes[key]
                continue
            if probe.exchange_round >= round_no:
                continue  # the probe round is still in flight
            del self._pending_probes[key]
            for monitor in self.context.monitors_of(probe.accuser):
                self._outbox_next_round.append(
                    lambda rnd, t=monitor, p=probe: self._build_nack(t, p, rnd)
                )

    def _build_nack(
        self, target: int, probe: _PendingProbe, round_no: int
    ) -> Optional[Nack]:
        """Build a Nack for one of the accuser's monitors.

        The prober may itself monitor the accuser, in which case the
        nack is recorded locally instead of travelling the network.
        """
        self.counters["nacks_sent"] += 1
        nack = Nack(
            sender=self.host_id,
            recipient=target,
            round_no=round_no,
            accused=probe.accused,
            accuser=probe.accuser,
            exchange_round=probe.exchange_round,
            signature=self._sign(
                f"nack|{probe.accused}|{probe.accuser}|{probe.exchange_round}"
            ),
        )
        if target == self.host_id:
            self.on_nack(nack)
            return None
        return nack

    # ------------------------------------------------------------------
    # Investigations
    # ------------------------------------------------------------------

    def on_investigate_response(self, message: InvestigateResponse) -> None:
        if not self.active:
            return
        key = (message.sender, message.successor, message.exchange_round)
        case = self._cases.get(key)
        if case is None or case.resolved:
            return
        if message.ack is not None:
            ack = message.ack
            valid = (
                ack.receiver == message.successor
                and ack.round_no == message.exchange_round
                and self.context.signer.verify(
                    ack.receiver, ack.payload_bytes_desc(), ack.signature
                )
            )
            if valid:
                # The successor acknowledged to its server, yet the ack
                # never reached us through the monitor chain.  Either
                # the successor omitted messages 6/7 (selfish), or its
                # designated monitor failed and the re-sent declaration
                # is still in flight — so don't convict yet: mark the
                # exhibit and let the deadline decide (a late relay
                # exonerates the successor).
                case.exhibited = True
                self._judge_ack_after_exhibit(case, ack)
                return
        if message.accused_instead:
            case.server_claims_accusation = True

    def _judge_ack_after_exhibit(self, case: CaseFile, ack: SignedAck) -> None:
        expected = self.obligation(case.server, case.exchange_round - 1)
        if ack.hash_total != expected:
            self.verdicts.record(
                Verdict(
                    node=case.server,
                    reason=FaultReason.WRONG_FORWARD_SET,
                    exchange_round=case.exchange_round,
                    detected_by=self.host_id,
                    evidence="exhibited ack mismatches obligation",
                )
            )

    def _resolve_deadlines(self, round_no: int) -> None:
        for case in self._cases.values():
            if case.resolved or round_no < case.deadline_round:
                continue
            case.resolved = True
            self.counters["cases_resolved"] += 1
            self.counters["deadline_convictions"] += 1
            if case.exhibited:
                # The server proved the successor acknowledged; by the
                # deadline no declaration reached the monitor chain:
                # the successor hid the reception (messages 6/7).
                self.verdicts.record(
                    Verdict(
                        node=case.successor,
                        reason=FaultReason.OMITTED_DECLARATION,
                        exchange_round=case.exchange_round,
                        detected_by=self.host_id,
                        evidence=(
                            f"server {case.server} exhibited the signed "
                            "ack; no declaration arrived by the deadline"
                        ),
                    )
                )
                continue
            if case.server_claims_accusation:
                # The server claims it accused, yet neither Confirm nor
                # Nack arrived: the claim is unbacked.
                reason = FaultReason.OMISSION_TO_SERVE
                evidence = (
                    f"claimed accusation of {case.successor} produced "
                    "neither Confirm nor Nack"
                )
            elif case.investigated:
                reason = FaultReason.OMISSION_TO_SERVE
                evidence = (
                    f"no ack from successor {case.successor}, no exhibit, "
                    "no accusation"
                )
            else:
                reason = FaultReason.UNRESPONSIVE_INVESTIGATION
                evidence = "no response to investigation"
            self.verdicts.record(
                Verdict(
                    node=case.server,
                    reason=reason,
                    exchange_round=case.exchange_round,
                    detected_by=self.host_id,
                    evidence=evidence,
                )
            )

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------

    def _sign(self, description: str) -> int:
        return self.context.signer.sign(self.host_id, description.encode())

    def _prune(self, round_no: int) -> None:
        horizon = round_no - _CASE_DEADLINE_ROUNDS - 2
        for store in (self._receiver_records,):
            for key in [k for k in store if k[2] < horizon]:
                del store[key]
        for key in [k for k in self._lifted if k[1] < horizon]:
            del self._lifted[key]
        for key in [k for k in self._batch if k[1] < horizon]:
            del self._batch[key]
        self._batch_seen = {
            k for k in self._batch_seen if k[2] >= horizon
        }
        for key in [k for k in self._self_checks if k[1] < horizon]:
            del self._self_checks[key]
        for key in [k for k in self._relays if k[1] < horizon]:
            del self._relays[key]
        for key in [
            k for k, c in self._cases.items() if c.resolved
            and c.exchange_round < horizon
        ]:
            del self._cases[key]
