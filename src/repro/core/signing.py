"""Signing abstraction used inside PAG simulations.

The protocol's accountability rests on every Ack and Attestation being
signed: they are the exhibits in disputes ("nodes register the messages
they send or receive, and can use them to prove their correctness or
that another node deviated", section VI-B).

Two interchangeable implementations:

* :class:`RsaSigner` — real RSA signatures via :mod:`repro.crypto.rsa`;
  used in tests/examples that exercise the genuine cryptography.
* :class:`TokenSigner` — a deterministic stand-in (SHA-256 of signer and
  payload) for large simulations; unforgeable within the simulation
  because honest verification recomputes the token, and the simulated
  adversary model (selfish nodes, section III) cannot forge signatures
  by assumption.  Signature *bytes on the wire* are always priced at the
  real RSA-2048 size.

Both count operations so Table I can be reproduced either way.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Protocol

from repro.crypto.keystore import CryptoCounters, KeyStore

__all__ = ["Signer", "RsaSigner", "TokenSigner"]


class Signer(Protocol):
    """Signs and verifies opaque payload descriptions for node ids."""

    counters: CryptoCounters

    def sign(self, signer_id: int, payload: bytes) -> int:
        """Produce a signature integer for ``payload`` by ``signer_id``."""
        ...

    def verify(self, signer_id: int, payload: bytes, signature: int) -> bool:
        """Check a signature produced by :meth:`sign`."""
        ...


@dataclass
class RsaSigner:
    """Real RSA signatures backed by a :class:`KeyStore`."""

    keystore: KeyStore
    counters: CryptoCounters = field(default_factory=CryptoCounters)

    def sign(self, signer_id: int, payload: bytes) -> int:
        self.counters.signatures += 1
        return self.keystore.register(signer_id).private.sign(payload)

    def verify(self, signer_id: int, payload: bytes, signature: int) -> bool:
        self.counters.verifications += 1
        return self.keystore.public_key(signer_id).verify(payload, signature)


@dataclass
class TokenSigner:
    """Deterministic signature tokens for fast large-scale simulation."""

    counters: CryptoCounters = field(default_factory=CryptoCounters)

    @staticmethod
    def _token(signer_id: int, payload: bytes) -> int:
        material = signer_id.to_bytes(8, "big") + payload
        return int.from_bytes(
            hashlib.sha256(b"token-sig:" + material).digest(), "big"
        )

    def sign(self, signer_id: int, payload: bytes) -> int:
        self.counters.signatures += 1
        return self._token(signer_id, payload)

    def verify(self, signer_id: int, payload: bytes, signature: int) -> bool:
        self.counters.verifications += 1
        return signature == self._token(signer_id, payload)
