"""Session builder: assemble a full PAG deployment in one call.

This is the main entry point of the library: it wires membership,
views, crypto, the source, consumer nodes (optionally with selfish
behaviours) and the simulator together, and exposes the measurements the
paper reports (per-node bandwidth, crypto operation counts, verdicts,
playback quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
)

from repro.core.accusations import Verdict
from repro.core.behavior import Behavior
from repro.core.config import PagConfig
from repro.core.context import PagContext
from repro.core.node import PagNode, PagSourceNode
from repro.core.signing import Signer
from repro.gossip.source import StreamSchedule
from repro.membership.directory import Directory
from repro.sim.engine import Simulator
from repro.sim.execution import ExecutionPolicy
from repro.sim.network import Network
from repro.streaming.player import PlaybackReport, evaluate_playback

if TYPE_CHECKING:
    from repro.crypto.backend import SharedLadderTable

__all__ = ["PagSession"]

#: Ceiling on the bases precomputed into a shared ladder table (memory
#: guard for very long runs; ~1 KB per base at the simulation modulus).
_SHARED_LADDER_MAX_BASES = 8192


@dataclass
class PagSession:
    """A ready-to-run PAG deployment.

    Build with :meth:`create`, drive with :meth:`run`, read results with
    the reporting helpers.

    Attributes:
        context: shared protocol context.
        simulator: the round engine (exposes the bandwidth meter).
        source: the stream source node.
        nodes: consumer nodes by id.
    """

    context: PagContext
    simulator: Simulator
    source: PagSourceNode
    nodes: Dict[int, PagNode]
    #: nodes announced by the membership service but not yet arrived
    #: (join churn); :meth:`admit_node` moves them into the engine.
    pending: Dict[int, PagNode] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        n_nodes: int,
        config: Optional[PagConfig] = None,
        behaviors: Optional[Mapping[int, Behavior]] = None,
        signer: Optional[Signer] = None,
        execution_policy: Optional[ExecutionPolicy] = None,
        arrivals: Optional[Mapping[int, int]] = None,
    ) -> "PagSession":
        """Build a session of ``n_nodes`` (one of which is the source).

        Args:
            n_nodes: total membership size, ids ``0..n-1`` with node 0 as
                the source.
            config: protocol parameters; defaults to the paper's settings
                with the size-appropriate fanout.
            behaviors: per-node behaviour overrides (selfish strategies);
                nodes not listed are correct.
            signer: signature scheme override (real RSA for small runs).
            execution_policy: drain-batch delivery strategy (serial FIFO
                when omitted; see :mod:`repro.sim.execution`).
            arrivals: node id -> first participating round, for nodes
                that join mid-session.  They are announced in the
                directory from the start (so their stable monitor set is
                assigned immediately), excluded from successor draws
                before their round, and enter the engine only when
                :meth:`admit_node` is called — which
                :meth:`ScenarioSpec.build <repro.scenarios.spec.ScenarioSpec.build>`
                wires as a round hook.
        """
        if config is None:
            config = PagConfig.for_system_size(n_nodes)
        arrivals = dict(arrivals or {})
        directory = Directory.of_size(n_nodes, source_id=0)
        for node_id, first_round in arrivals.items():
            if node_id not in directory or node_id == 0:
                raise ValueError(
                    f"arrival names node {node_id}, not a consumer id"
                )
            if first_round < 1:
                raise ValueError(
                    "an arrival round below 1 is just initial membership"
                )
        context = PagContext.build(
            config, directory, signer=signer, active_from=arrivals
        )
        network = Network()
        simulator = Simulator(
            network=network, round_seconds=config.round_seconds
        )
        if execution_policy is not None:
            simulator.policy = execution_policy
        schedule = StreamSchedule(
            rate_kbps=config.stream_rate_kbps,
            update_bytes=config.update_bytes,
            playout_delay_rounds=config.playout_delay_rounds,
            round_seconds=config.round_seconds,
            rate_schedule=config.rate_schedule,
        )
        source = PagSourceNode(0, network, context, schedule)
        simulator.add_node(source)
        behaviors = dict(behaviors or {})
        nodes: Dict[int, PagNode] = {}
        pending: Dict[int, PagNode] = {}
        for node_id in directory.consumers():
            node = PagNode(
                node_id,
                network,
                context,
                behavior=behaviors.get(node_id),
            )
            if node_id in arrivals:
                # Built now — replica workers rebuild byte-identical
                # state from the spec — but kept out of the engine until
                # the arrival round.
                pending[node_id] = node
            else:
                nodes[node_id] = node
                simulator.add_node(node)
        return cls(
            context=context,
            simulator=simulator,
            source=source,
            nodes=nodes,
            pending=pending,
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, rounds: int) -> None:
        self.simulator.run(rounds)

    def shared_ladder_table(
        self, rounds: int
    ) -> "SharedLadderTable | None":
        """Precomputed fixed-base ladders for the run's update contents.

        The stream schedule is deterministic, so the update-content
        bases a ``rounds``-long run will hash — the dominant
        session-lifetime bases of the fixed-base cache — are known
        before the first round.  This builds their ladder levels once
        (read-only, plain int tuples) so worker replicas of a parallel
        run adopt them instead of each rebuilding identical tables; see
        :meth:`HomomorphicHasher.adopt_shared_ladders
        <repro.crypto.homomorphic.HomomorphicHasher.adopt_shared_ladders>`.

        Returns None when the active backend does not use the ladder
        fast path (gmpy2 beats it outright), so callers can skip the
        build entirely.
        """
        from repro.crypto.backend import SharedLadderTable
        from repro.gossip.updates import content_integer

        hasher = self.context.hasher
        if not getattr(hasher, "_use_fixed_base", False):
            return None
        config = self.context.config
        # Replay the release schedule to count the uids exactly (the
        # fractional-rate carry makes a closed form fragile).
        schedule = StreamSchedule(
            rate_kbps=config.stream_rate_kbps,
            update_bytes=config.update_bytes,
            playout_delay_rounds=config.playout_delay_rounds,
            round_seconds=config.round_seconds,
            rate_schedule=config.rate_schedule,
        )
        for round_no in range(max(0, rounds)):
            schedule.release(round_no)
        total = min(schedule.total_released(), _SHARED_LADDER_MAX_BASES)
        bases = [content_integer(uid, 0) for uid in range(total)]
        return SharedLadderTable.build(
            bases,
            hasher.modulus,
            window=4,
            capacity_bits=config.sim_prime_bits,
        )

    def admit_node(self, node_id: int) -> None:
        """Join churn: a pre-announced node arrives between rounds.

        The node was built at session creation (so execution-policy
        replicas hold byte-identical copies) and held in
        :attr:`pending`; admission moves it into the engine, whose
        policy mirrors the add onto the owning worker replica.  From the
        next round on the successor draws include it (see
        :class:`~repro.membership.views.ViewProvider.active_from`) and
        its stable monitor set — assigned at announcement time — starts
        receiving declarations: monitoring needs no special case for
        late arrivals.
        """
        node = self.pending.pop(node_id, None)
        if node is None:
            raise ValueError(
                f"cannot admit node id {node_id}; pending arrivals are "
                f"{sorted(self.pending)}"
            )
        self.nodes[node_id] = node
        self.simulator.add_node(node)

    def remove_node(self, node_id: int) -> None:
        """Churn: the node leaves (crashes) between rounds.

        The membership views still name it as successor/monitor — as in
        a deployment where the membership service lags — so the
        remaining nodes exercise the omission paths: servers accuse it,
        probes go unanswered, and it is convicted as unresponsive
        (accountability without failure detectors cannot distinguish a
        crash from a refusal).
        """
        if node_id == self.source.node_id:
            raise ValueError("the source is assumed correct and present")
        if node_id not in self.nodes:
            raise ValueError(f"cannot remove unknown node id {node_id}")
        del self.nodes[node_id]
        self.simulator.remove_node(node_id)

    def set_behavior(self, node_id: int, behavior: Behavior) -> None:
        """Operator control: swap a consumer's behaviour between rounds.

        Replicates the behaviour-dependent monitor wiring of
        :class:`~repro.core.node.PagNode` construction (active flag,
        lift-transform hook and the derived batching flags), so a flip
        applied before the node's first round is bit-identical to
        building the session with the new strategy in
        ``node_strategies`` — the service layer's differential test
        relies on exactly this equivalence.
        """
        node = self.nodes.get(node_id) or self.pending.get(node_id)
        if node is None:
            raise ValueError(
                f"cannot set behavior of unknown node id {node_id}"
            )
        node.behavior = behavior
        node.monitor.set_behavior_hooks(
            active=(
                self.context.config.detection_enabled
                and behavior.performs_monitoring()
            ),
            lift_transform=(
                behavior.transform_lifted
                if behavior.transforms_lifted()
                else None
            ),
        )

    def attach_verdict_sink(
        self, sink: Optional[Callable[[Verdict], None]]
    ) -> None:
        """Tap every consumer monitor's verdict log (service layer).

        The sink fires once per *new* verdict, at the moment the
        monitor records it; pass ``None`` to detach.  Pending arrivals
        are tapped too, so a node admitted mid-run streams its verdicts
        without re-wiring.
        """
        for node in self.nodes.values():
            node.monitor.verdicts.sink = sink
        for node in self.pending.values():
            node.monitor.verdicts.sink = sink

    @property
    def current_round(self) -> int:
        return self.simulator.current_round

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def bandwidth_kbps(
        self,
        warmup_rounds: int = 0,
        include_source: bool = False,
        direction: str = "both",
    ) -> Dict[int, float]:
        """Per-node average bandwidth in Kbps after a warmup window.

        Pass ``direction="down"`` for the unidirectional consumption the
        paper's figures report.
        """
        node_ids = sorted(self.nodes)
        if include_source:
            node_ids = [self.source.node_id] + node_ids
        return self.simulator.network.meter.all_node_kbps(
            node_ids,
            round_seconds=self.context.config.round_seconds,
            first_round=warmup_rounds,
            direction=direction,
        )

    def mean_bandwidth_kbps(
        self, warmup_rounds: int = 0, direction: str = "both"
    ) -> float:
        values = self.bandwidth_kbps(warmup_rounds, direction=direction)
        return sum(values.values()) / len(values) if values else 0.0

    def all_verdicts(
        self, exclude_detectors: Optional[Set[int]] = None
    ) -> List[Verdict]:
        """Verdicts from every monitor, deduplicated by (node, reason,
        round) — independent monitors convict the same fault.

        Args:
            exclude_detectors: ignore verdicts issued by these nodes —
                e.g. a partitioned monitor's local view indicts every
                node it can no longer hear, and a deployment would
                discount verdicts from unreachable monitors.
        """
        excluded = exclude_detectors or set()
        seen = set()
        merged: List[Verdict] = []
        for node in self.nodes.values():
            for verdict in node.verdicts():
                if verdict.detected_by in excluded:
                    continue
                key = (verdict.node, verdict.reason, verdict.exchange_round)
                if key not in seen:
                    seen.add(key)
                    merged.append(verdict)
        return merged

    def convicted_nodes(
        self, exclude_detectors: Optional[Set[int]] = None
    ) -> Set[int]:
        return {v.node for v in self.all_verdicts(exclude_detectors)}

    def playback_report(
        self, node_id: int, warmup_rounds: int = 2
    ) -> PlaybackReport:
        """Playback quality of one node.

        Note the judgement window: a chunk is judged only once its
        playout deadline passed, so with a 10-round playout delay the
        session must run at least ``warmup_rounds + 11`` rounds for any
        chunk to be due; callers that assert on continuity should also
        assert ``chunks_due > 0``.
        """
        node = self.nodes[node_id]
        return evaluate_playback(
            self.source.released,
            node.store,
            current_round=self.current_round,
            warmup_rounds=warmup_rounds,
        )

    def mean_continuity(self, warmup_rounds: int = 2) -> float:
        reports = [
            self.playback_report(node_id, warmup_rounds)
            for node_id in self.nodes
        ]
        return sum(r.continuity for r in reports) / len(reports)

    def total_chunks_due(self, warmup_rounds: int = 2) -> int:
        """How many chunks the continuity judgement covers (guards
        against vacuous 100% continuity in short runs)."""
        any_node = next(iter(self.nodes))
        return self.playback_report(any_node, warmup_rounds).chunks_due

    def crypto_report(self) -> Dict[str, int]:
        """Session-wide cryptographic operation counts (Table I units)."""
        report = self.context.counters.snapshot()
        report["signatures"] += self.context.signer.counters.signatures
        report["verifications"] += self.context.signer.counters.verifications
        report["homomorphic_hashes"] = self.context.hasher.operations
        return report

    def accusation_report(self) -> Dict[str, int]:
        """Summed accusation-path counters across every monitor engine.

        Fault-injection runs read this to see how the accountability
        plane absorbed the damage: how many declarations were rejected
        (corruption), how many cases opened, probes fired, and disputes
        resolved at the deadline.
        """
        totals: Dict[str, int] = {}
        for node in self.nodes.values():
            monitor = getattr(node, "monitor", None)
            counters = getattr(monitor, "counters", None)
            if not counters:
                continue
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals
