"""Per-node protocol state for PAG.

Nodes keep only bounded, recent state: the primes they issued (to build
round keys), the updates they must forward next round, the exchanges in
flight, and the signed acknowledgements they may need to exhibit in a
dispute.  There is no interaction log — PAG's monitoring is log-less by
design (section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.messages import ServeEntry, SignedAck
from repro.gossip.updates import Update

__all__ = ["OutgoingExchange", "ForwardSet", "PagNodeState"]


@dataclass
class OutgoingExchange:
    """Server-side record of one serve to one successor."""

    successor: int
    round_no: int
    entries: Tuple[ServeEntry, ...] = ()
    key_prev: int = 1
    key_prime_count: int = 0
    expected_ack_hash: Optional[int] = None
    served: bool = False
    ack: Optional[SignedAck] = None
    accused: bool = False

    @property
    def acknowledged(self) -> bool:
        return self.ack is not None


@dataclass
class ForwardSet:
    """Updates a node must forward next round, with multiplicities.

    The paper's multiplicity counters (section V-D): receiving ``u`` with
    count ``c1`` from one predecessor and ``c2`` from another in the same
    round obliges forwarding ``u`` once, declared with count ``c1+c2`` —
    monitors match hashes because exponents add under multiplication.
    """

    counts: Dict[int, int] = field(default_factory=dict)
    updates: Dict[int, Update] = field(default_factory=dict)

    def add(self, update: Update, count: int) -> None:
        if count < 1:
            raise ValueError("reception count must be positive")
        self.updates[update.uid] = update
        self.counts[update.uid] = self.counts.get(update.uid, 0) + count

    def items(self) -> List[Tuple[Update, int]]:
        return [
            (self.updates[uid], self.counts[uid])
            for uid in sorted(self.counts)
        ]

    def __len__(self) -> int:
        return len(self.counts)

    def is_empty(self) -> bool:
        return not self.counts


@dataclass
class PagNodeState:
    """All mutable protocol state of one PAG node."""

    #: primes issued this session: round -> predecessor -> prime.
    primes_issued: Dict[int, Dict[int, int]] = field(default_factory=dict)

    #: round -> running product of the primes issued that round, kept
    #: incrementally so round keys and cofactors never refold the whole
    #: prime set (the folds dominated the receiver-side hot path).
    _key_products: Dict[int, int] = field(default_factory=dict, repr=False)

    #: updates to forward, keyed by the round they were received in.
    forward_sets: Dict[int, ForwardSet] = field(default_factory=dict)

    #: serves sent, keyed by (round, successor).
    outgoing: Dict[Tuple[int, int], OutgoingExchange] = field(
        default_factory=dict
    )

    #: serves received and pending attestation, keyed by (round, server).
    pending_serves: Dict[Tuple[int, int], object] = field(
        default_factory=dict
    )

    #: acks this node signed, for idempotent re-sending: (round, server).
    acks_sent: Dict[Tuple[int, int], SignedAck] = field(default_factory=dict)

    def issue_prime(self, round_no: int, predecessor: int, prime: int) -> None:
        per_round = self.primes_issued.setdefault(round_no, {})
        if predecessor in per_round:
            raise ValueError(
                f"prime already issued to {predecessor} in round {round_no}"
            )
        per_round[predecessor] = prime
        self._key_products[round_no] = (
            self._key_products.get(round_no, 1) * prime
        )

    def prime_for(self, round_no: int, predecessor: int) -> Optional[int]:
        return self.primes_issued.get(round_no, {}).get(predecessor)

    def round_key(self, round_no: int) -> Tuple[int, int]:
        """``(K(round, self), number of primes)`` — K is 1 if none issued."""
        primes = self.primes_issued.get(round_no)
        if not primes:
            return 1, 0
        return self._key_products[round_no], len(primes)

    def cofactor(self, round_no: int, predecessor: int) -> Tuple[int, int]:
        """``prod_{k != j} p_k`` and its prime count, for message 7.

        Derived from the incremental round product by exact division:
        the issued primes are nonzero, so ``K / p_j`` equals the product
        of the other primes without refolding them.
        """
        primes = self.primes_issued.get(round_no)
        if not primes:
            return 1, 0
        own = primes.get(predecessor)
        if own is None:
            return self._key_products[round_no], len(primes)
        return self._key_products[round_no] // own, len(primes) - 1

    def forward_set(self, round_no: int) -> ForwardSet:
        return self.forward_sets.setdefault(round_no, ForwardSet())

    def prune_before(self, round_no: int) -> None:
        """Drop state older than ``round_no`` (bounded memory)."""
        for store in (
            self.primes_issued,
            self.forward_sets,
            self._key_products,
        ):
            for rnd in [r for r in store if r < round_no]:
                del store[rnd]
        for keyed in (self.outgoing, self.pending_serves, self.acks_sent):
            for key in [k for k in keyed if k[0] < round_no]:
                del keyed[key]
