"""Pure verification helpers: the homomorphic bookkeeping of sections IV-B/V.

These functions tie the wire messages to the hash algebra.  Everything a
monitor checks reduces to equalities between modular products; keeping
the arithmetic here makes the monitor state machine readable and lets
tests exercise the math in isolation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence, Tuple

from repro.crypto.homomorphic import HomomorphicHasher
from repro.core.messages import ServeEntry
from repro.gossip.updates import content_integer

__all__ = [
    "entries_product",
    "hash_entries",
    "serve_hashes",
    "ack_hash",
    "lift_attested",
    "combine_lifted",
]


@lru_cache(maxsize=1 << 16)
def _entry_power(
    uid: int, session: int, count: int, modulus: int, powmod
) -> int:
    """``content(uid)^count mod modulus``, cached.

    With fanout f every update is typically received f times, so the
    same ``u^count`` term recurs in the server's, the receiver's and the
    monitors' folds of the same round — and in every successor's serve.
    The key is a small-int tuple (plus the backend primitive, so gmpy2
    and pure-Python results never share entries), much cheaper than
    re-reducing the 1024-bit content each time.
    """
    return powmod(content_integer(uid, session), count, modulus)


def entries_product(
    hasher: HomomorphicHasher, entries: Iterable[ServeEntry]
) -> int:
    """``prod u^count mod M`` over serve entries (1 for an empty set).

    Reception multiplicities become exponents, as required for the
    monitors "to match the hashes of received updates with the ones of
    forwarded messages" (section V-D).
    """
    acc = 1
    modulus = hasher.modulus
    powmod = hasher.backend.powmod
    for entry in entries:
        update = entry.update
        acc = (
            acc
            * _entry_power(
                update.uid, update.session, entry.count, modulus, powmod
            )
            % modulus
        )
    return acc


def hash_entries(
    hasher: HomomorphicHasher,
    entries: Iterable[ServeEntry],
    exponent: int,
) -> int:
    """Hash of the entries' product under ``exponent``."""
    product = entries_product(hasher, entries)
    if product == 1:
        return 1 % hasher.modulus
    return hasher.hash(product, exponent)


def serve_hashes(
    hasher: HomomorphicHasher,
    entries: Sequence[ServeEntry],
    prime: int,
) -> Tuple[int, int]:
    """The attestation pair (forward hash, ack-only hash) under a prime.

    Message 4 of Fig. 5, with the two-list split of section V-D.
    """
    forward = [e for e in entries if not e.ack_only]
    ack_only = [e for e in entries if e.ack_only]
    return (
        hash_entries(hasher, forward, prime),
        hash_entries(hasher, ack_only, prime),
    )


def ack_hash(
    hasher: HomomorphicHasher,
    entries: Sequence[ServeEntry],
    key_prev: int,
) -> int:
    """Message 5 hash: full served product under the server's K(R-1, A)."""
    return hash_entries(hasher, entries, key_prev)


def lift_attested(
    hasher: HomomorphicHasher, attested_hash: int, cofactor: int
) -> int:
    """Message 8 computation: raise ``H(.)_(p_j)`` to ``prod_{k!=j} p_k``.

    By the re-keying property the result is ``H(.)_(K(R,B))``.  The
    neutral hash (empty product) lifts to itself.
    """
    if attested_hash == 1 % hasher.modulus:
        return attested_hash
    return hasher.rekey(attested_hash, cofactor)


def combine_lifted(hasher: HomomorphicHasher, lifted: Iterable[int]) -> int:
    """Section V-C: multiply per-predecessor lifted hashes.

    ``H(S_A ∪ S_F)_(K) = H(S_A)_(K) * H(S_F)_(K)`` — the monitors end the
    round knowing the hash of everything the node received, under the
    node's full round key.
    """
    return hasher.combine(lifted)
