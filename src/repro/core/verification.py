"""Pure verification helpers: the homomorphic bookkeeping of sections IV-B/V.

These functions tie the wire messages to the hash algebra.  Everything a
monitor checks reduces to equalities between modular products; keeping
the arithmetic here makes the monitor state machine readable and lets
tests exercise the math in isolation.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Hashable, Iterable, Sequence, Tuple

from repro.core.messages import RelayPair, ServeEntry
from repro.crypto.homomorphic import HomomorphicHasher
from repro.gossip.updates import content_integer

__all__ = [
    "entries_product",
    "hash_entries",
    "serve_hashes",
    "ack_hash",
    "lift_attested",
    "combine_lifted",
    "fold_wire_pairs",
    "BatchVerifier",
    "ExchangeClassCache",
]


@lru_cache(maxsize=1 << 16)
def _entry_power(
    uid: int,
    session: int,
    count: int,
    modulus: int,
    powmod: Callable[[int, int, int], int],
) -> int:
    """``content(uid)^count mod modulus``, cached.

    With fanout f every update is typically received f times, so the
    same ``u^count`` term recurs in the server's, the receiver's and the
    monitors' folds of the same round — and in every successor's serve.
    The key is a small-int tuple (plus the backend primitive, so gmpy2
    and pure-Python results never share entries), much cheaper than
    re-reducing the 1024-bit content each time.
    """
    return powmod(content_integer(uid, session), count, modulus)


def entries_product(
    hasher: HomomorphicHasher, entries: Iterable[ServeEntry]
) -> int:
    """``prod u^count mod M`` over serve entries (1 for an empty set).

    Reception multiplicities become exponents, as required for the
    monitors "to match the hashes of received updates with the ones of
    forwarded messages" (section V-D).
    """
    acc = 1
    modulus = hasher.modulus
    powmod = hasher.backend.powmod
    for entry in entries:
        update = entry.update
        acc = (
            acc
            * _entry_power(
                update.uid, update.session, entry.count, modulus, powmod
            )
            % modulus
        )
    return acc


def hash_entries(
    hasher: HomomorphicHasher,
    entries: Iterable[ServeEntry],
    exponent: int,
) -> int:
    """Hash of the entries' product under ``exponent``."""
    product = entries_product(hasher, entries)
    if product == 1:
        return 1 % hasher.modulus
    return hasher.hash(product, exponent)


def serve_hashes(
    hasher: HomomorphicHasher,
    entries: Sequence[ServeEntry],
    prime: int,
) -> Tuple[int, int]:
    """The attestation pair (forward hash, ack-only hash) under a prime.

    Message 4 of Fig. 5, with the two-list split of section V-D.
    """
    forward = [e for e in entries if not e.ack_only]
    ack_only = [e for e in entries if e.ack_only]
    return (
        hash_entries(hasher, forward, prime),
        hash_entries(hasher, ack_only, prime),
    )


def ack_hash(
    hasher: HomomorphicHasher,
    entries: Sequence[ServeEntry],
    key_prev: int,
) -> int:
    """Message 5 hash: full served product under the server's K(R-1, A)."""
    return hash_entries(hasher, entries, key_prev)


def lift_attested(
    hasher: HomomorphicHasher, attested_hash: int, cofactor: int
) -> int:
    """Message 8 computation: raise ``H(.)_(p_j)`` to ``prod_{k!=j} p_k``.

    By the re-keying property the result is ``H(.)_(K(R,B))``.  The
    neutral hash (empty product) lifts to itself.
    """
    if attested_hash == 1 % hasher.modulus:
        return attested_hash
    return hasher.rekey(attested_hash, cofactor)


def combine_lifted(hasher: HomomorphicHasher, lifted: Iterable[int]) -> int:
    """Section V-C: multiply per-predecessor lifted hashes.

    ``H(S_A ∪ S_F)_(K) = H(S_A)_(K) * H(S_F)_(K)`` — the monitors end the
    round knowing the hash of everything the node received, under the
    node's full round key.
    """
    return hasher.combine(lifted)


class ExchangeClassCache:
    """Crypto memoisation over equivalence classes of exchanges.

    The population tier models thousands of honest exchanges that are
    structurally identical: the same served content class under the same
    hashing key in the same round hashes to the same values.  This cache
    keys the full exchange crypto — the attestation pair of
    :func:`serve_hashes` and the :func:`ack_hash` — by
    ``(class_key, exponent)`` and evaluates each class once; every
    further member of the class is credited to the hasher's
    ``memoised_operations`` counter instead of being recomputed, so
    population reports can reconcile real + memoised totals against
    full-fidelity op counts.

    The cache is bounded like the hasher memos (oldest-half eviction on
    overflow) and tracks ``hits``/``misses`` for the perf ledger.
    """

    __slots__ = ("hasher", "max_entries", "hits", "misses", "_cache")

    def __init__(
        self, hasher: HomomorphicHasher, max_entries: int = 1 << 12
    ) -> None:
        if max_entries < 2:
            raise ValueError("class cache needs at least two entries")
        self.hasher = hasher
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._cache: dict = {}

    def _lookup(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        members: int,
    ) -> Any:
        cached = self._cache.get(key)
        if cached is not None:
            result, real_ops = cached
            self.hits += 1
            self.hasher.memoised_operations += real_ops * members
            return result
        self.misses += 1
        before = self.hasher.operations
        result = compute()
        real_ops = self.hasher.operations - before
        if len(self._cache) >= self.max_entries:
            for old in list(self._cache.keys())[
                : len(self._cache) // 2
            ]:
                del self._cache[old]
        self._cache[key] = (result, real_ops)
        if members > 1:
            self.hasher.memoised_operations += real_ops * (members - 1)
        return result

    def serve_hashes(
        self,
        class_key: Hashable,
        entries: Sequence[ServeEntry],
        prime: int,
        members: int = 1,
    ) -> Tuple[int, int]:
        """Class-memoised attestation pair for ``members`` exchanges."""
        if members < 1:
            raise ValueError("a class needs at least one member")
        return self._lookup(
            ("serve", class_key, prime),
            lambda: serve_hashes(self.hasher, entries, prime),
            members,
        )

    def ack_hash(
        self,
        class_key: Hashable,
        entries: Sequence[ServeEntry],
        key_prev: int,
        members: int = 1,
    ) -> int:
        """Class-memoised message-5 hash for ``members`` exchanges."""
        if members < 1:
            raise ValueError("a class needs at least one member")
        return self._lookup(
            ("ack", class_key, key_prev),
            lambda: ack_hash(self.hasher, entries, key_prev),
            members,
        )

    def stats(self) -> dict:
        """Hit/miss accounting for the population perf section."""
        total = self.hits + self.misses
        return {
            "class_hits": self.hits,
            "class_misses": self.misses,
            "class_hit_rate": self.hits / total if total else 0.0,
            "class_entries": len(self._cache),
            "class_max": self.max_entries,
        }


class BatchVerifier:
    """Batched monitor verification: one fold for a round's lift pairs.

    A monitor's obligation for a (monitored, round) cell is the product
    of per-predecessor message-8 lifts, ``prod_j H(S_j)^(c_j) mod M``.
    Computed pair by pair that costs one wide modular exponentiation per
    predecessor; because every pair shares the session modulus, the whole
    fold is a single multi-exponentiation
    (:meth:`~repro.crypto.backend.Backend.multi_powmod`, Straus's
    interleaving) — one shared squaring chain for the batch instead of
    one per pair.  The result is bit-identical to the per-pair fold: the
    algebra is the same product, evaluated in one pass.

    Accounting follows the hasher's protocol-level convention: each
    non-neutral pair added counts one :attr:`HomomorphicHasher.operations`
    at accumulation time (mirroring what a per-pair :func:`lift_attested`
    would have tallied) and lands in the ``batched_lifts`` cache bucket,
    so operation counts never depend on the fold strategy.

    The monitor engine drives this through :meth:`add`/:meth:`fold`
    alone (lifts it had to materialise for broadcast stay in its
    ``_lifted`` store and multiply in afterwards);
    :meth:`add_lifted`/:meth:`verify` round out the class as a
    standalone batched-verification primitive for mixed folds, where
    some lifted values are already in hand.
    """

    __slots__ = ("hasher", "_pairs", "_factors", "_result")

    def __init__(self, hasher: HomomorphicHasher) -> None:
        self.hasher = hasher
        self._pairs: list = []
        self._factors: list = []
        self._result = None

    def add(self, base: int, exponent: int, include: bool = True) -> None:
        """Accumulate one protocol-level lift ``base ** exponent``.

        Neutral bases (the empty-product hash) lift to themselves and
        are neither counted nor folded, exactly like
        :func:`lift_attested`.  With ``include=False`` the lift is
        tallied but left out of the fold — the acknowledge-only list of
        a declaration (section V-D) is acknowledged without entering the
        forwarding obligation.
        """
        hasher = self.hasher
        if base == 1 % hasher.modulus:
            return  # neutral hash: lifts to itself, exactly lift_attested
        if exponent <= 0:
            raise ValueError("hash exponent must be positive")
        hasher.operations += 1
        hasher.batched_lifts += 1
        if include:
            self._pairs.append((base, exponent))
            self._result = None

    def add_lifted(self, lifted: int) -> None:
        """Fold in an already-lifted value (a wire broadcast)."""
        self._factors.append(lifted)
        self._result = None

    def __len__(self) -> int:
        return len(self._pairs) + len(self._factors)

    @property
    def pending_pairs(self) -> int:
        """Raw pairs awaiting the next multi-exponentiation fold."""
        return len(self._pairs)

    def fold(self) -> int:
        """The accumulated obligation product (1 for an empty batch).

        Memoised until the next accumulation, so repeated server-side
        checks of one round pay the multi-exponentiation once.
        """
        if self._result is None:
            hasher = self.hasher
            modulus = hasher.modulus
            acc = hasher.backend.multi_powmod(self._pairs, modulus)
            for factor in self._factors:
                acc = acc * factor % modulus
            self._result = acc
        return self._result

    def verify(self, acknowledged: int) -> bool:
        """Does the folded obligation match an acknowledged hash?"""
        return self.fold() == acknowledged % self.hasher.modulus


def fold_wire_pairs(
    hasher: HomomorphicHasher, pairs: Iterable[RelayPair]
) -> int:
    """Fold wire-carried raw (hash, cofactor) pairs in one pass.

    The fm>1 batched fold over an
    :class:`~repro.core.messages.AttestationRelayBatch`'s pair list:
    each pair contributes ``hash_forward ** cofactor`` to the
    obligation product, while the acknowledge-only hash is tallied but
    folded out (section V-D), exactly as the monitor engine does pair
    by pair.  ``pairs`` is an iterable of
    ``(hash_forward, hash_ack_only, cofactor)`` triples (or objects
    exposing an ``attestation`` plus ``cofactor``, i.e.
    :class:`~repro.core.messages.RelayPair`).  Bit-identical to the
    sequential ``lift_attested``/``combine_lifted`` chain — one Straus
    multi-exponentiation instead of one wide ``pow`` per pair.
    """
    verifier = BatchVerifier(hasher)
    for pair in pairs:
        attestation = getattr(pair, "attestation", None)
        if attestation is not None:
            forward = attestation.hash_forward
            ack_only = attestation.hash_ack_only
            cofactor = pair.cofactor
        else:
            forward, ack_only, cofactor = pair
        verifier.add(forward, cofactor)
        verifier.add(ack_only, cofactor, include=False)
    return verifier.fold()
