"""PAG wire messages.

Messages 1-5 are the update exchange of Fig. 5; messages 6-9 are the
monitoring traffic of Fig. 6; the remaining types implement the
accusation path of Fig. 3 and the investigation step of section IV-A
("they ask node A for the acknowledgement that node B should have
sent").

Wire sizing: every message computes its byte size from the session's
:class:`~repro.sim.message.WireSizes`.  Products of k primes are priced
as ``k * prime`` bytes (their true width), independent of the smaller
primes the simulation may use for the algebra — the ``prime_count``
fields exist for exactly this purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Optional, Tuple

from repro.gossip.updates import Update
from repro.sim.message import Message, WireSizes

__all__ = [
    "ServeEntry",
    "SignedAck",
    "SignedAttestation",
    "KeyRequest",
    "KeyResponse",
    "Serve",
    "Attestation",
    "Ack",
    "AckCopy",
    "AttestationRelay",
    "RelayPair",
    "AttestationRelayBatch",
    "DeclarationAck",
    "MonitorBroadcast",
    "SelfCheck",
    "AckRelay",
    "Accusation",
    "MonitorProbe",
    "ProbeAck",
    "Confirm",
    "Nack",
    "InvestigateRequest",
    "InvestigateResponse",
]

#: Bytes used for a reception-multiplicity counter on the wire.
_COUNT_BYTES = 2


def wire_kinds() -> frozenset:
    """All message ``kind`` strings a PAG session can put on the wire.

    Fault schedules validate their kind filters against this catalogue,
    so a typo in a scenario declaration fails fast instead of silently
    matching nothing.
    """
    import sys

    module = sys.modules[__name__]
    kinds = set()
    for name in __all__:
        kind = getattr(getattr(module, name), "kind", None)
        if isinstance(kind, str):
            kinds.add(kind)
    return frozenset(kinds)


@dataclass(frozen=True, slots=True)
class ServeEntry:
    """One update inside a Serve message.

    Attributes:
        update: the chunk (payload travels only when ``has_payload``).
        count: how many times the sender received the update during the
            previous round (section V-D "Multiple receptions"); it is
            the exponent of the update in every hash that covers it.
        has_payload: False when the receiver already owns the chunk (it
            was advertised in the buffermap) — only the identifier and
            count travel.
        ack_only: True when the entry joins the receiver's
            acknowledge-only list (expiring next round, or already owned)
            rather than its forwarding obligation (section V-D
            "Expiration of updates", extended to duplicates; see
            PagConfig.forward_owned_ghosts).
    """

    update: Update
    count: int
    has_payload: bool
    ack_only: bool

    def wire_bytes(self, sizes: WireSizes) -> int:
        body = sizes.update_id + _COUNT_BYTES + 1  # id, count, flags
        if self.has_payload:
            body += self.update.payload_bytes
        return body


@dataclass(frozen=True, slots=True)
class SignedAck:
    """Message 5 content: ``<Ack, R, B, A, H(prod u_i)_(K(R-1,A), M)>_B``.

    Relayed verbatim in messages 6 and 9 and exhibited in disputes, so it
    is a standalone signed object.

    Attributes:
        round_no: round of the exchange.
        receiver: B, the acknowledging node (the signer).
        server: A, whose serve is acknowledged.
        hash_total: homomorphic hash of the full served product (forward
            and ack-only parts) under A's previous-round key product.
        key_prime_count: number of primes in A's key product (sizing).
        signature: B's signature over the payload.
    """

    round_no: int
    receiver: int
    server: int
    hash_total: int
    key_prime_count: int
    signature: int

    def payload_bytes_desc(self) -> bytes:
        return (
            f"ack|{self.round_no}|{self.receiver}|{self.server}|"
            f"{self.hash_total}|{self.key_prime_count}".encode()
        )

    def wire_bytes(self, sizes: WireSizes) -> int:
        return sizes.hash_value + sizes.signature + 12


@dataclass(frozen=True, slots=True)
class SignedAttestation:
    """Message 4 content: ``<Attestation, R, A, B, H(.)_(p_j,M)>_A``.

    Split into the forwarding obligation and the acknowledge-only part
    (section V-D's two-list mechanism).
    """

    round_no: int
    server: int
    receiver: int
    hash_forward: int
    hash_ack_only: int
    signature: int

    def payload_bytes_desc(self) -> bytes:
        return (
            f"att|{self.round_no}|{self.server}|{self.receiver}|"
            f"{self.hash_forward}|{self.hash_ack_only}".encode()
        )

    def wire_bytes(self, sizes: WireSizes) -> int:
        return 2 * sizes.hash_value + sizes.signature + 12


# ---------------------------------------------------------------------------
# Messages 1-5: the exchange of Fig. 5.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class KeyRequest(Message):
    """Message 1: ``<KeyRequest, R, A, B>_A`` — A asks B for a prime."""

    signature: int = 0
    kind: ClassVar[str] = "key_request"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + sizes.signature


@dataclass(slots=True)
class KeyResponse(Message):
    """Message 2: ``{<KeyResponse, R, B, A, p_j, H(u_{i in S_B})_(p_j,M)>_B}pk(A)``.

    B issues a fresh prime for the link and advertises, hashed under that
    prime, the updates it owns from the last ``buffermap_depth`` rounds.
    """

    prime: int = 0
    buffermap: frozenset[int] = field(default_factory=frozenset)
    signature: int = 0
    kind: ClassVar[str] = "key_response"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header
            + sizes.prime
            + len(self.buffermap) * sizes.hash_value
            + sizes.signature
            + sizes.encryption_overhead
        )


@dataclass(slots=True)
class Serve(Message):
    """Message 3: ``{<Serve, R, A, B, K(R-1,A), updates, intersections>_A}pk(B)``."""

    key_prev: int = 1
    key_prime_count: int = 0
    entries: Tuple[ServeEntry, ...] = ()
    signature: int = 0
    kind: ClassVar[str] = "serve"

    def size_bytes(self, sizes: WireSizes) -> int:
        body = sum(entry.wire_bytes(sizes) for entry in self.entries)
        key_bytes = self.key_prime_count * sizes.prime
        return (
            sizes.header
            + key_bytes
            + body
            + sizes.signature
            + sizes.encryption_overhead
        )

    def forward_entries(self) -> Tuple[ServeEntry, ...]:
        return tuple(e for e in self.entries if not e.ack_only)

    def ack_only_entries(self) -> Tuple[ServeEntry, ...]:
        return tuple(e for e in self.entries if e.ack_only)


@dataclass(slots=True)
class Attestation(Message):
    """Message 4: the signed attestation A sends to B."""

    attestation: Optional[SignedAttestation] = None
    kind: ClassVar[str] = "attestation"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + self.attestation.wire_bytes(sizes)


@dataclass(slots=True)
class Ack(Message):
    """Message 5: B's signed acknowledgement back to A."""

    ack: Optional[SignedAck] = None
    kind: ClassVar[str] = "ack"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + self.ack.wire_bytes(sizes)


# ---------------------------------------------------------------------------
# Messages 6-9: monitoring traffic of Fig. 6.
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class AckCopy(Message):
    """Message 6: B copies its Ack to one of its own monitors."""

    ack: Optional[SignedAck] = None
    kind: ClassVar[str] = "ack_copy"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + self.ack.wire_bytes(sizes)


@dataclass(slots=True)
class AttestationRelay(Message):
    """Message 7: ``{<attestation, prod_{k!=j} p_k>_B}pk(D)``.

    B forwards A's attestation to its designated monitor together with
    the product of the primes B issued to its *other* predecessors, so
    the monitor can homomorphically lift the attested hash to the full
    round key.  Sent to a per-predecessor monitor so no single monitor
    collects all cofactors (two cofactors reveal primes via gcd).
    """

    attestation: Optional[SignedAttestation] = None
    cofactor: int = 1
    cofactor_prime_count: int = 0
    signature: int = 0
    kind: ClassVar[str] = "attestation_relay"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header
            + self.attestation.wire_bytes(sizes)
            + self.cofactor_prime_count * sizes.prime
            + sizes.signature
            + sizes.encryption_overhead
        )


@dataclass(frozen=True, slots=True)
class RelayPair:
    """One (attestation, cofactor) pair inside a batched relay.

    The raw material of one message-7 declaration: the server's signed
    attestation plus the cofactor that lifts it to the declarer's full
    round key.  ``cofactor_prime_count`` prices the cofactor on the
    wire (a product of k primes is k * prime bytes wide).
    """

    attestation: SignedAttestation
    cofactor: int = 1
    cofactor_prime_count: int = 0

    def wire_bytes(self, sizes: WireSizes) -> int:
        return (
            self.attestation.wire_bytes(sizes)
            + self.cofactor_prime_count * sizes.prime
        )


@dataclass(slots=True)
class AttestationRelayBatch(Message):
    """Message 7, batched: several raw (hash, cofactor) pairs, one
    signature.

    The wire form the fm>1 batched fold waits on (ROADMAP item 1): when
    a declarer owes one monitor several per-predecessor declarations in
    a round (its designation rotation wraps because it has more
    predecessors than monitors, or it redeclares after a monitor
    failure), the raw pairs travel in a single signed message instead
    of one :class:`AttestationRelay` per pair.  Each attestation keeps
    its server's inner signature; the declarer signs the pair list once
    (:meth:`payload_desc`).  Receiving monitors fold the raw pairs
    straight into their round :class:`~repro.core.verification.BatchVerifier`
    without materialising per-pair lifts, and the designated monitor
    forwards the *same signed batch* to its peer monitors in place of
    per-pair MonitorBroadcasts.

    The in-process simulator never emits this type — it exists for the
    daemon wire path (``repro.net``), which is held to verdict parity
    with the simulator, not byte parity.  ``declarer`` names the node
    whose declarations these are; it differs from ``sender`` when a
    designated monitor forwards the batch to its peers.
    """

    declarer: int = -1
    pairs: Tuple[RelayPair, ...] = ()
    signature: int = 0
    kind: ClassVar[str] = "attestation_relay_batch"

    def payload_desc(self) -> bytes:
        body = "|".join(
            f"{pair.attestation.round_no}|{pair.attestation.server}|"
            f"{pair.cofactor}"
            for pair in self.pairs
        )
        return f"attbatch|{self.round_no}|{self.declarer}|{body}".encode()

    def size_bytes(self, sizes: WireSizes) -> int:
        body = sum(pair.wire_bytes(sizes) for pair in self.pairs)
        return (
            sizes.header
            + body
            + sizes.signature
            + sizes.encryption_overhead
        )


@dataclass(slots=True)
class DeclarationAck(Message):
    """Monitor -> declarer: the message 6/7 pair was received.

    Lets a node detect a crashed designated monitor and re-send its
    declaration to the next monitor in its set, so a single monitor
    failure does not sever the relay chain (the paper assumes at least
    one correct monitor per set; this realises that redundancy without
    giving any monitor two cofactors on the happy path).
    """

    server: int = -1
    exchange_round: int = -1
    signature: int = 0
    kind: ClassVar[str] = "declaration_ack"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + 8 + sizes.signature


@dataclass(slots=True)
class MonitorBroadcast(Message):
    """Message 8: the designated monitor shares the lifted hash pair.

    ``<H(prod u)_(K(R,B), M)>`` for one predecessor's serve, broadcast to
    the other monitors of B together with the ack copy, so all monitors
    of B converge on the same obligation product (section V-C).
    """

    monitored: int = -1
    predecessor: int = -1
    lifted_forward: int = 1
    lifted_ack_only: int = 1
    ack: Optional[SignedAck] = None
    signature: int = 0
    kind: ClassVar[str] = "monitor_broadcast"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header
            + 2 * sizes.hash_value
            + self.ack.wire_bytes(sizes)
            + sizes.signature
        )


@dataclass(slots=True)
class SelfCheck(Message):
    """Monitored node -> each of its monitors: my own lifted hash pair.

    The section V-B cross-check: "nodes can compute this value and send
    it to their monitors.  Monitors are then able to check each other's
    correctness."  The node knows all its primes, so it can compute
    ``H(.)_(K(R, self))`` directly; a designated monitor that broadcasts
    a different value is lying (or the node is — the successors'
    acknowledgements arbitrate, since they hash the real product under
    the real key).
    """

    predecessor: int = -1
    lifted_forward: int = 1
    lifted_ack_only: int = 1
    signature: int = 0
    kind: ClassVar[str] = "self_check"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + 2 * sizes.hash_value + sizes.signature

    def payload_desc(self) -> bytes:
        return (
            f"selfcheck|{self.round_no}|{self.sender}|{self.predecessor}|"
            f"{self.lifted_forward}|{self.lifted_ack_only}".encode()
        )


@dataclass(slots=True)
class AckRelay(Message):
    """Message 9: B's monitors forward B's ack to A's monitors.

    This is how A's monitors learn that A's successor B acknowledged the
    right product under A's previous-round key.
    """

    server: int = -1
    ack: Optional[SignedAck] = None
    signature: int = 0
    kind: ClassVar[str] = "ack_relay"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header + self.ack.wire_bytes(sizes) + sizes.signature
        )


# ---------------------------------------------------------------------------
# Accusation path (Fig. 3) and investigations (section IV-A).
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Accusation(Message):
    """A tells M(B): B did not acknowledge my serve; here is the serve.

    The accusation re-sends the update set to B's monitors "making them
    forward it to node B and ask for an acknowledgement".  On this
    failure path the monitors do see the payload — the privacy of the
    exchange is sacrificed to resolve the dispute, which is why the
    paper calls PAG *partially* privacy-preserving.
    """

    accused: int = -1
    exchange_round: int = -1
    entries: Tuple[ServeEntry, ...] = ()
    key_prev: int = 1
    key_prime_count: int = 0
    attestation: Optional[SignedAttestation] = None
    signature: int = 0
    kind: ClassVar[str] = "accusation"

    def size_bytes(self, sizes: WireSizes) -> int:
        body = sum(entry.wire_bytes(sizes) for entry in self.entries)
        att = self.attestation.wire_bytes(sizes) if self.attestation else 0
        return (
            sizes.header
            + body
            + self.key_prime_count * sizes.prime
            + att
            + sizes.signature
        )


@dataclass(slots=True)
class MonitorProbe(Message):
    """M(B) forwards the accused serve to B and demands an Ack."""

    accuser: int = -1
    exchange_round: int = -1
    entries: Tuple[ServeEntry, ...] = ()
    key_prev: int = 1
    key_prime_count: int = 0
    signature: int = 0
    kind: ClassVar[str] = "monitor_probe"

    def size_bytes(self, sizes: WireSizes) -> int:
        body = sum(entry.wire_bytes(sizes) for entry in self.entries)
        return (
            sizes.header
            + body
            + self.key_prime_count * sizes.prime
            + sizes.signature
        )


@dataclass(slots=True)
class ProbeAck(Message):
    """B answers a probe with a signed Ack."""

    ack: Optional[SignedAck] = None
    kind: ClassVar[str] = "probe_ack"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + self.ack.wire_bytes(sizes)


@dataclass(slots=True)
class Confirm(Message):
    """M(B) -> M(A): ``Confirm(<Ack(u, A)>_B)`` — B did acknowledge."""

    ack: Optional[SignedAck] = None
    signature: int = 0
    kind: ClassVar[str] = "confirm"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header + self.ack.wire_bytes(sizes) + sizes.signature
        )


@dataclass(slots=True)
class Nack(Message):
    """M(B) -> M(A): B never answered the probe; B is unresponsive."""

    accused: int = -1
    accuser: int = -1
    exchange_round: int = -1
    signature: int = 0
    kind: ClassVar[str] = "nack"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + 12 + sizes.signature


@dataclass(slots=True)
class InvestigateRequest(Message):
    """M(A) -> A: exhibit the Ack that successor B should have produced."""

    successor: int = -1
    exchange_round: int = -1
    signature: int = 0
    kind: ClassVar[str] = "investigate_request"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + 8 + sizes.signature


@dataclass(slots=True)
class InvestigateResponse(Message):
    """A -> M(A): the exhibited Ack, or nothing (which convicts A)."""

    successor: int = -1
    exchange_round: int = -1
    ack: Optional[SignedAck] = None
    accused_instead: bool = False
    signature: int = 0
    kind: ClassVar[str] = "investigate_response"

    def size_bytes(self, sizes: WireSizes) -> int:
        ack_bytes = self.ack.wire_bytes(sizes) if self.ack else 0
        return sizes.header + 9 + ack_bytes + sizes.signature
