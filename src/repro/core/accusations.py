"""Verdicts, fault reasons, and dispute case files.

The output of PAG's monitoring infrastructure is a *proof of
misbehaviour* against a node (section I: "In case of fault detection,
the monitors generate a proof of misbehaviour and the misbehaving nodes
get punished").  The simulation represents proofs as structured verdicts
carrying the evidence that convinced the monitor; tests assert both that
selfish deviations are detected and that correct nodes are never
convicted (no false positives — the property LiFTinG lacks, which the
paper criticises in section VIII).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Set, Tuple

__all__ = ["FaultReason", "Verdict", "VerdictLog", "CaseFile"]


class FaultReason(enum.Enum):
    """Why a node was convicted."""

    #: The server never produced an acknowledgement from a successor and
    #: could not exhibit one nor show it accused the successor (R2 /
    #: omission to contact or serve).
    OMISSION_TO_SERVE = "omission_to_serve"

    #: A successor acknowledged a product that differs from the node's
    #: forwarding obligation (R2 / wrong or partial forward set).
    WRONG_FORWARD_SET = "wrong_forward_set"

    #: The node did not acknowledge a (monitor-relayed) serve (R1 /
    #: obligation to receive).
    REFUSED_RECEPTION = "refused_reception"

    #: The node acknowledged to its server but never declared the
    #: reception to its own monitors (messages 6/7 omitted): the server
    #: exhibited the signed Ack the node's monitors never saw.
    OMITTED_DECLARATION = "omitted_declaration"

    #: The node ignored its monitors' investigation request.
    UNRESPONSIVE_INVESTIGATION = "unresponsive_investigation"

    #: A designated monitor broadcast a lifted hash that disagrees with
    #: the monitored node's signed self-check, and the successors'
    #: acknowledgements sided with the node (section V-B cross-checks).
    MONITOR_MISBEHAVIOR = "monitor_misbehavior"


@dataclass(frozen=True)
class Verdict:
    """One conviction, with its supporting evidence.

    Attributes:
        node: the convicted node.
        reason: the fault class.
        exchange_round: the round of the faulty exchange.
        detected_by: monitor that issued the verdict.
        evidence: human-readable description of the proof (signed acks,
            hash mismatches, missing responses).
    """

    node: int
    reason: FaultReason
    exchange_round: int
    detected_by: int
    evidence: str = ""


@dataclass
class VerdictLog:
    """Deduplicated collection of verdicts issued by one monitor."""

    verdicts: List[Verdict] = field(default_factory=list)
    _seen: Set[Tuple[int, FaultReason, int]] = field(default_factory=set)
    #: observability tap, fired once per *new* verdict (duplicates never
    #: reach it).  ``None`` by default so the conviction path costs one
    #: pointer check when no service subscriber is attached; the sink
    #: must not mutate protocol state.
    sink: Optional[Callable[[Verdict], None]] = field(
        default=None, repr=False, compare=False
    )

    def record(self, verdict: Verdict) -> bool:
        """Add a verdict; returns False if it duplicates an earlier one."""
        key = (verdict.node, verdict.reason, verdict.exchange_round)
        if key in self._seen:
            return False
        self._seen.add(key)
        self.verdicts.append(verdict)
        if self.sink is not None:
            self.sink(verdict)
        return True

    def against(self, node: int) -> List[Verdict]:
        return [v for v in self.verdicts if v.node == node]

    def guilty_nodes(self) -> Set[int]:
        return {v.node for v in self.verdicts}

    def __len__(self) -> int:
        return len(self.verdicts)

    def __iter__(self) -> Iterator[Verdict]:
        return iter(self.verdicts)


@dataclass
class CaseFile:
    """An open dispute: a missing acknowledgement under investigation.

    Created by a server's monitor when no ack relay (nor Confirm/Nack)
    arrived for one of the server's successors.  Resolved by an
    exhibited ack, a Confirm, a Nack, or conviction at the deadline.
    """

    server: int
    successor: int
    exchange_round: int
    deadline_round: int
    investigated: bool = False
    server_claims_accusation: bool = False
    #: the server exhibited the successor's signed ack; conviction of
    #: the successor waits for the deadline (a late relay exonerates).
    exhibited: bool = False
    resolved: bool = False

    def key(self) -> Tuple[int, int, int]:
        return (self.server, self.successor, self.exchange_round)
