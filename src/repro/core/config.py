"""Configuration of a PAG deployment.

Defaults follow section VII-A of the paper: one-second rounds, 938-byte
updates released 10 seconds before playout, RSA-2048 signatures, 512-bit
primes and hash modulus, fanout and monitor-set size 3 (the value used
with 1000 nodes), buffermaps covering the last 4 rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.membership.views import default_fanout

__all__ = ["PagConfig"]


@dataclass(frozen=True)
class PagConfig:
    """All tunables of a PAG session.

    Attributes:
        fanout: successors per node per round (f).
        monitors_per_node: monitor-set size per node (fm); the paper uses
            the same value as the fanout unless stated otherwise.
        stream_rate_kbps: source bit rate (300 Kbps in the base runs).
        rate_schedule: optional per-round rate ramp, as sorted
            ``(from_round, rate_kbps)`` steps handed to the source's
            :class:`~repro.gossip.source.StreamSchedule`;
            ``stream_rate_kbps`` applies before the first step.  Empty
            means a constant-bit-rate stream (every paper workload).
        update_bytes: chunk payload size (938 B).
        playout_delay_rounds: release-to-deadline delay (10 rounds).
        buffermap_depth: rounds of owned updates advertised in each
            KeyResponse (the paper's tuned value is 4).
        round_seconds: wall-clock duration of one round.
        modulus_bits: wire size of the homomorphic hash modulus (512).
        prime_bits: wire size of the per-link primes (512).
        signature_bytes: wire size of one RSA signature (RSA-2048 = 256).
        sim_modulus_bits: modulus actually used for the in-simulation
            algebra.  The homomorphic identities are exact at any size,
            so simulations may compute with a smaller modulus while wire
            costs are still priced at ``modulus_bits`` (see DESIGN.md,
            "Substitutions").
        sim_prime_bits: prime size used for the in-simulation algebra.
        seed: root seed for all randomness in the session.
        detection_enabled: run the monitoring state machine (can be
            disabled for pure bandwidth measurements of the data path).
        forward_owned_ghosts: when True, updates a receiver already owns
            re-enter its forwarding obligation (a literal reading of
            section V's S_A semantics).  Default False: already-owned and
            about-to-expire updates go on the acknowledge-only list of
            the serve, which monitors acknowledge without propagation
            checks — the same mechanism the paper introduces for expiring
            updates (section V-D), applied also to duplicates so that
            ghost obligations do not cascade.  This is the ablation knob
            listed in DESIGN.md section 6.
        crypto_backend: modular-arithmetic backend for the homomorphic
            hash: ``"auto"`` (gmpy2 when installed, else pure Python),
            ``"python"`` or ``"gmpy2"``.  ``"auto"`` also honours the
            ``REPRO_CRYPTO_BACKEND`` environment variable.  Backends are
            arithmetic-only; operation counts are identical across them.
        hash_memo_entries: bound on the hasher's wide-exponent
            ``(value, exponent) -> hash`` memo; the oldest half is
            evicted when full.  The memory ceiling for long runs — one
            entry holds two bigints of roughly the modulus width.  The
            default is 512: memo reuse is drain-local (the
            server/receiver ack-hash pair of one exchange), so measured
            hit counts are identical at 512 and 16384 entries.
        fixed_base_cache_entries: bound on the number of hot bases
            holding a fixed-base window table.  Caches are per-hasher;
            hit rates are reported in ``BENCH_hotpath.json``.
        batch_verify: fold the monitor path's message-8 lifts of a round
            with one Straus multi-exponentiation pass
            (:class:`~repro.core.verification.BatchVerifier`) where the
            individual lifted values are not observable on the wire,
            instead of one ``pow`` per pair.  Verdicts, traces, byte
            counts and operation tallies are bit-identical either way
            (enforced by ``tests/differential/test_batch_verify.py``);
            the knob exists to measure the fold and to fall back if a
            deployment ever needs to.
        monitor_cross_checks: enable the section V-B option "to check
            that monitors correctly compute and forward the hashes of
            updates": the monitored node also computes each lifted hash
            itself and sends it, signed, to all its monitors; a
            designated monitor whose broadcast disagrees is convicted
            once the successors' acknowledgements arbitrate.  Off by
            default (it adds small per-predecessor messages; the paper's
            bandwidth figures do not include it).
    """

    fanout: int = 3
    monitors_per_node: int = 3
    stream_rate_kbps: float = 300.0
    rate_schedule: Tuple[Tuple[int, float], ...] = ()
    update_bytes: int = 938
    playout_delay_rounds: int = 10
    buffermap_depth: int = 4
    round_seconds: float = 1.0
    modulus_bits: int = 512
    prime_bits: int = 512
    signature_bytes: int = 256
    sim_modulus_bits: int = 128
    sim_prime_bits: int = 32
    seed: int = 20160627
    crypto_backend: str = "auto"
    hash_memo_entries: int = 1 << 9
    fixed_base_cache_entries: int = 1024
    detection_enabled: bool = True
    forward_owned_ghosts: bool = False
    batch_verify: bool = True
    monitor_cross_checks: bool = False

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")
        if self.monitors_per_node < 1:
            raise ValueError("monitor set must be non-empty")
        if self.buffermap_depth < 1:
            raise ValueError("buffermap depth must be at least 1 round")
        if self.playout_delay_rounds < 2:
            raise ValueError(
                "playout delay below 2 rounds leaves no forwarding window"
            )
        if self.sim_prime_bits < 8:
            raise ValueError("simulation primes below 8 bits collide")
        if self.hash_memo_entries < 2:
            raise ValueError("hash memo must hold at least 2 entries")
        if self.fixed_base_cache_entries < 1:
            raise ValueError("fixed-base cache must hold at least 1 entry")
        from repro.gossip.source import validate_rate_steps

        object.__setattr__(
            self, "rate_schedule", validate_rate_steps(self.rate_schedule)
        )

    @classmethod
    def for_system_size(cls, n: int, **overrides: Any) -> "PagConfig":
        """Config with the paper's size-dependent fanout (~log10 N)."""
        fanout = overrides.pop("fanout", default_fanout(n))
        monitors = overrides.pop("monitors_per_node", fanout)
        return cls(fanout=fanout, monitors_per_node=monitors, **overrides)

    @property
    def hash_bytes(self) -> int:
        """Wire size of one homomorphic hash value."""
        return (self.modulus_bits + 7) // 8

    @property
    def prime_bytes(self) -> int:
        """Wire size of one link prime."""
        return (self.prime_bits + 7) // 8
