"""PAG — the paper's primary contribution.

The package implements the full protocol: the five-message private
exchange of Fig. 5, the monitoring traffic of Fig. 6, the accusation
path of Fig. 3, investigations, the two-list expiration mechanism and
multiplicity counters of section V-D, and verdict generation.
"""

from __future__ import annotations

from repro.core.accusations import CaseFile, FaultReason, Verdict, VerdictLog
from repro.core.behavior import Behavior, CorrectBehavior
from repro.core.config import PagConfig
from repro.core.context import PagContext
from repro.core.messages import (
    Accusation,
    Ack,
    AckCopy,
    AckRelay,
    Attestation,
    AttestationRelay,
    Confirm,
    InvestigateRequest,
    InvestigateResponse,
    KeyRequest,
    KeyResponse,
    MonitorBroadcast,
    MonitorProbe,
    Nack,
    ProbeAck,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.core.monitor import MonitorEngine
from repro.core.node import PagNode, PagSourceNode
from repro.core.session import PagSession
from repro.core.signing import RsaSigner, TokenSigner
from repro.core.state import ForwardSet, OutgoingExchange, PagNodeState

__all__ = [
    "Accusation",
    "Ack",
    "AckCopy",
    "AckRelay",
    "Attestation",
    "AttestationRelay",
    "Behavior",
    "CaseFile",
    "Confirm",
    "CorrectBehavior",
    "FaultReason",
    "ForwardSet",
    "InvestigateRequest",
    "InvestigateResponse",
    "KeyRequest",
    "KeyResponse",
    "MonitorBroadcast",
    "MonitorEngine",
    "MonitorProbe",
    "Nack",
    "OutgoingExchange",
    "PagConfig",
    "PagContext",
    "PagNode",
    "PagNodeState",
    "PagSession",
    "PagSourceNode",
    "ProbeAck",
    "RsaSigner",
    "Serve",
    "ServeEntry",
    "SignedAck",
    "SignedAttestation",
    "TokenSigner",
    "Verdict",
    "VerdictLog",
]
