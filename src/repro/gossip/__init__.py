"""Gossip dissemination substrate: updates, source, buffermaps, push gossip."""

from __future__ import annotations

from repro.gossip.buffermap import (
    DEFAULT_BUFFERMAP_DEPTH,
    HashedBuffermap,
    PlainBuffermap,
    buffermap_hash_count,
)
from repro.gossip.dissemination import (
    PlainGossipNode,
    PlainSourceNode,
    PushMessage,
)
from repro.gossip.source import StreamSchedule
from repro.gossip.updates import Update, UpdateStore, content_integer

__all__ = [
    "DEFAULT_BUFFERMAP_DEPTH",
    "HashedBuffermap",
    "PlainBuffermap",
    "PlainGossipNode",
    "PlainSourceNode",
    "PushMessage",
    "StreamSchedule",
    "Update",
    "UpdateStore",
    "buffermap_hash_count",
    "content_integer",
]
