"""Content updates (chunks) and per-node update stores.

The unit of dissemination is the *update*: a chunk of the content stream
signed by the source (section III: "Updates are propagated along with
their signature so that they can be verified by the nodes upon
reception, which prevents data tampering").  In the paper's deployment,
updates are 938-byte packets grouped in windows of 40, released 10
seconds before their playout deadline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Set

__all__ = ["Update", "UpdateStore", "content_integer"]


@lru_cache(maxsize=1 << 16)
def content_integer(uid: int, session: int = 0) -> int:
    """Deterministic 1024-bit integer standing in for an update's bytes.

    The homomorphic hash operates on updates-as-integers (section IV-B).
    Real payloads are arbitrary video bytes; for simulation we derive a
    fixed pseudo-random integer from the update id so every node agrees
    on the content, hashes are reproducible, and the integer is wider
    than the 512-bit modulus (the paper notes updates are larger than M,
    which is what makes the hash non-invertible).

    Cached: every hash, buffermap and product evaluation re-reads update
    contents, and the four SHA-256 blocks per read dominated simulation
    profiles before memoisation.
    """
    blocks = []
    for counter in range(4):  # 4 x 256 bits = 1024 bits
        material = f"pag-update:{session}:{uid}:{counter}".encode()
        blocks.append(hashlib.sha256(material).digest())
    value = int.from_bytes(b"".join(blocks), "big")
    # Force the top bit so the width is exactly 1024 bits, and make it
    # odd so it is coprime with power-of-two moduli edge cases.
    return value | (1 << 1023) | 1


@dataclass(frozen=True)
class Update:
    """One signed content chunk.

    Attributes:
        uid: globally unique sequence number assigned by the source.
        round_created: round in which the source released the chunk.
        expiry_round: last round in which forwarding the chunk is useful
            (playout deadline); after this, nodes must stop propagating
            it (section V-D, "Expiration of updates").
        payload_bytes: wire size of the chunk body.
        session: gossip session identifier (several sessions may run
            simultaneously, section III).
    """

    uid: int
    round_created: int
    expiry_round: int
    payload_bytes: int = 938
    session: int = 0

    @property
    def content(self) -> int:
        """Integer representation used by the homomorphic hash."""
        return content_integer(self.uid, self.session)

    def expires_next_round(self, current_round: int) -> bool:
        """True when the chunk must not be forwarded after this round.

        Section V-D: when forwarding, a node separates updates that
        "will expire in the next round, and should not be forwarded"
        from those that must continue propagating.
        """
        return self.expiry_round <= current_round + 1

    def is_expired(self, current_round: int) -> bool:
        return current_round > self.expiry_round


@dataclass
class UpdateStore:
    """Per-node store of received updates.

    Tracks what the node owns (for buffermaps and duplicate avoidance),
    when each update arrived (for streaming quality metrics) and how
    many times it was received in the previous round (the multiplicity
    counters of section V-D, "Multiple receptions").
    """

    _updates: Dict[int, Update] = field(default_factory=dict)
    _arrival_round: Dict[int, int] = field(default_factory=dict)
    _receipt_counts: Dict[int, int] = field(default_factory=dict)

    def add(self, update: Update, round_no: int) -> bool:
        """Record a reception; returns True if the update is new."""
        self._receipt_counts[update.uid] = (
            self._receipt_counts.get(update.uid, 0) + 1
        )
        if update.uid in self._updates:
            return False
        self._updates[update.uid] = update
        self._arrival_round[update.uid] = round_no
        return True

    def __contains__(self, uid: int) -> bool:
        return uid in self._updates

    def __len__(self) -> int:
        return len(self._updates)

    def get(self, uid: int) -> Optional[Update]:
        return self._updates.get(uid)

    def arrival_round(self, uid: int) -> Optional[int]:
        return self._arrival_round.get(uid)

    def receipt_count(self, uid: int) -> int:
        """How many copies of ``uid`` arrived in total."""
        return self._receipt_counts.get(uid, 0)

    def uids(self) -> Set[int]:
        return set(self._updates)

    def received_in_round(self, round_no: int) -> List[Update]:
        """Updates that first arrived during ``round_no`` (to forward next)."""
        return [
            self._updates[uid]
            for uid, rnd in self._arrival_round.items()
            if rnd == round_no and uid in self._updates
        ]

    def recent_uids(self, current_round: int, depth: int) -> Set[int]:
        """Updates that arrived within the last ``depth`` rounds.

        This is the buffermap content: the paper found hashing "the
        updates of the last 4 rounds" optimal for its workload.
        """
        cutoff = current_round - depth
        return {
            uid
            for uid, rnd in self._arrival_round.items()
            if rnd > cutoff
        }

    def drop_expired(self, current_round: int) -> int:
        """Evict expired update payloads; returns how many were dropped.

        Arrival history is retained: playback evaluation needs to know
        *when* a chunk arrived even after its payload left the buffer
        (the media player consumed it).
        """
        expired = [
            uid
            for uid, update in self._updates.items()
            if update.is_expired(current_round)
        ]
        for uid in expired:
            del self._updates[uid]
        return len(expired)

    def ever_received(self, uid: int) -> bool:
        """True if ``uid`` arrived at any point, even if since evicted."""
        return uid in self._arrival_round

    def total_ever_received(self) -> int:
        return len(self._arrival_round)

    def bulk_add(self, updates: Iterable[Update], round_no: int) -> int:
        """Add many updates; returns how many were new."""
        return sum(1 for u in updates if self.add(u, round_no))
