"""The content source: releases stream chunks round by round.

A special, assumed-correct node holds the content and "generates and
periodically sends chunks of this content (also called updates), to a
set of nodes chosen uniformly at random" (section II-A).  The paper's
deployment parameters: a fixed-rate video stream, 938-byte updates
grouped in windows of 40 packets, one-second rounds, and updates
released 10 seconds before their playout deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["StreamSchedule", "validate_rate_steps"]


def validate_rate_steps(steps) -> tuple:
    """Validate and normalise a rate ramp as ``(from_round, rate)`` pairs.

    The single validator for every layer the schedule flows through
    (:class:`~repro.scenarios.spec.ScenarioSpec` →
    :class:`~repro.core.config.PagConfig` → :class:`StreamSchedule`):
    rounds must be non-negative and strictly increasing, rates strictly
    positive.  Returns the steps as a normalised tuple of
    ``(int, float)`` pairs.
    """
    normalised = tuple(
        (int(from_round), float(rate)) for from_round, rate in steps
    )
    previous = -1
    for from_round, rate in normalised:
        if from_round < 0:
            raise ValueError("rate steps cannot start before round 0")
        if from_round <= previous:
            raise ValueError(
                "rate schedule steps must have strictly increasing rounds"
            )
        if rate <= 0:
            raise ValueError("scheduled stream rates must be positive")
        previous = from_round
    return normalised


@dataclass
class StreamSchedule:
    """Deterministic chunk-release schedule for a constant-bit-rate stream.

    Attributes:
        rate_kbps: stream bit rate (e.g. 300 for the paper's base case,
            or the quality ladder of Table I).
        update_bytes: chunk payload size (938 B in the deployment).
        playout_delay_rounds: rounds between release and playout deadline
            (10 in the deployment: "updates ... are released 10 seconds
            before being consumed by the nodes' media player").
        window: packets per source window (40 in the deployment); the
            source spreads a window's packets across its fanout.
        rate_schedule: optional per-round rate ramp as sorted
            ``(from_round, rate_kbps)`` steps — from each step's round
            on, the stream runs at that rate (``rate_kbps`` applies
            before the first step).  Adaptive-bitrate sources do exactly
            this when the audience or the link budget changes
            mid-session; the ``rate-ramp`` scenario drives it.
    """

    rate_kbps: float
    update_bytes: int = 938
    playout_delay_rounds: int = 10
    window: int = 40
    round_seconds: float = 1.0
    rate_schedule: tuple = ()
    _next_uid: int = field(default=0, repr=False)
    _carry_bits: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.rate_kbps <= 0:
            raise ValueError("stream rate must be positive")
        if self.update_bytes <= 0:
            raise ValueError("update size must be positive")
        if self.playout_delay_rounds < 1:
            raise ValueError("playout delay must be at least one round")
        self.rate_schedule = validate_rate_steps(self.rate_schedule)

    def rate_for(self, round_no: int) -> float:
        """The stream rate in effect during ``round_no``."""
        rate = self.rate_kbps
        for from_round, step_rate in self.rate_schedule:
            if from_round > round_no:
                break
            rate = step_rate
        return rate

    def updates_per_round(self, round_no: int = 0) -> float:
        """Average number of chunks released per round (may be fractional)."""
        bits_per_round = self.rate_for(round_no) * 1000.0 * self.round_seconds
        return bits_per_round / (self.update_bytes * 8.0)

    def release(self, round_no: int, session: int = 0) -> List["Update"]:
        """Chunks released during ``round_no``.

        A fractional per-round rate is honoured exactly over time by
        carrying the remainder (e.g. 300 Kbps at 938 B -> 39.98 chunks
        per round: most rounds release 40, occasionally 39).  With a
        ``rate_schedule`` the rate in effect for this round applies; the
        carry crosses rate steps so no bit is lost at a ramp boundary.
        """
        from repro.gossip.updates import Update

        bits = (
            self.rate_for(round_no) * 1000.0 * self.round_seconds
            + self._carry_bits
        )
        count = int(bits // (self.update_bytes * 8))
        self._carry_bits = bits - count * self.update_bytes * 8
        released = []
        for _ in range(count):
            released.append(
                Update(
                    uid=self._next_uid,
                    round_created=round_no,
                    expiry_round=round_no + self.playout_delay_rounds,
                    payload_bytes=self.update_bytes,
                    session=session,
                )
            )
            self._next_uid += 1
        return released

    def total_released(self) -> int:
        """Number of chunks released so far."""
        return self._next_uid
