"""Plain push-gossip dissemination: the unaccountable, non-private base.

This is the textbook protocol of section II-A (Fig. 1): each round, a
node forwards the updates it received during the previous round to
``f`` uniformly random successors.  It provides no accountability (a
selfish node can silently drop everything) and no privacy (updates and
their routes are visible to any observer).  It serves as:

* the dissemination engine reused by the baselines, and
* the lower envelope for bandwidth comparisons (any accountable or
  private protocol pays at least this much).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, List, Tuple

from repro.gossip.source import StreamSchedule
from repro.gossip.updates import Update, UpdateStore
from repro.membership.views import ViewProvider
from repro.sim.message import Message, WireSizes
from repro.sim.network import Network
from repro.sim.node import SimNode

__all__ = ["PushMessage", "PlainGossipNode", "PlainSourceNode"]


@dataclass
class PushMessage(Message):
    """A batch of updates pushed to one successor."""

    updates: Tuple[Update, ...] = ()
    kind: ClassVar[str] = "push"

    def size_bytes(self, sizes: WireSizes) -> int:
        payload = sum(u.payload_bytes + sizes.update_id for u in self.updates)
        return sizes.header + payload


class PlainGossipNode(SimNode):
    """A correct plain-gossip participant.

    Forwards every update exactly once (infect-and-die on first
    reception) to the round's successors.
    """

    def __init__(
        self,
        node_id: int,
        network: Network,
        views: ViewProvider,
    ) -> None:
        super().__init__(node_id, network)
        self.views = views
        self.store = UpdateStore()
        self._outbox: List[Update] = []

    def begin_round(self, round_no: int) -> None:
        if not self._outbox:
            return
        to_forward = [
            u for u in self._outbox if not u.is_expired(round_no)
        ]
        self._outbox = []
        if not to_forward:
            return
        for successor in self.views.successors(self.node_id, round_no):
            self.send(
                PushMessage(
                    sender=self.node_id,
                    recipient=successor,
                    round_no=round_no,
                    updates=tuple(to_forward),
                )
            )

    def on_message(self, message: Message) -> None:
        if not isinstance(message, PushMessage):
            return
        for update in message.updates:
            if self.store.add(update, message.round_no):
                self._outbox.append(update)

    def end_round(self, round_no: int) -> None:
        self.store.drop_expired(round_no)

    # -- reporting ---------------------------------------------------------

    def delivery_ratio(self, total_released: int) -> float:
        """Fraction of all released chunks this node ever received."""
        if total_released == 0:
            return 1.0
        return len(self.store) / total_released


class PlainSourceNode(SimNode):
    """The stream source: releases chunks and seeds them to random nodes.

    The source spreads each round's chunks over ``fanout`` uniformly
    chosen consumers (each chunk goes to ``seed_copies`` of them).
    """

    def __init__(
        self,
        node_id: int,
        network: Network,
        views: ViewProvider,
        schedule: StreamSchedule,
        seed_copies: int = 1,
    ) -> None:
        super().__init__(node_id, network)
        self.views = views
        self.schedule = schedule
        self.seed_copies = seed_copies
        self.released: List[Update] = []

    def begin_round(self, round_no: int) -> None:
        chunks = self.schedule.release(round_no)
        self.released.extend(chunks)
        if not chunks:
            return
        targets = self.views.successors(self.node_id, round_no)
        if not targets:
            return
        per_target: Dict[int, List[Update]] = {t: [] for t in targets}
        for index, chunk in enumerate(chunks):
            for copy in range(min(self.seed_copies, len(targets))):
                target = targets[(index + copy) % len(targets)]
                per_target[target].append(chunk)
        for target, batch in per_target.items():
            if batch:
                self.send(
                    PushMessage(
                        sender=self.node_id,
                        recipient=target,
                        round_no=round_no,
                        updates=tuple(batch),
                    )
                )

    def total_released(self) -> int:
        return len(self.released)
