"""Buffermaps: advertising owned updates to avoid duplicate transmission.

Section V-D ("Buffermap transmissions"): "A node sends to its
predecessors the hashes of a proportion of the messages it owns, in
order to avoid multiple receptions. ... the best results in terms of
bandwidth consumption were obtained when the updates of the last 4
rounds were hashed and transmitted."

In PAG the buffermap is privacy-preserving: instead of plaintext update
ids, node B sends ``H(u)_(p_j, M)`` for each recent update u, keyed by
the fresh prime it just issued to that particular predecessor.  The
predecessor hashes its own candidate updates under the same prime and
serves only those whose hash is absent.  Monitors never see the prime,
so the buffermap reveals nothing to them; the predecessor learns only
membership of updates *it already has* — which it would learn anyway by
serving them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.crypto.homomorphic import HomomorphicHasher
from repro.gossip.updates import Update

__all__ = ["HashedBuffermap", "PlainBuffermap", "DEFAULT_BUFFERMAP_DEPTH"]

#: Rounds of history advertised (the paper's tuned value).
DEFAULT_BUFFERMAP_DEPTH = 4


@dataclass(frozen=True)
class PlainBuffermap:
    """Cleartext buffermap (used by the non-private baselines).

    AcTinG-style protocols exchange update *identifiers* openly; this is
    precisely the information leak PAG removes.
    """

    uids: frozenset[int]

    @classmethod
    def from_store(cls, uids: Iterable[int]) -> "PlainBuffermap":
        return cls(uids=frozenset(uids))

    def missing(self, candidates: Iterable[Update]) -> List[Update]:
        return [u for u in candidates if u.uid not in self.uids]

    def __len__(self) -> int:
        return len(self.uids)


@dataclass(frozen=True)
class HashedBuffermap:
    """PAG's private buffermap: homomorphic hashes under a link prime.

    Attributes:
        hashes: the set {H(u)_(p, M) : u owned recently}.  The prime p is
            known only to the two endpoints of the link.
    """

    hashes: frozenset[int]

    @classmethod
    def build(
        cls,
        hasher: HomomorphicHasher,
        contents: Iterable[int],
        prime: int,
    ) -> "HashedBuffermap":
        """Hash each owned update's content under the link prime."""
        return cls(
            hashes=frozenset(hasher.hash(c, prime) for c in contents)
        )

    def filter_unknown(
        self,
        hasher: HomomorphicHasher,
        candidates: Iterable[Update],
        prime: int,
    ) -> List[Update]:
        """Updates whose hash is not advertised (i.e. worth serving).

        Run by the *sender* A after receiving B's KeyResponse: "node A
        can check if the updates in S_A are not in S_B, and thus avoid to
        send them, as node B already owns them" (section V-A).
        """
        return [
            u
            for u in candidates
            if hasher.hash(u.content, prime) not in self.hashes
        ]

    def split_known(
        self,
        hasher: HomomorphicHasher,
        candidates: Iterable[Update],
        prime: int,
    ) -> tuple[List[Update], List[Update]]:
        """Partition candidates into (unknown-to-peer, already-owned)."""
        unknown: List[Update] = []
        known: List[Update] = []
        for u in candidates:
            if hasher.hash(u.content, prime) in self.hashes:
                known.append(u)
            else:
                unknown.append(u)
        return unknown, known

    def __len__(self) -> int:
        return len(self.hashes)


def buffermap_hash_count(
    owned_by_round: Dict[int, Set[int]], current_round: int, depth: int
) -> int:
    """Number of hashes a buffermap of ``depth`` rounds carries.

    Bandwidth-model helper: each advertised update costs one hash value
    (64 B at the paper's 512-bit modulus) on the wire.
    """
    total = 0
    for rnd in range(max(0, current_round - depth + 1), current_round + 1):
        total += len(owned_by_round.get(rnd, ()))
    return total


__all__.append("buffermap_hash_count")
