"""Membership management: directory, per-round views, peer sampling.

Implements the service the paper assumes from Fireflies-style membership
protocols: every node can compute, for any node and round, that node's
successors and monitors (section III).
"""

from __future__ import annotations

from repro.membership.directory import Directory
from repro.membership.sampling import PeerSampler, chi_square_uniformity
from repro.membership.views import ViewProvider, default_fanout

__all__ = [
    "Directory",
    "PeerSampler",
    "ViewProvider",
    "chi_square_uniformity",
    "default_fanout",
]
