"""Per-round successor and monitor views.

Every node must be able to compute, for any node X and round R, the set
of successors X must serve and the monitors responsible for X — this is
what makes omissions *detectable*: monitors know whom X was supposed to
contact.  We realise the assumption with deterministic pseudo-random
assignment keyed on (session seed, node, round), which is how
deployments built on Fireflies-style membership realise it too (the
paper cites BAR Gossip [19] and FlightPath [27] for the same technique,
using a shared seed to derive verifiable partner lists).

Design points:

* **Successors** are re-drawn every round (gossip's uniform random peer
  selection; fanout ``f ~ log N``, section VII-D).
* **Monitors** are a stable per-node set for the session.  In Fig. 6 the
  monitors of B are a fixed set {A, D, G}; stability is also what lets
  monitors accumulate the per-round hash products of section V-C.
* **Predecessors** of X at round R are, by construction, the nodes that
  picked X as successor; the provider inverts the successor relation.
* The **source** disseminates but never receives: it is excluded from
  successor targets' obligation checks but can appear as a predecessor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.membership.directory import Directory
from repro.sim.rng import SeedSequence

__all__ = ["ViewProvider", "default_fanout"]


def default_fanout(n: int) -> int:
    """Fanout used by the paper: ~log10(N), at least 3.

    Section VII-A: "3 [successors and monitors] when the system contains
    1000 nodes"; section VII-D: "in a system of N nodes, each user has
    log(N) successors" — log10(10^3) = 3 matches the stated setting, and
    log10(10^6) = 6 matches the Fig. 9 scalability trend.
    """
    if n < 2:
        raise ValueError("fanout undefined for fewer than 2 nodes")
    return max(3, round(math.log10(n)))


@dataclass
class ViewProvider:
    """Deterministic successor / monitor / predecessor views.

    Attributes:
        directory: session membership.
        seeds: seed sequence shared by all nodes of the session (publicly
            derivable, so views are verifiable by monitors).
        fanout: number of successors per node per round.
        monitors_per_node: size of each node's monitor set (paper uses
            the same value as the fanout by default, section VII-A).
        active_from: node id -> first round the node participates
            (absent means round 0).  The membership service announces
            joining nodes ahead of their arrival — they are in the
            directory, and their *monitor* set is assigned immediately
            (monitor sets are session-stable, section V-C) — but nobody
            is obliged to serve or contact a node before it arrives, so
            successor draws exclude it until its activation round.  The
            filter is a pure function of (directory, schedule, round),
            which keeps views verifiable by monitors and deterministic
            across execution-policy replicas.
    """

    directory: Directory
    seeds: SeedSequence
    fanout: int = 3
    monitors_per_node: int = 3
    active_from: Dict[int, int] = field(default_factory=dict)
    _successor_cache: Dict[int, Dict[int, List[int]]] = field(
        default_factory=dict, repr=False
    )
    _predecessor_cache: Dict[int, Dict[int, List[int]]] = field(
        default_factory=dict, repr=False
    )
    _monitor_cache: Dict[int, List[int]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        n = self.directory.size
        if not 1 <= self.fanout < n:
            raise ValueError(
                f"fanout {self.fanout} invalid for {n} nodes"
            )
        if not 1 <= self.monitors_per_node < n:
            raise ValueError(
                f"monitor set size {self.monitors_per_node} invalid for "
                f"{n} nodes"
            )

    # -- successors --------------------------------------------------------

    def successors(self, node_id: int, round_no: int) -> List[int]:
        """The ``fanout`` nodes that ``node_id`` must serve in ``round_no``.

        Uniformly drawn without replacement among other consumers (the
        source holds the content; serving it is pointless and the paper's
        obligation R2 concerns consumers).
        """
        per_round = self._successor_cache.setdefault(round_no, {})
        if node_id not in per_round:
            active = self.active_from
            if active.get(node_id, 0) > round_no:
                # A node that has not arrived yet serves nobody — and
                # owes nobody a serve, so its monitors expect nothing.
                per_round[node_id] = []
                return []
            rng = self.seeds.stream("succ", node_id, round_no)
            candidates = [
                m
                for m in self.directory.members
                if m != node_id
                and m != self.directory.source_id
                and active.get(m, 0) <= round_no
            ]
            k = min(self.fanout, len(candidates))
            per_round[node_id] = sorted(rng.sample(candidates, k))
        return list(per_round[node_id])

    def predecessors(self, node_id: int, round_no: int) -> List[int]:
        """Nodes whose successor list at ``round_no`` contains ``node_id``."""
        per_round = self._predecessor_cache.get(round_no)
        if per_round is None:
            per_round = {m: [] for m in self.directory.members}
            for member in self.directory.members:
                for succ in self.successors(member, round_no):
                    per_round[succ].append(member)
            self._predecessor_cache[round_no] = per_round
        return list(per_round.get(node_id, []))

    # -- monitors ----------------------------------------------------------

    def monitors(self, node_id: int) -> List[int]:
        """The stable monitor set of ``node_id`` for this session."""
        if node_id not in self._monitor_cache:
            rng = self.seeds.stream("mon", node_id)
            candidates = [
                m
                for m in self.directory.members
                if m != node_id and m != self.directory.source_id
            ]
            k = min(self.monitors_per_node, len(candidates))
            self._monitor_cache[node_id] = sorted(rng.sample(candidates, k))
        return list(self._monitor_cache[node_id])

    def monitored_by(self, monitor_id: int) -> List[int]:
        """All nodes whose monitor set contains ``monitor_id``."""
        return [
            m
            for m in self.directory.members
            if monitor_id in self.monitors(m)
        ]

    def prune_rounds_before(self, round_no: int) -> None:
        """Drop cached views older than ``round_no`` (memory hygiene)."""
        for cache in (self._successor_cache, self._predecessor_cache):
            for rnd in [r for r in cache if r < round_no]:
                del cache[rnd]
