"""Uniform random peer sampling.

Gossip protocols need a peer-sampling service that returns uniformly
random members (the paper cites SCAMP [20] and the peer-sampling survey
of Jelasity et al. [21]).  With full membership available in simulation,
uniform sampling is exact rather than approximate; this module provides
the service interface plus statistical helpers used by the tests to
check uniformity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from repro.membership.directory import Directory
from repro.sim.rng import SeedSequence

__all__ = ["PeerSampler", "chi_square_uniformity"]


@dataclass
class PeerSampler:
    """Draws uniform peer samples for a node.

    Each (node, round, purpose) triple gets an independent reproducible
    stream, so concurrent protocols in one run do not interfere.
    """

    directory: Directory
    seeds: SeedSequence

    def sample(
        self,
        node_id: int,
        round_no: int,
        count: int,
        purpose: str = "gossip",
        exclude_source: bool = True,
    ) -> List[int]:
        """Sample ``count`` distinct peers for ``node_id``, excluding itself.

        Args:
            exclude_source: the content source never needs to be served.
        """
        candidates = [
            m
            for m in self.directory.members
            if m != node_id
            and not (exclude_source and m == self.directory.source_id)
        ]
        if count > len(candidates):
            raise ValueError(
                f"cannot sample {count} peers from {len(candidates)} "
                "candidates"
            )
        rng = self.seeds.stream("sample", purpose, node_id, round_no)
        return sorted(rng.sample(candidates, count))


def chi_square_uniformity(
    observations: Sequence[int], population: Sequence[int]
) -> float:
    """Pearson chi-square statistic of observed picks vs uniform.

    Used in tests to check that peer selection does not favour any node.
    Returns the statistic; the caller compares against a chi-square
    quantile for ``len(population) - 1`` degrees of freedom.
    """
    if not observations:
        raise ValueError("no observations")
    counts = Counter(observations)
    unknown = set(counts) - set(population)
    if unknown:
        raise ValueError(f"observations outside population: {unknown}")
    expected = len(observations) / len(population)
    return sum(
        (counts.get(member, 0) - expected) ** 2 / expected
        for member in population
    )
