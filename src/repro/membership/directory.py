"""Membership directory: the set of nodes participating in a session.

The paper assumes full membership knowledge maintained by a protocol
such as Fireflies [18] ("we assume that a membership protocol provides
nodes with a set of successors and monitors that can be identified, for
a given round, by each node in the system").  Nodes are identified by
unique integers, e.g. derived from their IP address (section III), and
cannot forge multiple identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List

__all__ = ["Directory"]


@dataclass
class Directory:
    """Immutable-by-convention list of member node ids.

    Attributes:
        members: sorted unique node identifiers.
        source_id: the distinguished content source (assumed correct).
    """

    members: List[int] = field(default_factory=list)
    source_id: int | None = None

    def __post_init__(self) -> None:
        unique = sorted(set(self.members))
        if len(unique) != len(self.members):
            raise ValueError("duplicate node identifiers in membership")
        self.members = unique
        if self.source_id is not None and self.source_id not in unique:
            raise ValueError(
                f"source {self.source_id} is not a member of the session"
            )

    @classmethod
    def of_size(cls, n: int, source_id: int = 0) -> "Directory":
        """Create a directory of ``n`` nodes with ids ``0..n-1``."""
        if n < 2:
            raise ValueError("a gossip session needs at least two nodes")
        return cls(members=list(range(n)), source_id=source_id)

    @property
    def size(self) -> int:
        return len(self.members)

    def consumers(self) -> List[int]:
        """All members except the source (the nodes that receive content)."""
        return [m for m in self.members if m != self.source_id]

    def others(self, node_id: int) -> List[int]:
        """All members except ``node_id``."""
        return [m for m in self.members if m != node_id]

    def __contains__(self, node_id: int) -> bool:
        return node_id in set(self.members)

    def __iter__(self) -> Iterator[int]:
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def validate_subset(self, nodes: Iterable[int]) -> None:
        member_set = set(self.members)
        missing = [n for n in nodes if n not in member_set]
        if missing:
            raise ValueError(f"nodes {missing} are not session members")
