"""Pluggable modular-arithmetic backends for the crypto hot path.

Every homomorphic-hash evaluation is one modular exponentiation, and the
paper's throughput numbers (Table I: 4,800 hashes/s/core with openssl)
hinge on how fast that primitive runs.  This module isolates the
primitive behind a tiny interface so the rest of the codebase never
calls ``pow`` directly on the hot path:

* :class:`PythonBackend` — CPython's built-in three-argument ``pow``;
  always available, the default.
* :class:`Gmpy2Backend` — GMP via ``gmpy2`` when the package is
  installed; an order of magnitude faster at the paper's 512-bit sizes.

Selection
---------
``resolve_backend("auto")`` (the default) picks gmpy2 when importable
and falls back to pure Python.  The choice can be forced per process
with the ``REPRO_CRYPTO_BACKEND`` environment variable (``python``,
``gmpy2`` or ``auto``) or per session via ``PagConfig.crypto_backend``.

Operation *counting* is deliberately not done here: backends are pure
arithmetic, and the Table I accounting lives at the protocol layer
(:class:`~repro.crypto.homomorphic.HomomorphicHasher`), so swapping
backends can never change reported operation counts.
"""

from __future__ import annotations

import os
from typing import List, Optional

__all__ = [
    "Backend",
    "PythonBackend",
    "Gmpy2Backend",
    "FixedBaseCache",
    "available_backends",
    "resolve_backend",
    "default_backend",
    "gmpy2_available",
]

_ENV_VAR = "REPRO_CRYPTO_BACKEND"

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common case in CI
    _gmpy2 = None


class Backend:
    """Modular arithmetic primitive provider.

    Subclasses implement :meth:`powmod`; :meth:`mulmod` has a portable
    default.  Backends are stateless and shareable across hashers.
    """

    name: str = "abstract"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus`` for non-negative exponents."""
        raise NotImplementedError

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return (a * b) % modulus

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class PythonBackend(Backend):
    """CPython built-in ``pow`` — always available."""

    name = "python"

    # Bound straight to the builtin: no per-call indirection beyond the
    # method lookup the caller already pays.
    powmod = staticmethod(pow)


class Gmpy2Backend(Backend):
    """GMP-accelerated arithmetic via ``gmpy2``.

    Construction raises :class:`RuntimeError` when gmpy2 is missing, so
    callers can treat availability and selection uniformly.
    """

    name = "gmpy2"

    def __init__(self) -> None:
        if _gmpy2 is None:
            raise RuntimeError(
                "gmpy2 is not installed; use the 'python' backend"
            )
        self._powmod = _gmpy2.powmod
        self._mpz = _gmpy2.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._powmod(base, exponent, modulus))

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * b % modulus)


def gmpy2_available() -> bool:
    return _gmpy2 is not None


def available_backends() -> List[str]:
    names = ["python"]
    if gmpy2_available():
        names.append("gmpy2")
    return names


def resolve_backend(choice: Optional[str] = None) -> Backend:
    """Build the backend named by ``choice`` / the environment.

    Args:
        choice: ``"python"``, ``"gmpy2"``, ``"auto"`` or None.  None
            defers to the ``REPRO_CRYPTO_BACKEND`` environment variable,
            itself defaulting to ``auto``.

    ``auto`` prefers gmpy2 when importable, else pure Python.  Asking
    for gmpy2 explicitly when it is missing raises, so a mis-provisioned
    deployment fails loudly instead of silently running 10x slower.
    """
    if choice is None:
        choice = os.environ.get(_ENV_VAR, "auto")
    choice = choice.lower()
    if choice == "auto":
        return Gmpy2Backend() if gmpy2_available() else PythonBackend()
    if choice == "python":
        return PythonBackend()
    if choice == "gmpy2":
        return Gmpy2Backend()
    raise ValueError(
        f"unknown crypto backend {choice!r}; "
        f"expected one of: auto, python, gmpy2"
    )


_default: Optional[Backend] = None


def default_backend() -> Backend:
    """Process-wide backend singleton (env-selected, built lazily)."""
    global _default
    if _default is None:
        _default = resolve_backend()
    return _default


class FixedBaseCache:
    """Fixed-base exponentiation: one base raised to many exponents.

    Two call sites repeatedly exponentiate the same base: buffermap and
    serve-membership hashing (each update content is hashed under a
    fresh prime per link per round) and the monitor rekey path
    (message 8 of Fig. 6 raises the same attested hash to several
    cofactors).  Precomputing the radix-``2^w`` table
    ``base^(j * 2^(w*i)) mod M`` turns every subsequent exponentiation
    into ~``bits/w`` modular multiplications with *no* squarings,
    versus ``bits`` squarings plus multiplications for a cold ``pow``.

    ``window=1`` degenerates to the classic power ladder — one multiply
    per table level, so the table amortises after a single reuse; use
    it for bases expected to see only a few wide exponents.  ``window=4``
    quarters the per-call multiplies at a table cost of 15 multiplies
    per 4 exponent bits; use it for heavily reused bases.  The table
    grows lazily with the widest exponent seen.
    """

    __slots__ = (
        "base", "modulus", "window", "_mask", "_levels", "_tops", "_capacity"
    )

    def __init__(self, base: int, modulus: int, window: int = 1) -> None:
        if modulus <= 1:
            raise ValueError("modulus must exceed 1")
        if window < 1:
            raise ValueError("window must be at least 1 bit")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self._mask = (1 << window) - 1
        #: level i holds base^(j * 2^(w*i)) for j = 1 .. 2^w - 1.
        self._levels: list = []
        #: tops[i] == base^(2^(w*i)), the generator of level i.
        self._tops: list = [self.base]
        #: exponents below this are covered by the current levels.
        self._capacity = 1

    def _add_level(self) -> None:
        m = self.modulus
        top = self._tops[len(self._levels)]
        entries = [top]
        for _ in range(self._mask - 1):
            entries.append(entries[-1] * top % m)
        self._levels.append(entries)
        # Generator of the next level: base^(2^(w*(i+1))) is the level's
        # widest entry times its generator (j = 2^w - 1 plus j = 1).
        self._tops.append(entries[-1] * top % m)
        self._capacity = 1 << (self.window * len(self._levels))

    def powmod(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` using the precomputed table."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        m = self.modulus
        w = self.window
        mask = self._mask
        levels = self._levels
        while exponent >= self._capacity:
            self._add_level()
        acc = 1
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc * levels[i][digit - 1] % m
            exponent >>= w
            i += 1
        return acc % m
