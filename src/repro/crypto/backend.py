"""Pluggable modular-arithmetic backends for the crypto hot path.

Every homomorphic-hash evaluation is one modular exponentiation, and the
paper's throughput numbers (Table I: 4,800 hashes/s/core with openssl)
hinge on how fast that primitive runs.  This module isolates the
primitive behind a tiny interface so the rest of the codebase never
calls ``pow`` directly on the hot path:

* :class:`PythonBackend` — CPython's built-in three-argument ``pow``;
  always available, the default.
* :class:`Gmpy2Backend` — GMP via ``gmpy2`` when the package is
  installed; an order of magnitude faster at the paper's 512-bit sizes.

Selection
---------
``resolve_backend("auto")`` (the default) picks gmpy2 when importable
and falls back to pure Python.  The choice can be forced per process
with the ``REPRO_CRYPTO_BACKEND`` environment variable (``python``,
``gmpy2`` or ``auto``) or per session via ``PagConfig.crypto_backend``.

Operation *counting* is deliberately not done here: backends are pure
arithmetic, and the Table I accounting lives at the protocol layer
(:class:`~repro.crypto.homomorphic.HomomorphicHasher`), so swapping
backends can never change reported operation counts.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Backend",
    "PythonBackend",
    "Gmpy2Backend",
    "FixedBaseCache",
    "SharedLadderTable",
    "available_backends",
    "resolve_backend",
    "default_backend",
    "gmpy2_available",
    "multi_powmod",
]

_ENV_VAR = "REPRO_CRYPTO_BACKEND"

try:  # pragma: no cover - exercised only where gmpy2 is installed
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - the common case in CI
    _gmpy2 = None


def _multi_powmod_window(bits: int) -> int:
    """Window width for an interleaved multi-exponentiation.

    Standard windowing trade-off: per pair the table costs ``2^w - 2``
    multiplies while each window of the shared squaring pass costs at
    most one multiply per pair, so wider exponents amortise wider
    windows.  The thresholds mirror the usual square-and-multiply
    break-evens; the result is exact for every width, only the constant
    factor moves.
    """
    if bits <= 8:
        return 1
    if bits <= 24:
        return 2
    if bits <= 96:
        return 3
    return 4


class Backend:
    """Modular arithmetic primitive provider.

    Subclasses implement :meth:`powmod`; :meth:`mulmod` and
    :meth:`multi_powmod` have portable defaults.  Backends are stateless
    and shareable across hashers.
    """

    name: str = "abstract"

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent mod modulus`` for non-negative exponents."""
        raise NotImplementedError

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return (a * b) % modulus

    def multi_powmod(
        self, pairs: Iterable[Tuple[int, int]], modulus: int
    ) -> int:
        """``prod base_i ** exp_i mod modulus`` in one interleaved pass.

        Straus's algorithm (interleaved windowed multi-exponentiation,
        the small-batch end of Straus/Pippenger): all exponents share a
        single squaring chain — ``max_bits`` squarings total instead of
        ``k * max_bits`` — while per-pair window tables keep the
        multiply count at ``~bits/w`` each.  The result is bit-identical
        to folding per-pair ``powmod`` results, for any input.

        Args:
            pairs: iterable of ``(base, exponent)`` with non-negative
                exponents; an empty batch folds to the identity.
            modulus: shared modulus (> 0).
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        live = []
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("exponents must be non-negative")
            if exponent:
                live.append((base % modulus, exponent))
        if not live:
            return 1 % modulus
        if len(live) == 1:
            return self.powmod(live[0][0], live[0][1], modulus)
        bits = max(exponent.bit_length() for _, exponent in live)
        w = _multi_powmod_window(bits)
        mask = (1 << w) - 1
        tables = []
        for base, _exponent in live:
            table = [base]
            for _ in range(mask - 1):
                table.append(table[-1] * base % modulus)
            tables.append(table)
        acc = 1
        for i in range((bits + w - 1) // w - 1, -1, -1):
            if acc != 1:
                for _ in range(w):
                    acc = acc * acc % modulus
            shift = w * i
            for table, (_base, exponent) in zip(tables, live):
                digit = (exponent >> shift) & mask
                if digit:
                    acc = acc * table[digit - 1] % modulus
        return acc % modulus

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class PythonBackend(Backend):
    """CPython built-in ``pow`` — always available."""

    name = "python"

    # Bound straight to the builtin: no per-call indirection beyond the
    # method lookup the caller already pays.
    powmod = staticmethod(pow)


class Gmpy2Backend(Backend):
    """GMP-accelerated arithmetic via ``gmpy2``.

    Construction raises :class:`RuntimeError` when gmpy2 is missing, so
    callers can treat availability and selection uniformly.
    """

    name = "gmpy2"

    def __init__(self) -> None:
        if _gmpy2 is None:
            raise RuntimeError(
                "gmpy2 is not installed; use the 'python' backend"
            )
        self._powmod = _gmpy2.powmod
        self._mpz = _gmpy2.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._powmod(base, exponent, modulus))

    def mulmod(self, a: int, b: int, modulus: int) -> int:
        return int(self._mpz(a) * b % modulus)

    def multi_powmod(
        self, pairs: Iterable[Tuple[int, int]], modulus: int
    ) -> int:
        """Straus interleaving over ``mpz`` limbs (GMP multiplies).

        Same algorithm and window policy as the portable default — the
        interleaved squaring chain is shared — with every product
        running in GMP, so the batched fold keeps its edge over per-pair
        ``powmod`` even on the fast backend.
        """
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        mpz = self._mpz
        m = mpz(modulus)
        live = []
        for base, exponent in pairs:
            if exponent < 0:
                raise ValueError("exponents must be non-negative")
            if exponent:
                live.append((mpz(base) % m, exponent))
        if not live:
            return 1 % modulus
        if len(live) == 1:
            return int(self._powmod(live[0][0], live[0][1], m))
        bits = max(exponent.bit_length() for _, exponent in live)
        w = _multi_powmod_window(bits)
        mask = (1 << w) - 1
        tables = []
        for base, _exponent in live:
            table = [base]
            for _ in range(mask - 1):
                table.append(table[-1] * base % m)
            tables.append(table)
        acc = mpz(1)
        for i in range((bits + w - 1) // w - 1, -1, -1):
            if acc != 1:
                for _ in range(w):
                    acc = acc * acc % m
            shift = w * i
            for table, (_base, exponent) in zip(tables, live):
                digit = (exponent >> shift) & mask
                if digit:
                    acc = acc * table[digit - 1] % m
        return int(acc % m)


def gmpy2_available() -> bool:
    return _gmpy2 is not None


def multi_powmod(
    pairs: Iterable[Tuple[int, int]],
    modulus: int,
    backend: Optional[Backend] = None,
) -> int:
    """``prod base_i ** exp_i mod modulus`` via one interleaved pass.

    Convenience wrapper over :meth:`Backend.multi_powmod` using the
    process-default backend when none is given.
    """
    return (backend or default_backend()).multi_powmod(pairs, modulus)


def available_backends() -> List[str]:
    names = ["python"]
    if gmpy2_available():
        names.append("gmpy2")
    return names


def resolve_backend(choice: Optional[str] = None) -> Backend:
    """Build the backend named by ``choice`` / the environment.

    Args:
        choice: ``"python"``, ``"gmpy2"``, ``"auto"`` or None.  None
            defers to the ``REPRO_CRYPTO_BACKEND`` environment variable,
            itself defaulting to ``auto``.

    ``auto`` prefers gmpy2 when importable, else pure Python.  Asking
    for gmpy2 explicitly when it is missing raises, so a mis-provisioned
    deployment fails loudly instead of silently running 10x slower.
    """
    if choice is None:
        choice = os.environ.get(_ENV_VAR, "auto")
    choice = choice.lower()
    if choice == "auto":
        return Gmpy2Backend() if gmpy2_available() else PythonBackend()
    if choice == "python":
        return PythonBackend()
    if choice == "gmpy2":
        return Gmpy2Backend()
    raise ValueError(
        f"unknown crypto backend {choice!r}; "
        f"expected one of: auto, python, gmpy2"
    )


_default: Optional[Backend] = None


def default_backend() -> Backend:
    """Process-wide backend singleton (env-selected, built lazily)."""
    global _default
    if _default is None:
        _default = resolve_backend()
    return _default


class FixedBaseCache:
    """Fixed-base exponentiation: one base raised to many exponents.

    Two call sites repeatedly exponentiate the same base: buffermap and
    serve-membership hashing (each update content is hashed under a
    fresh prime per link per round) and the monitor rekey path
    (message 8 of Fig. 6 raises the same attested hash to several
    cofactors).  Precomputing the radix-``2^w`` table
    ``base^(j * 2^(w*i)) mod M`` turns every subsequent exponentiation
    into ~``bits/w`` modular multiplications with *no* squarings,
    versus ``bits`` squarings plus multiplications for a cold ``pow``.

    ``window=1`` degenerates to the classic power ladder — one multiply
    per table level, so the table amortises after a single reuse; use
    it for bases expected to see only a few wide exponents.  ``window=4``
    quarters the per-call multiplies at a table cost of 15 multiplies
    per 4 exponent bits; use it for heavily reused bases.  The table
    grows lazily with the widest exponent seen.
    """

    __slots__ = (
        "base", "modulus", "window", "_mask", "_levels", "_tops", "_capacity"
    )

    def __init__(self, base: int, modulus: int, window: int = 1) -> None:
        if modulus <= 1:
            raise ValueError("modulus must exceed 1")
        if window < 1:
            raise ValueError("window must be at least 1 bit")
        self.base = base % modulus
        self.modulus = modulus
        self.window = window
        self._mask = (1 << window) - 1
        #: level i holds base^(j * 2^(w*i)) for j = 1 .. 2^w - 1.
        self._levels: list = []
        #: tops[i] == base^(2^(w*i)), the generator of level i.
        self._tops: list = [self.base]
        #: exponents below this are covered by the current levels.
        self._capacity = 1

    @classmethod
    def from_shared(
        cls,
        base: int,
        modulus: int,
        window: int,
        levels: Sequence[Sequence[int]],
        tops: Sequence[int],
    ) -> "FixedBaseCache":
        """Wrap precomputed (read-only) ladder levels without rebuilding.

        ``levels``/``tops`` come from a :class:`SharedLadderTable`; the
        outer sequences are copied so lazy growth appends locally, while
        the level tuples themselves are shared untouched — safe across
        threads and cheap across forked processes.
        """
        cache = cls.__new__(cls)
        cache.base = base % modulus
        cache.modulus = modulus
        cache.window = window
        cache._mask = (1 << window) - 1
        cache._levels = list(levels)
        cache._tops = list(tops)
        cache._capacity = 1 << (window * len(cache._levels))
        return cache

    def _add_level(self) -> None:
        m = self.modulus
        top = self._tops[len(self._levels)]
        entries = [top]
        for _ in range(self._mask - 1):
            entries.append(entries[-1] * top % m)
        self._levels.append(entries)
        # Generator of the next level: base^(2^(w*(i+1))) is the level's
        # widest entry times its generator (j = 2^w - 1 plus j = 1).
        self._tops.append(entries[-1] * top % m)
        self._capacity = 1 << (self.window * len(self._levels))

    def powmod(self, exponent: int) -> int:
        """``base ** exponent mod modulus`` using the precomputed table."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        m = self.modulus
        w = self.window
        mask = self._mask
        levels = self._levels
        while exponent >= self._capacity:
            self._add_level()
        acc = 1
        i = 0
        while exponent:
            digit = exponent & mask
            if digit:
                acc = acc * levels[i][digit - 1] % m
            exponent >>= w
            i += 1
        return acc % m


class SharedLadderTable:
    """Precomputed, read-only fixed-base ladder levels for hot bases.

    A :class:`FixedBaseCache` is rebuilt from scratch by every hasher
    that meets a base — which means every worker replica of a parallel
    run rebuilds *identical* tables for the session-lifetime bases (the
    deterministic update contents a stream schedule will release).  This
    table holds those levels once, built in the parent before the worker
    pools start: process workers inherit the pages for free on fork, and
    the structure is plain tuples of ints so it pickles cleanly for
    spawn/thread modes (it travels with the session bootstrap).

    Entries are keyed by the raw base value exactly as hashers see it
    (update contents are *not* pre-reduced), and every level is an
    immutable tuple — adopters copy only the outer list, so concurrent
    readers can never observe a mutation.
    """

    __slots__ = ("modulus", "window", "_entries")

    def __init__(
        self,
        modulus: int,
        window: int,
        entries: Dict[int, Tuple[tuple, tuple]],
    ) -> None:
        if modulus <= 1:
            raise ValueError("modulus must exceed 1")
        if window < 1:
            raise ValueError("window must be at least 1 bit")
        self.modulus = modulus
        self.window = window
        #: base -> (levels, tops): levels as tuples of tuples, tops as a
        #: tuple, both directly adoptable by FixedBaseCache.from_shared.
        self._entries = entries

    @classmethod
    def build(
        cls,
        bases: Iterable[int],
        modulus: int,
        window: int = 4,
        capacity_bits: int = 64,
    ) -> "SharedLadderTable":
        """Precompute ladder levels covering ``capacity_bits`` exponents.

        Args:
            bases: base values (deduplicated; stored under the raw,
                unreduced key the hashers use).
            modulus: the session modulus.
            window: radix width (4 matches the hasher's choice for the
                narrow per-link prime exponents).
            capacity_bits: widest exponent the shared levels must cover;
                wider exponents grow locally in the adopting cache.
        """
        levels_needed = max(1, -(-capacity_bits // window))
        entries = {}
        for base in bases:
            if base in entries:
                continue
            # Reuse FixedBaseCache's own (tested) level construction and
            # freeze the result, so the shared layout can never drift
            # from what from_shared adopters expect.
            cache = FixedBaseCache(base, modulus, window=window)
            for _ in range(levels_needed):
                cache._add_level()
            entries[base] = (
                tuple(tuple(level) for level in cache._levels),
                tuple(cache._tops),
            )
        return cls(modulus, window, entries)

    def get(self, base: int) -> Optional[Tuple[tuple, tuple]]:
        """``(levels, tops)`` for ``base``, or None when not tabled."""
        return self._entries.get(base)

    def __contains__(self, base: int) -> bool:
        return base in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SharedLadderTable bases={len(self._entries)} "
            f"window={self.window} modulus_bits={self.modulus.bit_length()}>"
        )
