"""Cryptographic substrate for the PAG reproduction.

Everything here is implemented from scratch in pure Python: Miller-Rabin
prime generation, RSA key generation / encryption / signatures, and the
unpadded-RSA homomorphic hash of section IV-B of the paper.  The goal is
to exercise the *actual algebra* of the protocol (every homomorphic
identity the monitors rely on is computed for real in tests and small
simulations), while also exposing operation counters for the large-scale
cost accounting of section VII.
"""

from __future__ import annotations

from repro.crypto.backend import (
    Backend,
    FixedBaseCache,
    Gmpy2Backend,
    PythonBackend,
    available_backends,
    default_backend,
    gmpy2_available,
    resolve_backend,
)
from repro.crypto.homomorphic import (
    DEFAULT_MODULUS_BITS,
    DEFAULT_PRIME_BITS,
    HomomorphicHasher,
    fresh_hasher,
    make_modulus,
)
from repro.crypto.keystore import CryptoCounters, KeyStore
from repro.crypto.primes import (
    PrimePool,
    generate_distinct_primes,
    generate_prime,
    is_prime,
    next_prime,
    product,
)
from repro.crypto.rsa import (
    DEFAULT_KEY_BITS,
    RsaKeyPair,
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
)

__all__ = [
    "DEFAULT_KEY_BITS",
    "DEFAULT_MODULUS_BITS",
    "DEFAULT_PRIME_BITS",
    "Backend",
    "CryptoCounters",
    "FixedBaseCache",
    "Gmpy2Backend",
    "HomomorphicHasher",
    "KeyStore",
    "PrimePool",
    "PythonBackend",
    "available_backends",
    "default_backend",
    "gmpy2_available",
    "resolve_backend",
    "RsaKeyPair",
    "RsaPrivateKey",
    "RsaPublicKey",
    "fresh_hasher",
    "generate_distinct_primes",
    "generate_keypair",
    "generate_prime",
    "is_prime",
    "make_modulus",
    "next_prime",
    "product",
]
