"""Public-key directory for simulated nodes.

Section III of the paper: "Nodes interested in a content have to obtain
the public key of its source using an external service."  Similarly the
per-node keys used in ``{m}pk(B)`` encryptions and ``<m>B`` signatures
must be resolvable by identity.  This module plays the role of that
external PKI in simulations.

Key generation of thousands of RSA-2048 pairs is prohibitively slow in
pure Python, so the keystore supports two modes:

* ``real`` — every node gets a genuine (small, configurable) RSA pair;
  used in tests/examples that exercise the actual algebra.
* ``counted`` — keys are lightweight stand-ins and only operation counts
  and byte sizes are tracked; used in large-scale bandwidth simulations,
  where the paper itself reports operation counts rather than CPU load
  (section VII-C).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair

__all__ = ["KeyStore", "CryptoCounters"]


@dataclass
class CryptoCounters:
    """Tally of cryptographic operations, in the units of Table I.

    The paper measures "the number of generated RSA encryptions and
    homomorphic hashes per second rather than the CPU load, which depends
    on the hardware used".
    """

    signatures: int = 0
    verifications: int = 0
    encryptions: int = 0
    decryptions: int = 0
    homomorphic_hashes: int = 0
    prime_generations: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "signatures": self.signatures,
            "verifications": self.verifications,
            "encryptions": self.encryptions,
            "decryptions": self.decryptions,
            "homomorphic_hashes": self.homomorphic_hashes,
            "prime_generations": self.prime_generations,
        }

    def add(self, other: "CryptoCounters") -> None:
        self.signatures += other.signatures
        self.verifications += other.verifications
        self.encryptions += other.encryptions
        self.decryptions += other.decryptions
        self.homomorphic_hashes += other.homomorphic_hashes
        self.prime_generations += other.prime_generations

    def reset(self) -> None:
        self.signatures = 0
        self.verifications = 0
        self.encryptions = 0
        self.decryptions = 0
        self.homomorphic_hashes = 0
        self.prime_generations = 0


#: Default seed for key generation.  The keystore's documented
#: contract is "seeded randomness so two runs produce identical keys";
#: an unseeded ``random.Random()`` default silently broke it for every
#: caller that never passed an rng (caught by ``repro lint`` DET102).
DEFAULT_KEYSTORE_SEED = 0x6B657973  # b"keys"


def _default_rng() -> random.Random:
    return random.Random(DEFAULT_KEYSTORE_SEED)


@dataclass
class KeyStore:
    """Maps node identifiers to RSA key pairs.

    Attributes:
        key_bits: modulus size for generated pairs (tests shrink this).
        rng: seeded randomness so two runs produce identical keys; the
            default is seeded with :data:`DEFAULT_KEYSTORE_SEED`.
    """

    key_bits: int = 512
    rng: random.Random = field(default_factory=_default_rng)
    _pairs: Dict[int, RsaKeyPair] = field(default_factory=dict)

    def register(self, node_id: int) -> RsaKeyPair:
        """Create (or return the existing) key pair for ``node_id``."""
        if node_id not in self._pairs:
            self._pairs[node_id] = generate_keypair(self.key_bits, self.rng)
        return self._pairs[node_id]

    def public_key(self, node_id: int) -> RsaPublicKey:
        """Resolve a node's public key, registering it on first use."""
        return self.register(node_id).public

    def key_pair(self, node_id: int) -> RsaKeyPair:
        if node_id not in self._pairs:
            raise KeyError(f"node {node_id} has no registered key pair")
        return self._pairs[node_id]

    def known_nodes(self) -> list[int]:
        return sorted(self._pairs)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._pairs

    def __len__(self) -> int:
        return len(self._pairs)


def signed_blob(
    keystore: KeyStore,
    signer: int,
    payload: bytes,
    counters: Optional[CryptoCounters] = None,
) -> tuple[bytes, int]:
    """Sign ``payload`` with the signer's key; returns (payload, signature).

    Mirrors the paper's ``<m>X`` notation.  Counts one signature.
    """
    pair = keystore.register(signer)
    if counters is not None:
        counters.signatures += 1
    return payload, pair.private.sign(payload)


def check_signed_blob(
    keystore: KeyStore,
    signer: int,
    payload: bytes,
    signature: int,
    counters: Optional[CryptoCounters] = None,
) -> bool:
    """Verify a ``<m>X`` blob against the registered public key."""
    if counters is not None:
        counters.verifications += 1
    return keystore.public_key(signer).verify(payload, signature)


__all__ += ["signed_blob", "check_signed_blob"]
