"""Prime number generation for PAG's homomorphic hashing keys.

PAG (Decouchant et al., ICDCS 2016, section III) assumes that "nodes can
generate prime numbers".  Every node, at every round, draws one fresh
prime per predecessor; the *product* of those primes becomes the round
key ``K(R, B)`` used in the homomorphic forwarding checks (section IV-B).

This module provides a deterministic Miller-Rabin primality test (exact
for 64-bit inputs, probabilistic with a negligible error bound above)
and seeded random prime generation so that simulations are reproducible.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterable, List, Optional, Set

__all__ = [
    "is_prime",
    "generate_prime",
    "generate_distinct_primes",
    "next_prime",
    "product",
    "PrimePool",
    "SMALL_PRIMES",
]

# Primes below 1000, used for cheap trial division before Miller-Rabin.
SMALL_PRIMES: List[int] = []


def _sieve_small_primes(limit: int = 1000) -> List[int]:
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    for i in range(2, int(limit ** 0.5) + 1):
        if sieve[i]:
            sieve[i * i :: i] = bytearray(len(sieve[i * i :: i]))
    return [i for i, flag in enumerate(sieve) if flag]


SMALL_PRIMES = _sieve_small_primes()

# Deterministic Miller-Rabin witness sets.  Testing against these bases
# is *exact* (no false positives) for all n below the listed bounds;
# see Sinclair / Jaeschke and the references collected at
# https://miller-rabin.appspot.com/.
_DETERMINISTIC_WITNESSES = (
    (341531, (9345883071009581737,)),
    (1050535501, (336781006125, 9639812373923155)),
    (3215031751, (2, 3, 5, 7)),
    (3825123056546413051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318665857834031151167461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
)

_PROBABILISTIC_ROUNDS = 40


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    a %= n
    if a == 0:
        return False
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def _miller_rabin(n: int, rng: Optional[random.Random]) -> bool:
    """Miller-Rabin stage only — callers must have trial-divided first."""
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for bound, witnesses in _DETERMINISTIC_WITNESSES:
        if n < bound:
            return not any(
                _miller_rabin_witness(n, a, d, r) for a in witnesses
            )
    rng = rng if rng is not None else random.Random(n & 0xFFFFFFFF)
    bases = (rng.randrange(2, n - 1) for _ in range(_PROBABILISTIC_ROUNDS))
    return not any(_miller_rabin_witness(n, a, d, r) for a in bases)


def is_prime(n: int, rng: Optional[random.Random] = None) -> bool:
    """Primality test: exact below ~3.3e23, Miller-Rabin above.

    Above the deterministic range the error probability is at most
    ``4**-40``, far below any failure mode relevant to a protocol
    simulation.

    Args:
        n: candidate integer.
        rng: source of randomness for the probabilistic bases; a private
            deterministic generator is used when omitted.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    return _miller_rabin(n, rng)


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The paper sets the size of the per-predecessor primes to 512 bits
    (section VII-A).  The top two bits are forced to one so that the
    product of two such primes reaches the full RSA modulus width, and
    the bottom bit is forced odd.

    Args:
        bits: bit length of the prime, at least 2.
        rng: seeded random source (simulations must be reproducible).
    """
    if bits < 2:
        raise ValueError(f"cannot generate a prime of {bits} bits")
    if bits == 2:
        return rng.choice((2, 3))
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_prime(candidate, rng):
            return candidate


def generate_distinct_primes(
    count: int, bits: int, rng: random.Random
) -> List[int]:
    """Generate ``count`` pairwise-distinct primes of ``bits`` bits.

    A node with ``fp`` predecessors draws one prime per predecessor each
    round; distinctness keeps each link's hash key independent.
    """
    primes: List[int] = []
    seen = set()
    while len(primes) < count:
        p = generate_prime(bits, rng)
        if p not in seen:
            seen.add(p)
            primes.append(p)
    return primes


def next_prime(n: int) -> int:
    """Return the smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def product(values: Iterable[int]) -> int:
    """Product of an iterable of integers (1 for an empty iterable).

    Used for the round keys ``K(R, B) = prod_i p_i`` of section V-A.
    """
    result = 1
    for value in values:
        result *= value
    return result


class PrimePool:
    """Amortised prime generation: sieve a window, test the survivors.

    Every node draws one fresh prime per predecessor per round
    (section V-A), so prime generation sits on the round hot path.
    :func:`generate_prime` pays full trial division on every random
    candidate; the pool instead draws one random window base per refill
    and crosses out all small-prime multiples across the whole window in
    bulk (a segmented sieve), so only the ~1/4 of candidates that
    survive the wheel reach Miller-Rabin — and those skip trial division
    entirely, since the sieve already performed it.

    The pool consumes randomness only from its own ``rng`` and in a
    fixed order, so draws are reproducible under a fixed seed.  Primes
    returned by :meth:`take` are pairwise distinct for the lifetime of
    the pool.

    Attributes:
        bits: bit length of generated primes; the top two bits are set
            (like :func:`generate_prime`) so prime products reach full
            modulus width.
        window: candidates sieved per refill (odd numbers, so a window
            spans ``2 * window`` integers).
    """

    def __init__(
        self, bits: int, rng: random.Random, window: int = 256
    ) -> None:
        if bits < 8:
            raise ValueError("prime pool needs at least 8-bit primes")
        if window < 1:
            raise ValueError("window must be positive")
        self.bits = bits
        self.window = window
        self._rng = rng
        self._ready: Deque[int] = deque()
        self._seen: Set[int] = set()
        self.generated = 0
        self.candidates_tested = 0

    #: Refills that yield no new prime before declaring exhaustion.  At
    #: practical sizes (>= 32 bits) tens of millions of eligible primes
    #: exist and this bound is unreachable; it exists so degenerate
    #: widths fail loudly instead of spinning forever once every
    #: eligible prime has been handed out.
    _MAX_BARREN_REFILLS = 64

    def take(self) -> int:
        """Return the next pooled prime, refilling when the pool runs dry.

        Raises:
            RuntimeError: when the distinct-prime space for this bit
                width is exhausted (only reachable at tiny widths).
        """
        barren = 0
        while not self._ready:
            before = len(self._seen)
            self._refill()
            if len(self._seen) == before:
                barren += 1
                if barren >= self._MAX_BARREN_REFILLS:
                    raise RuntimeError(
                        f"prime pool exhausted: all distinct {self.bits}-bit "
                        f"primes ({len(self._seen)}) have been drawn"
                    )
            else:
                barren = 0
        prime = self._ready.popleft()
        self.generated += 1
        return prime

    def take_many(self, count: int) -> List[int]:
        return [self.take() for _ in range(count)]

    def _refill(self) -> None:
        bits = self.bits
        base = self._rng.getrandbits(bits)
        base |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        span = self.window
        top = (1 << bits) - 1
        if base + 2 * (span - 1) > top:
            span = (top - base) // 2 + 1
        # survivors[k] == 0 <=> base + 2k has no small-prime factor.
        survivors = bytearray(span)
        for p in SMALL_PRIMES:
            if p == 2:
                continue  # all candidates are odd
            # Smallest k >= 0 with base + 2k ≡ 0 (mod p); the modular
            # inverse of 2 mod an odd p is (p + 1) // 2.
            k = (-base % p) * ((p + 1) // 2) % p
            if base + 2 * k == p:
                k += p  # p itself is prime, not a composite multiple
            if k < span:
                run = len(range(k, span, p))
                survivors[k::p] = b"\x01" * run
        for k in range(span):
            if survivors[k]:
                continue
            candidate = base + 2 * k
            self.candidates_tested += 1
            if _miller_rabin(candidate, self._rng):
                if candidate not in self._seen:
                    self._seen.add(candidate)
                    self._ready.append(candidate)
