"""Pure-Python RSA: key generation, encryption, and signatures.

PAG's system model (section III) assumes nodes "have access to secure
asymmetric key encryptions and signatures".  The deployment in the paper
uses RSA-2048 signatures; message confidentiality between nodes (the
``{...}pk(B)`` notation of Fig. 5) also uses the recipient's RSA key.

This is a from-scratch textbook implementation sufficient for protocol
simulation and for exercising the real algebra end to end.  It is NOT
hardened cryptography (no constant-time arithmetic, simplified padding)
and must never protect real data; the simulation only needs the
mathematical behaviour and honest operation counts.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass

from repro.crypto.primes import generate_prime

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "RsaKeyPair",
    "generate_keypair",
    "DEFAULT_KEY_BITS",
    "DEFAULT_PUBLIC_EXPONENT",
]

DEFAULT_KEY_BITS = 2048
DEFAULT_PUBLIC_EXPONENT = 65537

# Domain-separation prefixes so an encryption can never double as a
# signature on the same integer.
_ENCRYPT_DOMAIN = b"pag-enc:"
_SIGN_DOMAIN = b"pag-sig:"


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``.

    The paper writes ``pk(X)`` for the public key of node X, ``{m}X``
    for an encryption under it, and ``<m>X`` for a signed message.
    """

    modulus: int
    exponent: int

    @property
    def bits(self) -> int:
        return self.modulus.bit_length()

    @property
    def byte_size(self) -> int:
        return (self.modulus.bit_length() + 7) // 8

    def encrypt_int(self, message: int) -> int:
        """Raw RSA encryption of an integer already below the modulus."""
        if not 0 <= message < self.modulus:
            raise ValueError("message out of range for raw RSA")
        return pow(message, self.exponent, self.modulus)

    def encrypt(self, plaintext: bytes) -> int:
        """Encrypt a short byte string (must fit under the modulus)."""
        padded = _ENCRYPT_DOMAIN + plaintext
        message = int.from_bytes(padded, "big")
        if message >= self.modulus:
            raise ValueError(
                f"plaintext of {len(plaintext)} bytes does not fit under a "
                f"{self.bits}-bit modulus"
            )
        return self.encrypt_int(message)

    def verify(self, message: bytes, signature: int) -> bool:
        """Verify a signature produced by the matching private key."""
        if not 0 <= signature < self.modulus:
            return False
        recovered = pow(signature, self.exponent, self.modulus)
        return recovered == _signature_representative(message, self.modulus)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key; keeps the CRT parameters for fast operations."""

    modulus: int
    public_exponent: int
    private_exponent: int
    prime_p: int
    prime_q: int

    def _crt_power(self, base: int) -> int:
        """Compute ``base ** d mod n`` via the Chinese Remainder Theorem."""
        p, q = self.prime_p, self.prime_q
        d = self.private_exponent
        dp = d % (p - 1)
        dq = d % (q - 1)
        q_inv = pow(q, -1, p)
        m1 = pow(base % p, dp, p)
        m2 = pow(base % q, dq, q)
        h = (q_inv * (m1 - m2)) % p
        return m2 + h * q

    def decrypt_int(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.modulus:
            raise ValueError("ciphertext out of range")
        return self._crt_power(ciphertext)

    def decrypt(self, ciphertext: int) -> bytes:
        """Decrypt and strip the domain prefix; raises on malformed input."""
        message = self.decrypt_int(ciphertext)
        raw = message.to_bytes((message.bit_length() + 7) // 8, "big")
        if not raw.startswith(_ENCRYPT_DOMAIN):
            raise ValueError("decryption failed: bad padding domain")
        return raw[len(_ENCRYPT_DOMAIN):]

    def sign(self, message: bytes) -> int:
        """Full-domain-hash style signature over ``message``."""
        return self._crt_power(
            _signature_representative(message, self.modulus)
        )


@dataclass(frozen=True)
class RsaKeyPair:
    """A public/private key pair owned by one simulated node."""

    public: RsaPublicKey
    private: RsaPrivateKey

    @property
    def bits(self) -> int:
        return self.public.bits


def _signature_representative(message: bytes, modulus: int) -> int:
    """Map a message to a fixed integer below ``modulus``.

    Expands SHA-256 output with counter blocks (a simple MGF) so the
    representative covers most of the modulus width, then reduces.
    """
    target_bytes = (modulus.bit_length() + 7) // 8
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < target_bytes:
        blocks.append(
            hashlib.sha256(
                _SIGN_DOMAIN + counter.to_bytes(4, "big") + message
            ).digest()
        )
        counter += 1
    expanded = b"".join(blocks)[:target_bytes]
    return int.from_bytes(expanded, "big") % modulus


def generate_keypair(
    bits: int = DEFAULT_KEY_BITS,
    rng: random.Random | None = None,
    public_exponent: int = DEFAULT_PUBLIC_EXPONENT,
) -> RsaKeyPair:
    """Generate an RSA key pair of roughly ``bits`` bits.

    Args:
        bits: modulus size; the paper deploys RSA-2048, tests use smaller
            keys for speed (the algebra is identical).
        rng: seeded random source for reproducible simulations.  When
            omitted, a generator seeded from ``(bits, exponent)`` is
            used so two parameter-identical calls agree — simulations
            must never consume ambient entropy (``repro lint`` DET102
            flagged the previous unseeded fallback).
        public_exponent: must be odd and at least 3.
    """
    if bits < 64:
        raise ValueError("RSA modulus below 64 bits is meaningless")
    if public_exponent < 3 or public_exponent % 2 == 0:
        raise ValueError("public exponent must be an odd integer >= 3")
    if rng is None:
        rng = random.Random((bits << 20) | public_exponent)
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        if math.gcd(public_exponent, (p - 1) * (q - 1)) != 1:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        d = pow(public_exponent, -1, phi)
        public = RsaPublicKey(modulus=n, exponent=public_exponent)
        private = RsaPrivateKey(
            modulus=n,
            public_exponent=public_exponent,
            private_exponent=d,
            prime_p=p,
            prime_q=q,
        )
        return RsaKeyPair(public=public, private=private)
