"""Homomorphic hashing — the privacy building block of PAG (section IV-B).

The hash is an unpadded RSA encryption: for a public modulus ``M`` and an
exponent ``p`` (a prime chosen by the receiving node),

    H(u)_(p, M) = u ** p  mod M.

Two multiplicative properties make the monitoring checks possible without
revealing update contents:

    H(u1)_(p,M) * H(u2)_(p,M)    = H(u1 * u2)_(p,M)          (product)
    H( H(u)_(p1,M) )_(p2,M)      = H(u)_(p1 * p2, M)          (re-keying)

A node B chooses a fresh prime ``p_i`` per predecessor each round; the
round key is ``K(R, B) = prod_i p_i``.  Monitors only ever see hashes and
the products of the *other* primes, so recovering an individual link key
requires factoring the product — hard by assumption (section IV-B) — and
recovering an update from its hash would require inverting unpadded RSA.

The paper recommends a 512-bit modulus (following the 2014 ENISA report)
and notes that 256 bits may be acceptable; both are exercised in the
benchmarks.  Updates hashed here are arbitrary integers; real updates are
*larger* than the modulus, which is exactly why the hash is not
invertible ("nodes cannot decrypt the hashed updates, as the value of the
modulus M is smaller than the size of updates").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.crypto.backend import (
    Backend,
    FixedBaseCache,
    PythonBackend,
    SharedLadderTable,
    default_backend,
)
from repro.crypto.primes import generate_prime, is_prime, product

__all__ = [
    "HomomorphicHasher",
    "make_modulus",
    "DEFAULT_MODULUS_BITS",
    "DEFAULT_PRIME_BITS",
]

DEFAULT_MODULUS_BITS = 512
DEFAULT_PRIME_BITS = 512

#: Default bound on the (value, exponent) -> hash memo; when full, the
#: oldest half is evicted (insertion order), which is cheap and good
#: enough for the round-local reuse pattern.  Override per session via
#: ``PagConfig.hash_memo_entries``.
#:
#: 512 entries, down from 16k: the memo's only recurring pattern at
#: simulation modulus sizes is the server/receiver ack-hash pair of one
#: exchange, whose reuse distance is drain-local — measured hit counts
#: are identical at 512 and 16384 entries on 40- and 120-node sessions
#: (``tests/crypto/test_memo_sizing.py`` regresses this), so the other
#: 16 KB of bigint pairs per worker were pure ballast.
_MEMO_MAX = 1 << 9

#: Default bound on the per-base fixed-base ladder cache used by hot
#: bases; override per session via ``PagConfig.fixed_base_cache_entries``.
_FIXED_BASE_MAX = 1024

#: The power ladder beats built-in ``pow`` when squarings dominate: for
#: small exponents (the per-link primes; pow re-reduces the wide update
#: base every call) and at production modulus widths (where each C-level
#: multiply is expensive enough to amortise the interpreter loop).  For
#: wide exponents over a narrow simulation modulus, built-in pow wins.
_SMALL_EXPONENT_BITS = 64
_WIDE_MODULUS_BITS = 256


def make_modulus(bits: int, rng: random.Random) -> int:
    """Create an RSA-style modulus ``M = p * q`` of roughly ``bits`` bits.

    The factorisation is discarded: nobody in the system needs it, and
    the hash's one-wayness rests on it staying unknown.
    """
    if bits < 16:
        raise ValueError("modulus below 16 bits is degenerate")
    half = bits // 2
    p = generate_prime(half, rng)
    q = generate_prime(bits - half, rng)
    while q == p:
        q = generate_prime(bits - half, rng)
    return p * q


@dataclass
class HomomorphicHasher:
    """Stateful hasher bound to one public modulus ``M``.

    All PAG participants in one deployment share the modulus (it is a
    public protocol parameter, like a group description).  The instance
    counts hash evaluations so simulations can report cryptographic cost
    the way Table I of the paper does.

    Attributes:
        modulus: the public RSA-style modulus ``M``.
        operations: number of modular exponentiations performed, i.e. the
            "homomorphic hashes per second" unit of Table I.  Counted at
            the protocol-call level (one per :meth:`hash`/:meth:`rekey`),
            so backend swaps and result caching never change the tally.
        backend: modular-arithmetic provider; None selects the process
            default (gmpy2 when installed, else built-in ``pow``).
        memo_max: entry bound of the wide-exponent memo (memory ceiling
            for long runs; the oldest half is evicted when full).
        fixed_base_max: bound on the number of bases holding a
            fixed-base window table.
    """

    modulus: int
    operations: int = field(default=0, compare=False)
    backend: Optional[Backend] = field(
        default=None, compare=False, repr=False
    )
    memo_max: int = field(default=_MEMO_MAX, compare=False)
    fixed_base_max: int = field(default=_FIXED_BASE_MAX, compare=False)
    #: cache accounting: protocol-level calls answered by the memo, by a
    #: fixed-base table, by a cold exponentiation, or folded into a
    #: batched multi-exponentiation (every call lands in exactly one
    #: bucket, so their sum always equals ``operations``).
    memo_hits: int = field(default=0, compare=False)
    fixed_base_hits: int = field(default=0, compare=False)
    cold_powmods: int = field(default=0, compare=False)
    batched_lifts: int = field(default=0, compare=False)
    #: fixed-base tables answered from a shared precomputed ladder
    #: instead of being rebuilt (subset of ``fixed_base_hits``).
    shared_ladder_seeds: int = field(default=0, compare=False)
    #: population-tier accounting: protocol-level hashes that were never
    #: evaluated because an equivalence class representative had already
    #: been computed (:meth:`hash_class`).  Deliberately NOT part of
    #: ``operations``, so full-fidelity tallies stay bit-identical; the
    #: population tier reports real + memoised work side by side.
    memoised_operations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.modulus < 4:
            raise ValueError("modulus must be a composite >= 4")
        if is_prime(self.modulus):
            raise ValueError(
                "modulus must be composite (RSA-style p*q); a prime modulus "
                "makes discrete roots easy and breaks one-wayness"
            )
        if self.backend is None:
            self.backend = default_backend()
        self._powmod = self.backend.powmod
        #: (value, exponent) -> hash result.  The same exchange hash is
        #: recomputed by the server, the receiver, and the monitors; the
        #: memo collapses those to one exponentiation (while `operations`
        #: still counts every protocol-level evaluation).
        self._memo: dict = {}
        #: fixed-base fast path: per-base power ladders, built from the
        #: second hashing of a base onward (building costs one pow).
        #: Covers the buffermap/serve membership hashes (the same update
        #: contents hashed under a fresh prime per link per round) and
        #: the monitor rekey path (the same attested hash raised to many
        #: cofactors).
        self._fixed_bases: dict = {}
        self._hot_candidates: set = set()
        #: read-only precomputed ladder levels for session-lifetime
        #: bases (see :meth:`adopt_shared_ladders`).
        self._shared_ladders: Optional[SharedLadderTable] = None
        #: the ladder only beats C-level pow when pow itself runs in
        #: the interpreter's bigint code, not when gmpy2 is active.
        self._use_fixed_base = isinstance(self.backend, PythonBackend)
        self._wide_modulus = (
            self.modulus.bit_length() >= _WIDE_MODULUS_BITS
        )

    @property
    def byte_size(self) -> int:
        """Wire size of one hash value (the paper uses 64 B for 512 bits)."""
        return (self.modulus.bit_length() + 7) // 8

    def hash(self, update: int, exponent: int) -> int:
        """Compute ``H(update)_(exponent, M) = update^exponent mod M``.

        Args:
            update: update content as an integer (any size; reduced mod M).
            exponent: hashing key — a prime or a product of primes.
        """
        if exponent <= 0:
            raise ValueError("hash exponent must be positive")
        self.operations += 1
        # Narrow exponents (the per-link primes): fixed-base tables win
        # and results repeat too rarely to be worth memoising.
        if self._use_fixed_base and (
            exponent.bit_length() <= _SMALL_EXPONENT_BITS
        ):
            cache = self._fixed_bases.get(update)
            if cache is not None:
                self.fixed_base_hits += 1
                return cache.powmod(exponent)
            return self._warm_base(update, exponent)
        # Wide exponents (round-key and cofactor products): each
        # evaluation costs tens of microseconds and the same hash is
        # recomputed by the server, the receiver and the monitors, so
        # memoise by value (`operations` already counted the call).
        memo = self._memo
        key = (update, exponent)
        result = memo.get(key)
        if result is not None:
            self.memo_hits += 1
            return result
        if self._use_fixed_base and self._wide_modulus:
            cache = self._fixed_bases.get(update)
            if cache is not None:
                self.fixed_base_hits += 1
                result = cache.powmod(exponent)
            else:
                result = self._warm_base(update, exponent)
        else:
            self.cold_powmods += 1
            result = self._powmod(update, exponent, self.modulus)
        if len(memo) >= self.memo_max:
            self._evict(memo)
        memo[key] = result
        return result

    def hash_class(
        self, update: int, exponent: int, members: int = 1
    ) -> int:
        """Hash one representative of an equivalence class of exchanges.

        The population tier groups structurally identical exchanges —
        same (content class, key/cofactor, round) — and evaluates the
        hash once, fanning the result out to all ``members``.  One real
        :meth:`hash` call is performed (counted in :attr:`operations`);
        the ``members - 1`` avoided evaluations are credited to
        :attr:`memoised_operations` so population reports can reconcile
        real + memoised totals against full-fidelity op counts.
        """
        if members < 1:
            raise ValueError("a hash class needs at least one member")
        result = self.hash(update, exponent)
        self.memoised_operations += members - 1
        return result

    def _warm_base(self, update: int, exponent: int) -> int:
        """Track base reuse; build its window table on second sighting.

        Narrow exponents (per-link primes) get a 4-bit window — many
        reuses, quarter the multiplies; wide ones (cofactor and round-key
        products) a 1-bit ladder, which amortises after a single reuse.

        Bases present in an adopted :class:`SharedLadderTable` skip the
        whole warm-up: the precomputed levels are wrapped in a local
        cache at the cost of two list copies, no exponentiations.
        """
        shared = self._shared_ladders
        if shared is not None:
            entry = shared.get(update)
            if entry is not None:
                if len(self._fixed_bases) >= self.fixed_base_max:
                    self._evict(self._fixed_bases)
                cache = FixedBaseCache.from_shared(
                    update, self.modulus, shared.window, *entry
                )
                self._fixed_bases[update] = cache
                self.fixed_base_hits += 1
                self.shared_ladder_seeds += 1
                return cache.powmod(exponent)
        hot = self._hot_candidates
        if update in hot:
            if len(self._fixed_bases) >= self.fixed_base_max:
                self._evict(self._fixed_bases)
            window = (
                4 if exponent.bit_length() <= _SMALL_EXPONENT_BITS else 1
            )
            cache = FixedBaseCache(update, self.modulus, window=window)
            self._fixed_bases[update] = cache
            self.cold_powmods += 1  # table construction costs one pow
            return cache.powmod(exponent)
        hot.add(update)
        if len(hot) > self.fixed_base_max * 4:
            hot.clear()
        self.cold_powmods += 1
        return self._powmod(update, exponent, self.modulus)

    def adopt_shared_ladders(
        self, table: Optional[SharedLadderTable]
    ) -> None:
        """Serve fixed-base misses from a precomputed read-only table.

        Built once (typically in the parent of a parallel run, before
        the worker pools start) and adopted by every replica's hasher,
        so per-shard replicas stop rebuilding identical ladder tables
        for the session-lifetime bases.  A no-op under backends that do
        not use the ladder fast path (gmpy2 beats it outright).
        """
        if table is None:
            return
        if table.modulus != self.modulus:
            raise ValueError(
                "shared ladder table was built for a different modulus"
            )
        if self._use_fixed_base:
            self._shared_ladders = table

    @staticmethod
    def _evict(memo: dict) -> None:
        """Drop the oldest half of a bounded memo (insertion order)."""
        for key in list(memo.keys())[: len(memo) // 2]:
            del memo[key]

    def hash_set(self, updates: Iterable[int], exponent: int) -> int:
        """Hash of the product of a set of updates under one exponent.

        This is the quantity ``H(prod_{i in S} u_i)_(p, M)`` exchanged in
        messages 4 and 5 of Fig. 5.  The product is reduced modulo M
        before exponentiation, which is algebraically identical.
        """
        acc = 1
        empty = True
        for update in updates:
            acc = (acc * update) % self.modulus
            empty = False
        if empty:
            # The hash of an empty set is the multiplicative identity:
            # an Ack over "nothing received" combines neutrally.
            return 1 % self.modulus
        return self.hash(acc, exponent)

    def rekey(self, hashed: int, exponent: int) -> int:
        """Raise an existing hash to another exponent.

        Uses the re-keying property: ``rekey(H(u)_(p1), p2)`` equals
        ``H(u)_(p1*p2)``.  This is what a monitor does in message 8 of
        Fig. 6 when it raises an attested hash to the product of the
        monitored node's *other* primes.

        The same attested hash is typically lifted to several cofactors
        within a round; from the second hashing of a base onward the
        hasher switches that base to a fixed-base power ladder
        (:class:`~repro.crypto.backend.FixedBaseCache`), which skips all
        the squarings a cold ``pow`` would redo.
        """
        return self.hash(hashed, exponent)

    def combine(self, hashes: Iterable[int]) -> int:
        """Multiply hash values (the product property).

        Monitors combine the per-predecessor hashes of everything a node
        received during a round into one value under ``K(R, B)``
        (section V-C):  ``H(S_A ∪ S_F) = H(S_A) * H(S_F)`` when both are
        keyed by the same exponent.
        """
        acc = 1 % self.modulus
        for h in hashes:
            acc = (acc * h) % self.modulus
        return acc

    def verify_forwarding(
        self,
        attested: Sequence[tuple[int, int]],
        acknowledged: int,
        batch: bool = True,
    ) -> bool:
        """Check the forwarding equation of section IV-B.

        Args:
            attested: pairs ``(hash_value, cofactor)`` where hash_value is
                ``H(S_j)_(p_j, M)`` declared by predecessor j and cofactor
                is ``prod_{i != j} p_i``, the product of the node's other
                primes for the round.
            acknowledged: ``H(prod of all updates)_(prod_i p_i, M)`` as
                acknowledged by a successor.
            batch: fold all pairs in one Straus multi-exponentiation pass
                (one shared squaring chain) instead of one ``rekey`` per
                pair.  The verdict and the operation tally are identical
                either way — ``operations`` counts one protocol-level
                lift per pair regardless of how the fold is computed.

        Returns:
            True when the homomorphically-raised attested hashes multiply
            to the acknowledged hash:

                prod_j (H(S_j)_(p_j))^(prod_{i!=j} p_i)  mod M
                    == H(S_1 * ... * S_k)_(prod_i p_i)
        """
        if batch:
            pairs = list(attested)
            for _hash_value, cofactor in pairs:
                if cofactor <= 0:
                    raise ValueError("hash exponent must be positive")
            self.operations += len(pairs)
            self.batched_lifts += len(pairs)
            product = self.backend.multi_powmod(pairs, self.modulus)
            return product == acknowledged % self.modulus
        lifted = (self.rekey(h, cofactor) for h, cofactor in attested)
        return self.combine(lifted) == acknowledged % self.modulus

    def cache_stats(self) -> dict:
        """Cache accounting for the perf ledger (``BENCH_hotpath.json``).

        Rates are fractions of the protocol-level calls that were
        answered without a cold exponentiation; ``memo_entries`` and
        ``fixed_base_entries`` report current occupancy against the
        configured bounds.  The denominator is the full protocol-level
        call count — every call lands in exactly one of the four
        buckets, so ``calls`` equals :attr:`operations` even after a
        parallel run grafts summed worker counter deltas back onto the
        parent hasher.
        """
        calls = (
            self.memo_hits
            + self.fixed_base_hits
            + self.cold_powmods
            + self.batched_lifts
        )
        return {
            "memo_hits": self.memo_hits,
            "fixed_base_hits": self.fixed_base_hits,
            "cold_powmods": self.cold_powmods,
            "batched_lifts": self.batched_lifts,
            "shared_ladder_seeds": self.shared_ladder_seeds,
            "memoised_operations": self.memoised_operations,
            "shared_ladder_bases": (
                len(self._shared_ladders)
                if self._shared_ladders is not None
                else 0
            ),
            "memo_hit_rate": self.memo_hits / calls if calls else 0.0,
            "fixed_base_hit_rate": (
                self.fixed_base_hits / calls if calls else 0.0
            ),
            "memo_entries": len(self._memo),
            "memo_max": self.memo_max,
            "fixed_base_entries": len(self._fixed_bases),
            "fixed_base_max": self.fixed_base_max,
        }

    def reset_counter(self) -> int:
        """Return the operation count and reset it to zero."""
        count = self.operations
        self.operations = 0
        return count


def fresh_hasher(
    bits: int = DEFAULT_MODULUS_BITS, seed: int | None = None
) -> HomomorphicHasher:
    """Convenience constructor used by tests and examples."""
    rng = random.Random(seed)
    return HomomorphicHasher(modulus=make_modulus(bits, rng))


__all__.append("fresh_hasher")
