"""Homomorphic hashing — the privacy building block of PAG (section IV-B).

The hash is an unpadded RSA encryption: for a public modulus ``M`` and an
exponent ``p`` (a prime chosen by the receiving node),

    H(u)_(p, M) = u ** p  mod M.

Two multiplicative properties make the monitoring checks possible without
revealing update contents:

    H(u1)_(p,M) * H(u2)_(p,M)    = H(u1 * u2)_(p,M)          (product)
    H( H(u)_(p1,M) )_(p2,M)      = H(u)_(p1 * p2, M)          (re-keying)

A node B chooses a fresh prime ``p_i`` per predecessor each round; the
round key is ``K(R, B) = prod_i p_i``.  Monitors only ever see hashes and
the products of the *other* primes, so recovering an individual link key
requires factoring the product — hard by assumption (section IV-B) — and
recovering an update from its hash would require inverting unpadded RSA.

The paper recommends a 512-bit modulus (following the 2014 ENISA report)
and notes that 256 bits may be acceptable; both are exercised in the
benchmarks.  Updates hashed here are arbitrary integers; real updates are
*larger* than the modulus, which is exactly why the hash is not
invertible ("nodes cannot decrypt the hashed updates, as the value of the
modulus M is smaller than the size of updates").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.crypto.primes import generate_prime, is_prime, product

__all__ = [
    "HomomorphicHasher",
    "make_modulus",
    "DEFAULT_MODULUS_BITS",
    "DEFAULT_PRIME_BITS",
]

DEFAULT_MODULUS_BITS = 512
DEFAULT_PRIME_BITS = 512


def make_modulus(bits: int, rng: random.Random) -> int:
    """Create an RSA-style modulus ``M = p * q`` of roughly ``bits`` bits.

    The factorisation is discarded: nobody in the system needs it, and
    the hash's one-wayness rests on it staying unknown.
    """
    if bits < 16:
        raise ValueError("modulus below 16 bits is degenerate")
    half = bits // 2
    p = generate_prime(half, rng)
    q = generate_prime(bits - half, rng)
    while q == p:
        q = generate_prime(bits - half, rng)
    return p * q


@dataclass
class HomomorphicHasher:
    """Stateful hasher bound to one public modulus ``M``.

    All PAG participants in one deployment share the modulus (it is a
    public protocol parameter, like a group description).  The instance
    counts hash evaluations so simulations can report cryptographic cost
    the way Table I of the paper does.

    Attributes:
        modulus: the public RSA-style modulus ``M``.
        operations: number of modular exponentiations performed, i.e. the
            "homomorphic hashes per second" unit of Table I.
    """

    modulus: int
    operations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.modulus < 4:
            raise ValueError("modulus must be a composite >= 4")
        if is_prime(self.modulus):
            raise ValueError(
                "modulus must be composite (RSA-style p*q); a prime modulus "
                "makes discrete roots easy and breaks one-wayness"
            )

    @property
    def byte_size(self) -> int:
        """Wire size of one hash value (the paper uses 64 B for 512 bits)."""
        return (self.modulus.bit_length() + 7) // 8

    def hash(self, update: int, exponent: int) -> int:
        """Compute ``H(update)_(exponent, M) = update^exponent mod M``.

        Args:
            update: update content as an integer (any size; reduced mod M).
            exponent: hashing key — a prime or a product of primes.
        """
        if exponent <= 0:
            raise ValueError("hash exponent must be positive")
        self.operations += 1
        return pow(update, exponent, self.modulus)

    def hash_set(self, updates: Iterable[int], exponent: int) -> int:
        """Hash of the product of a set of updates under one exponent.

        This is the quantity ``H(prod_{i in S} u_i)_(p, M)`` exchanged in
        messages 4 and 5 of Fig. 5.  The product is reduced modulo M
        before exponentiation, which is algebraically identical.
        """
        acc = 1
        empty = True
        for update in updates:
            acc = (acc * update) % self.modulus
            empty = False
        if empty:
            # The hash of an empty set is the multiplicative identity:
            # an Ack over "nothing received" combines neutrally.
            return 1 % self.modulus
        return self.hash(acc, exponent)

    def rekey(self, hashed: int, exponent: int) -> int:
        """Raise an existing hash to another exponent.

        Uses the re-keying property: ``rekey(H(u)_(p1), p2)`` equals
        ``H(u)_(p1*p2)``.  This is what a monitor does in message 8 of
        Fig. 6 when it raises an attested hash to the product of the
        monitored node's *other* primes.
        """
        return self.hash(hashed, exponent)

    def combine(self, hashes: Iterable[int]) -> int:
        """Multiply hash values (the product property).

        Monitors combine the per-predecessor hashes of everything a node
        received during a round into one value under ``K(R, B)``
        (section V-C):  ``H(S_A ∪ S_F) = H(S_A) * H(S_F)`` when both are
        keyed by the same exponent.
        """
        acc = 1 % self.modulus
        for h in hashes:
            acc = (acc * h) % self.modulus
        return acc

    def verify_forwarding(
        self,
        attested: Sequence[tuple[int, int]],
        acknowledged: int,
    ) -> bool:
        """Check the forwarding equation of section IV-B.

        Args:
            attested: pairs ``(hash_value, cofactor)`` where hash_value is
                ``H(S_j)_(p_j, M)`` declared by predecessor j and cofactor
                is ``prod_{i != j} p_i``, the product of the node's other
                primes for the round.
            acknowledged: ``H(prod of all updates)_(prod_i p_i, M)`` as
                acknowledged by a successor.

        Returns:
            True when the homomorphically-raised attested hashes multiply
            to the acknowledged hash:

                prod_j (H(S_j)_(p_j))^(prod_{i!=j} p_i)  mod M
                    == H(S_1 * ... * S_k)_(prod_i p_i)
        """
        lifted = (self.rekey(h, cofactor) for h, cofactor in attested)
        return self.combine(lifted) == acknowledged % self.modulus

    def reset_counter(self) -> int:
        """Return the operation count and reset it to zero."""
        count = self.operations
        self.operations = 0
        return count


def fresh_hasher(
    bits: int = DEFAULT_MODULUS_BITS, seed: int | None = None
) -> HomomorphicHasher:
    """Convenience constructor used by tests and examples."""
    rng = random.Random(seed)
    return HomomorphicHasher(modulus=make_modulus(bits, rng))


__all__.append("fresh_hasher")
