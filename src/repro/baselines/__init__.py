"""Baseline protocols the paper compares against.

* :mod:`repro.baselines.acting` — AcTinG, accountable gossip via secure
  logs and audits (no privacy);
* :mod:`repro.baselines.rac` — RAC, accountable anonymous communication
  (privacy via onion-broadcast, prohibitive bandwidth);
* :mod:`repro.baselines.securelog` — the PeerReview-style tamper-evident
  log both AcTinG and the related work build on;
* plain push gossip lives in :mod:`repro.gossip.dissemination`.
"""

from __future__ import annotations

from repro.baselines.acting import (
    ActingConfig,
    ActingNode,
    ActingSession,
    ActingSourceNode,
)
from repro.baselines.rac import (
    RAC_OVERHEAD_CALIBRATION,
    RacConfig,
    RacNode,
    RacSession,
    RacSourceNode,
    rac_max_payload_kbps,
    rac_per_node_kbps,
)
from repro.baselines.securelog import (
    Authenticator,
    LogEntry,
    SecureLog,
    verify_segment,
)

__all__ = [
    "ActingConfig",
    "ActingNode",
    "ActingSession",
    "ActingSourceNode",
    "Authenticator",
    "LogEntry",
    "RAC_OVERHEAD_CALIBRATION",
    "RacConfig",
    "RacNode",
    "RacSession",
    "RacSourceNode",
    "SecureLog",
    "rac_max_payload_kbps",
    "rac_per_node_kbps",
    "verify_segment",
]
