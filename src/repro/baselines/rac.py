"""RAC baseline: accountable anonymous communication (ICDCS 2013).

RAC is the paper's privacy-side comparator: it hides who sends what by
(1) onion-routing each message through a chain of relays, (2) having the
exit relay broadcast the message to *everyone* (receiver anonymity means
nobody can tell who actually wanted it), and (3) forcing every node to
emit fixed-rate *cover traffic* so that traffic analysis cannot single
out real senders.  Accountability forces nodes to execute their relay
role.

The consequence the paper exploits in Table II: per-node bandwidth
scales with the *whole membership* (every payload byte is broadcast to
all N nodes, and every node originates cover cells whether or not it has
content), so "the maximum payload that RAC is able to provide using
10 Gbps network links is equal to 63 kbps" with 1000 nodes — three
orders of magnitude under a basic 300 Kbps stream.

Two artefacts here:

* :class:`RacNode`/:class:`RacSession` — a runnable simulation of the
  ring-broadcast-with-cover-traffic structure, used at small N to
  validate the model's shape (per-node bandwidth ∝ N × cell rate);
* :func:`rac_max_payload_kbps` — the capacity model used by the
  Table II bench, calibrated to RAC's published operating point (the
  ``RAC_OVERHEAD_CALIBRATION`` constant; see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional

from repro.gossip.updates import Update, UpdateStore
from repro.membership.directory import Directory
from repro.membership.views import ViewProvider
from repro.sim.engine import Simulator
from repro.sim.message import Message, WireSizes
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.rng import SeedSequence

__all__ = [
    "RacConfig",
    "RacCell",
    "RacNode",
    "RacSourceNode",
    "RacSession",
    "rac_per_node_kbps",
    "rac_max_payload_kbps",
    "RAC_OVERHEAD_CALIBRATION",
]

#: Residual multiplicative overhead of RAC beyond the structural
#: N-fold broadcast cost: onion layers (each hop re-encrypts), relay
#: acknowledgements, accountability audits, and scheduling slack.
#: Calibrated so that with N=1000 nodes a 10 Gbps link sustains the
#: 63 Kbps payload the paper measured (section VII-B):
#: 10e6 / (63 * 1000 / 6.3) ... see rac_max_payload_kbps.
RAC_OVERHEAD_CALIBRATION = 158.7


@dataclass(frozen=True)
class RacConfig:
    """RAC parameters.

    Attributes:
        onion_hops: relays a cell traverses before broadcast.
        cell_bytes: fixed cell size (padding makes all cells equal).
        cells_per_round: cover-traffic rate every node must sustain.
        broadcast_fanout: gossip fanout of the exit broadcast.
    """

    onion_hops: int = 3
    cell_bytes: int = 1024
    cells_per_round: int = 4
    broadcast_fanout: int = 3
    seed: int = 2013


@dataclass
class RacCell(Message):
    """One fixed-size cell (real payload or cover traffic).

    ``layer`` counts remaining onion hops; at 0 the cell is broadcast.
    Cover cells are indistinguishable on the wire (same size); the
    simulation tags them only for accounting.
    """

    layer: int = 0
    payload: Optional[Update] = None
    is_cover: bool = True
    cell_bytes: int = 1024
    cell_id: int = -1
    kind: ClassVar[str] = "rac_cell"

    def size_bytes(self, sizes: WireSizes) -> int:
        # Fixed-size cells: padding hides payload presence and length.
        return sizes.header + self.cell_bytes + sizes.signature


class RacNode(SimNode):
    """A RAC participant: relays onions, broadcasts exits, emits cover."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        views: ViewProvider,
        config: RacConfig,
        seeds: SeedSequence,
    ) -> None:
        super().__init__(node_id, network)
        self.views = views
        self.config = config
        self.store = UpdateStore()
        self._relay_rng = seeds.stream("rac-relay", node_id)
        self._seen_broadcasts: set[int] = set()
        self._next_cell_serial = 0

    def begin_round(self, round_no: int) -> None:
        # Obligatory cover traffic: every node originates cells whether
        # or not it has anything to say.
        for _ in range(self.config.cells_per_round):
            self._originate(round_no, payload=None)

    def _originate(self, round_no: int, payload: Optional[Update]) -> None:
        relay = self._pick_relay()
        cell_id = (self.node_id << 32) | self._next_cell_serial
        self._next_cell_serial += 1
        self.send(
            RacCell(
                sender=self.node_id,
                recipient=relay,
                round_no=round_no,
                layer=self.config.onion_hops - 1,
                payload=payload,
                is_cover=payload is None,
                cell_bytes=self.config.cell_bytes,
                cell_id=cell_id,
            )
        )

    def _pick_relay(self) -> int:
        candidates = self.views.directory.others(self.node_id)
        return candidates[self._relay_rng.randrange(len(candidates))]

    def on_message(self, message: Message) -> None:
        if not isinstance(message, RacCell):
            return
        if message.layer > 0:
            # Relay obligation: peel one onion layer, forward.
            self.send(
                RacCell(
                    sender=self.node_id,
                    recipient=self._pick_relay(),
                    round_no=message.round_no,
                    layer=message.layer - 1,
                    payload=message.payload,
                    is_cover=message.is_cover,
                    cell_bytes=message.cell_bytes,
                    cell_id=message.cell_id,
                )
            )
            return
        # Exit: broadcast to the gossip group (receiver anonymity).
        self._deliver_and_spread(message)

    def _deliver_and_spread(self, message: RacCell) -> None:
        if message.cell_id in self._seen_broadcasts:
            return
        self._seen_broadcasts.add(message.cell_id)
        if message.payload is not None:
            self.store.add(message.payload, message.round_no)
        for successor in self.views.successors(self.node_id, message.round_no):
            self.send(
                RacCell(
                    sender=self.node_id,
                    recipient=successor,
                    round_no=message.round_no,
                    layer=0,
                    payload=message.payload,
                    is_cover=message.is_cover,
                    cell_bytes=message.cell_bytes,
                    cell_id=message.cell_id,
                )
            )


class RacSourceNode(RacNode):
    """The source hides its stream inside its cover-cell allotment.

    Anonymity forbids sending faster than anyone else — the stream rate
    is capped at the cover rate, which is RAC's fundamental limitation
    for streaming.
    """

    def __init__(self, *args, stream_updates_per_round: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.stream_updates_per_round = stream_updates_per_round
        self.released: List[Update] = []
        self._next_uid = 0

    def begin_round(self, round_no: int) -> None:
        budget = self.config.cells_per_round
        real = min(self.stream_updates_per_round, budget)
        for _ in range(real):
            update = Update(
                uid=self._next_uid,
                round_created=round_no,
                expiry_round=round_no + 10,
                payload_bytes=self.config.cell_bytes,
            )
            self._next_uid += 1
            self.released.append(update)
            self._originate(round_no, payload=update)
        for _ in range(budget - real):
            self._originate(round_no, payload=None)


@dataclass
class RacSession:
    """Small-N runnable RAC deployment for shape validation."""

    simulator: Simulator
    source: RacSourceNode
    nodes: Dict[int, RacNode]
    config: RacConfig

    @classmethod
    def create(
        cls, n_nodes: int, config: Optional[RacConfig] = None
    ) -> "RacSession":
        config = config or RacConfig()
        directory = Directory.of_size(n_nodes, source_id=0)
        seeds = SeedSequence(config.seed)
        views = ViewProvider(
            directory=directory,
            seeds=seeds.child("views"),
            fanout=config.broadcast_fanout,
            monitors_per_node=config.broadcast_fanout,
        )
        network = Network()
        simulator = Simulator(network=network)
        source = RacSourceNode(
            0, network, views, config, seeds, stream_updates_per_round=1
        )
        simulator.add_node(source)
        nodes: Dict[int, RacNode] = {}
        for node_id in directory.consumers():
            node = RacNode(node_id, network, views, config, seeds)
            nodes[node_id] = node
            simulator.add_node(node)
        return cls(
            simulator=simulator, source=source, nodes=nodes, config=config
        )

    def run(self, rounds: int) -> None:
        self.simulator.run(rounds)

    def mean_bandwidth_kbps(
        self, warmup_rounds: int = 0, direction: str = "both"
    ) -> float:
        values = self.simulator.network.meter.all_node_kbps(
            sorted(self.nodes), first_round=warmup_rounds, direction=direction
        )
        return sum(values.values()) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Capacity model (Table II)
# ---------------------------------------------------------------------------


def rac_per_node_kbps(payload_kbps: float, n_nodes: int) -> float:
    """Per-node bandwidth RAC consumes to deliver ``payload_kbps``.

    Structure: every payload bit is broadcast to all N nodes, and sender
    anonymity forces all N nodes to originate at the same rate, so the
    per-node cost is ``payload * N`` before residual overhead; the
    calibration constant folds in onion layers, acknowledgements and
    accountability traffic (documented above).

    The model is anchored at RAC's published point: 63 Kbps payload
    saturating a 10 Gbps link with 1000 nodes.
    """
    if n_nodes < 2:
        raise ValueError("RAC needs at least 2 nodes")
    return payload_kbps * n_nodes * RAC_OVERHEAD_CALIBRATION


def rac_max_payload_kbps(link_kbps: float, n_nodes: int) -> float:
    """Largest payload rate RAC sustains on a given link capacity."""
    return link_kbps / (n_nodes * RAC_OVERHEAD_CALIBRATION)
