"""Tamper-evident secure logs, as used by PeerReview/AVMs/AcTinG.

The accountability systems PAG competes with (section II-B) make every
node keep an append-only log of its interactions, secured by a recursive
hash: entry ``i`` commits to ``h_{i-1}``, so retroactive edits break the
chain, and signed *authenticators* pin the chain's head so a node cannot
maintain two divergent histories (forking).  Audits transfer log
segments — which is exactly the privacy leak PAG exists to remove: the
log names partners, rounds, and update identifiers in clear.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["LogEntry", "SecureLog", "Authenticator", "verify_segment"]

#: Wire size of one serialized log entry during an audit transfer
#: (sequence, type, round, partner, update ids digest, chain hash).
LOG_ENTRY_WIRE_BYTES = 48


@dataclass(frozen=True)
class LogEntry:
    """One logged interaction.

    Attributes:
        seq: position in the log (0-based, dense).
        entry_type: ``SND`` or ``RCV`` (Fig. 2 of the paper).
        round_no: gossip round of the interaction.
        partner: the other endpoint.
        update_uids: identifiers of the updates exchanged — in clear,
            which is what lets a curious auditor profile interests.
        prev_hash: chain hash of the previous entry.
    """

    seq: int
    entry_type: str
    round_no: int
    partner: int
    update_uids: Tuple[int, ...]
    prev_hash: bytes

    def chain_hash(self) -> bytes:
        material = (
            f"{self.seq}|{self.entry_type}|{self.round_no}|{self.partner}|"
            f"{sorted(self.update_uids)}".encode()
            + self.prev_hash
        )
        return hashlib.sha256(material).digest()


@dataclass(frozen=True)
class Authenticator:
    """A signed commitment to the log head: (seq, chain hash, signature)."""

    node_id: int
    seq: int
    head_hash: bytes
    signature: int


_GENESIS = hashlib.sha256(b"securelog-genesis").digest()


@dataclass
class SecureLog:
    """Append-only hash-chained interaction log of one node."""

    node_id: int
    entries: List[LogEntry] = field(default_factory=list)

    def head_hash(self) -> bytes:
        if not self.entries:
            return _GENESIS
        return self.entries[-1].chain_hash()

    def append(
        self,
        entry_type: str,
        round_no: int,
        partner: int,
        update_uids: Iterable[int],
    ) -> LogEntry:
        if entry_type not in ("SND", "RCV"):
            raise ValueError(f"unknown entry type {entry_type!r}")
        entry = LogEntry(
            seq=len(self.entries),
            entry_type=entry_type,
            round_no=round_no,
            partner=partner,
            update_uids=tuple(sorted(update_uids)),
            prev_hash=self.head_hash(),
        )
        self.entries.append(entry)
        return entry

    def segment(self, first_seq: int) -> List[LogEntry]:
        """Entries from ``first_seq`` to the head (an audit transfer)."""
        return self.entries[first_seq:]

    def segment_wire_bytes(self, first_seq: int) -> int:
        return len(self.segment(first_seq)) * LOG_ENTRY_WIRE_BYTES

    def entries_for_round(self, round_no: int) -> List[LogEntry]:
        return [e for e in self.entries if e.round_no == round_no]

    def __len__(self) -> int:
        return len(self.entries)


def verify_segment(
    segment: Sequence[LogEntry], expected_prev: Optional[bytes] = None
) -> bool:
    """Check the hash chain of a contiguous log segment.

    Args:
        segment: consecutive entries.
        expected_prev: known chain hash preceding the segment, when the
            auditor has it from an earlier authenticator.
    """
    prev = expected_prev
    last_seq = None
    for entry in segment:
        if last_seq is not None and entry.seq != last_seq + 1:
            return False
        if prev is not None and entry.prev_hash != prev:
            return False
        prev = entry.chain_hash()
        last_seq = entry.seq
    return True
