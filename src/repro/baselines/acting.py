"""AcTinG baseline: accountable (but not private) gossip with secure logs.

AcTinG [Mokhtar, Decouchant et al., SRDS 2014] is the paper's main
accountability comparator (section VII).  Nodes log every interaction in
a tamper-evident :class:`~repro.baselines.securelog.SecureLog`; monitors
probabilistically audit log segments and replay the protocol rules to
catch free-riders.  Two properties matter for the comparison:

* **cheaper than PAG** — a node may *refuse* updates it already has
  (propose/request negotiation with cleartext identifiers), so payload
  travels roughly once, and the monitoring cost is log shipping rather
  than per-exchange homomorphic traffic;
* **no privacy** — proposals, requests, and audited logs expose update
  identifiers and the full interaction graph to partners and monitors.

The implementation follows AcTinG's structure at the fidelity the
comparison needs: three-way propose/request/serve exchange, dual-entry
logging, chain-verified audits, and omission detection by rule replay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, List, Optional, Set, Tuple

from repro.baselines.securelog import (
    LOG_ENTRY_WIRE_BYTES,
    SecureLog,
    verify_segment,
)
from repro.core.accusations import FaultReason, Verdict, VerdictLog
from repro.gossip.source import StreamSchedule
from repro.gossip.updates import Update, UpdateStore
from repro.membership.views import ViewProvider
from repro.sim.message import Message, WireSizes
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.rng import SeedSequence

__all__ = [
    "ActingConfig",
    "ActingNode",
    "ActingSourceNode",
    "ActingPropose",
    "ActingRequest",
    "ActingServe",
    "AuditRequest",
    "AuditReply",
]


@dataclass(frozen=True)
class ActingConfig:
    """AcTinG parameters (paper-aligned defaults)."""

    fanout: int = 3
    monitors_per_node: int = 3
    audit_probability: float = 0.3
    stream_rate_kbps: float = 300.0
    update_bytes: int = 938
    playout_delay_rounds: int = 10
    seed: int = 2014


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass
class ActingPropose(Message):
    """Cleartext advertisement of the updates available to forward."""

    uids: Tuple[int, ...] = ()
    signature: int = 0
    kind: ClassVar[str] = "acting_propose"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header + len(self.uids) * sizes.update_id + sizes.signature
        )


@dataclass
class ActingRequest(Message):
    """The subset of proposed updates the receiver lacks."""

    uids: Tuple[int, ...] = ()
    signature: int = 0
    kind: ClassVar[str] = "acting_request"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header + len(self.uids) * sizes.update_id + sizes.signature
        )


@dataclass
class ActingServe(Message):
    """Requested update payloads."""

    updates: Tuple[Update, ...] = ()
    signature: int = 0
    kind: ClassVar[str] = "acting_serve"

    def size_bytes(self, sizes: WireSizes) -> int:
        payload = sum(
            u.payload_bytes + sizes.update_id for u in self.updates
        )
        return sizes.header + payload + sizes.signature


@dataclass
class AuditRequest(Message):
    """A monitor asks for the log segment since its last audit."""

    first_seq: int = 0
    signature: int = 0
    kind: ClassVar[str] = "audit_request"

    def size_bytes(self, sizes: WireSizes) -> int:
        return sizes.header + 8 + sizes.signature


@dataclass
class AuditReply(Message):
    """The audited node ships a log segment (sized per entry)."""

    entries: Tuple = ()
    first_seq: int = 0
    signature: int = 0
    kind: ClassVar[str] = "audit_reply"

    def size_bytes(self, sizes: WireSizes) -> int:
        return (
            sizes.header
            + len(self.entries) * LOG_ENTRY_WIRE_BYTES
            + sizes.signature
        )


# ---------------------------------------------------------------------------
# Nodes
# ---------------------------------------------------------------------------


class ActingNode(SimNode):
    """A consumer node running AcTinG.

    Args:
        selfish: a free-riding AcTinG node: receives but never proposes.
            Exists so the audit machinery has something to catch, and so
            Fig. 10's comparison of what a *coalition* learns from logs
            can run on real audit traffic.
        forges_log: a cheater that rewrites history: it ships audit
            segments with some RCV entries deleted, to shed the
            forwarding obligations they record.  The surviving entries'
            chain hashes still commit to the deleted ones, so the
            auditor's verification fails on the first audit — the
            tamper evidence PeerReview-style logs provide (section
            II-B).
    """

    def __init__(
        self,
        node_id: int,
        network: Network,
        views: ViewProvider,
        config: ActingConfig,
        seeds: SeedSequence,
        selfish: bool = False,
        forges_log: bool = False,
    ) -> None:
        super().__init__(node_id, network)
        self.views = views
        self.config = config
        self.selfish = selfish
        self.forges_log = forges_log
        self.store = UpdateStore()
        self.log = SecureLog(node_id)
        self.verdicts = VerdictLog()
        self._to_forward: Dict[int, Update] = {}
        self._last_proposal: Dict[int, Update] = {}
        self._audit_cursor: Dict[int, int] = {}
        self._audit_rng = seeds.stream("acting-audit", node_id)
        #: logs fetched through audits: audited node -> entries seen.
        self.audited_knowledge: Dict[int, List] = {}

    # -- data path ----------------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        self._propose(round_no)
        self._maybe_audit(round_no)

    def _propose(self, round_no: int) -> None:
        if self.selfish:
            self._to_forward.clear()
            return
        available = {
            uid: u
            for uid, u in self._to_forward.items()
            if not u.is_expired(round_no)
        }
        self._to_forward.clear()
        self._last_proposal = available
        if not available:
            return
        for successor in self.views.successors(self.node_id, round_no):
            self.log.append("SND", round_no, successor, available.keys())
            self.send(
                ActingPropose(
                    sender=self.node_id,
                    recipient=successor,
                    round_no=round_no,
                    uids=tuple(sorted(available)),
                )
            )

    def on_message(self, message: Message) -> None:
        if isinstance(message, ActingPropose):
            self._on_propose(message)
        elif isinstance(message, ActingRequest):
            self._on_request(message)
        elif isinstance(message, ActingServe):
            self._on_serve(message)
        elif isinstance(message, AuditRequest):
            self._on_audit_request(message)
        elif isinstance(message, AuditReply):
            self._on_audit_reply(message)

    def _on_propose(self, message: ActingPropose) -> None:
        missing = tuple(
            uid for uid in message.uids if uid not in self.store
        )
        if not missing:
            return
        self.send(
            ActingRequest(
                sender=self.node_id,
                recipient=message.sender,
                round_no=message.round_no,
                uids=missing,
            )
        )

    def _on_request(self, message: ActingRequest) -> None:
        available = self._last_proposal
        to_send = tuple(
            available[uid] for uid in message.uids if uid in available
        )
        if not to_send:
            return
        self.log.append(
            "SND", message.round_no, message.sender, (u.uid for u in to_send)
        )
        self.send(
            ActingServe(
                sender=self.node_id,
                recipient=message.sender,
                round_no=message.round_no,
                updates=to_send,
            )
        )

    def _on_serve(self, message: ActingServe) -> None:
        # Log only the receipts that create a forwarding obligation:
        # chunks expiring before the next round carry no obligation
        # (the same exemption PAG's two-list mechanism encodes).
        obligating = [
            u
            for u in message.updates
            if not u.expires_next_round(message.round_no)
        ]
        self.log.append(
            "RCV",
            message.round_no,
            message.sender,
            (u.uid for u in obligating),
        )
        for update in message.updates:
            if self.store.add(update, message.round_no):
                self._to_forward[update.uid] = update

    def end_round(self, round_no: int) -> None:
        self.store.drop_expired(round_no)

    # -- audits ---------------------------------------------------------

    def _maybe_audit(self, round_no: int) -> None:
        for monitored in self.views.monitored_by(self.node_id):
            if monitored == self.views.directory.source_id:
                continue
            if self._audit_rng.random() >= self.config.audit_probability:
                continue
            self.send(
                AuditRequest(
                    sender=self.node_id,
                    recipient=monitored,
                    round_no=round_no,
                    first_seq=self._audit_cursor.get(monitored, 0),
                )
            )

    def _on_audit_request(self, message: AuditRequest) -> None:
        segment = tuple(self.log.segment(message.first_seq))
        if self.forges_log:
            # Rewrite history: drop half the RCV entries to shed their
            # forwarding obligations.  The surviving entries' sequence
            # numbers and chain hashes still commit to the deleted
            # ones, so verification fails at the auditor.
            segment = tuple(
                e
                for e in segment
                if e.entry_type != "RCV" or e.seq % 2 == 0
            )
        self.send(
            AuditReply(
                sender=self.node_id,
                recipient=message.sender,
                round_no=message.round_no,
                entries=segment,
                first_seq=message.first_seq,
            )
        )

    def _on_audit_reply(self, message: AuditReply) -> None:
        audited = message.sender
        segment = list(message.entries)
        if not verify_segment(segment):
            self.verdicts.record(
                Verdict(
                    node=audited,
                    reason=FaultReason.WRONG_FORWARD_SET,
                    exchange_round=message.round_no,
                    detected_by=self.node_id,
                    evidence="log chain verification failed",
                )
            )
            return
        self.audited_knowledge.setdefault(audited, []).extend(segment)
        self._audit_cursor[audited] = message.first_seq + len(segment)
        self._replay_rules(audited, message.round_no)

    def _replay_rules(self, audited: int, round_no: int) -> None:
        """Omission detection by rule replay over the audited log.

        This is the audit of Fig. 2: "each monitor can check that node X
        has forwarded all the updates it received during round R ... to
        all its successors ... during round R+1".  Obligating receipts
        at round R must be proposed (SND entry) to *every* successor of
        round R+1.
        """
        entries = self.audited_knowledge.get(audited, [])
        received: Dict[int, Set[int]] = {}
        proposed: Dict[Tuple[int, int], Set[int]] = {}
        max_round = -1
        for entry in entries:
            max_round = max(max_round, entry.round_no)
            if entry.entry_type == "RCV":
                received.setdefault(entry.round_no, set()).update(
                    entry.update_uids
                )
            else:
                proposed.setdefault(
                    (entry.round_no, entry.partner), set()
                ).update(entry.update_uids)
        for rnd, uids in received.items():
            if rnd + 1 >= max_round:
                continue  # the forwarding round may not be logged yet
            for successor in self.views.successors(audited, rnd + 1):
                missing = uids - proposed.get((rnd + 1, successor), set())
                if missing:
                    self.verdicts.record(
                        Verdict(
                            node=audited,
                            reason=FaultReason.WRONG_FORWARD_SET,
                            exchange_round=rnd + 1,
                            detected_by=self.node_id,
                            evidence=(
                                f"log shows {len(missing)} update(s) "
                                f"received in round {rnd} and never "
                                f"proposed to successor {successor} in "
                                f"round {rnd + 1}"
                            ),
                        )
                    )


class ActingSourceNode(SimNode):
    """The AcTinG stream source: proposes fresh chunks to random nodes."""

    def __init__(
        self,
        node_id: int,
        network: Network,
        views: ViewProvider,
        schedule: StreamSchedule,
    ) -> None:
        super().__init__(node_id, network)
        self.views = views
        self.schedule = schedule
        self.released: List[Update] = []
        self._last_proposal: Dict[int, Update] = {}

    def begin_round(self, round_no: int) -> None:
        chunks = self.schedule.release(round_no)
        self.released.extend(chunks)
        if not chunks:
            return
        self._last_proposal = {u.uid: u for u in chunks}
        for successor in self.views.successors(self.node_id, round_no):
            self.send(
                ActingPropose(
                    sender=self.node_id,
                    recipient=successor,
                    round_no=round_no,
                    uids=tuple(sorted(self._last_proposal)),
                )
            )

    def on_message(self, message: Message) -> None:
        if isinstance(message, ActingRequest):
            to_send = tuple(
                self._last_proposal[uid]
                for uid in message.uids
                if uid in self._last_proposal
            )
            if to_send:
                self.send(
                    ActingServe(
                        sender=self.node_id,
                        recipient=message.sender,
                        round_no=message.round_no,
                        updates=to_send,
                    )
                )

    def total_released(self) -> int:
        return len(self.released)


@dataclass
class ActingSession:
    """A ready-to-run AcTinG deployment (mirrors
    :class:`repro.core.session.PagSession`)."""

    simulator: "Simulator"
    source: ActingSourceNode
    nodes: Dict[int, ActingNode]
    config: ActingConfig

    @classmethod
    def create(
        cls,
        n_nodes: int,
        config: Optional[ActingConfig] = None,
        selfish_nodes: Optional[Set[int]] = None,
        forging_nodes: Optional[Set[int]] = None,
    ) -> "ActingSession":
        from repro.membership.directory import Directory
        from repro.sim.engine import Simulator

        if config is None:
            config = ActingConfig(
                fanout=max(3, round(math.log10(n_nodes))),
                monitors_per_node=max(3, round(math.log10(n_nodes))),
            )
        directory = Directory.of_size(n_nodes, source_id=0)
        seeds = SeedSequence(config.seed)
        views = ViewProvider(
            directory=directory,
            seeds=seeds.child("views"),
            fanout=config.fanout,
            monitors_per_node=config.monitors_per_node,
        )
        network = Network()
        simulator = Simulator(network=network)
        schedule = StreamSchedule(
            rate_kbps=config.stream_rate_kbps,
            update_bytes=config.update_bytes,
            playout_delay_rounds=config.playout_delay_rounds,
        )
        source = ActingSourceNode(0, network, views, schedule)
        simulator.add_node(source)
        selfish_nodes = selfish_nodes or set()
        forging_nodes = forging_nodes or set()
        nodes: Dict[int, ActingNode] = {}
        for node_id in directory.consumers():
            node = ActingNode(
                node_id,
                network,
                views,
                config,
                seeds,
                selfish=node_id in selfish_nodes,
                forges_log=node_id in forging_nodes,
            )
            nodes[node_id] = node
            simulator.add_node(node)
        return cls(
            simulator=simulator, source=source, nodes=nodes, config=config
        )

    def run(self, rounds: int) -> None:
        self.simulator.run(rounds)

    def bandwidth_kbps(
        self, warmup_rounds: int = 0, direction: str = "both"
    ) -> Dict[int, float]:
        return self.simulator.network.meter.all_node_kbps(
            sorted(self.nodes),
            first_round=warmup_rounds,
            direction=direction,
        )

    def mean_bandwidth_kbps(
        self, warmup_rounds: int = 0, direction: str = "both"
    ) -> float:
        values = self.bandwidth_kbps(warmup_rounds, direction)
        return sum(values.values()) / len(values) if values else 0.0

    def all_verdicts(self) -> List[Verdict]:
        seen = set()
        merged: List[Verdict] = []
        for node in self.nodes.values():
            for verdict in node.verdicts:
                key = (verdict.node, verdict.reason, verdict.exchange_round)
                if key not in seen:
                    seen.add(key)
                    merged.append(verdict)
        return merged

    def convicted_nodes(self) -> Set[int]:
        return {v.node for v in self.all_verdicts()}


__all__.append("ActingSession")
