"""Figure/table renderers built on the scenario registry.

Each ``render_*`` regenerates one figure or table of the paper and
prints the series next to the paper's reference values.  Simulation
workloads come from the registry (``fig7``, ``fig9``, ...), closed-form
sweeps from :mod:`repro.analysis`.

Renderers register themselves against their scenario name in
:data:`PAPER_RENDERERS`; :func:`render_scenario_run` — the engine
behind ``repro run --scenario NAME`` — consults the registry, so
``repro run --scenario fig8`` prints the paper figure while unknown or
override-heavy invocations fall back to the generic measurement
summary.  The legacy verbs (``repro fig8`` etc.) are deprecated
aliases over the same dispatch.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, Optional

from repro.scenarios.registry import get_scenario
from repro.sim.execution import ExecutionPolicy

__all__ = [
    "PAPER_RENDERERS",
    "paper_renderer",
    "render_detect",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_table1",
    "render_table2",
    "render_scenario_run",
]

#: Scenario name -> paper renderer.  A renderer declares the override
#: keywords it supports (``nodes``, ``rounds``, ``strategy``,
#: ``execution_policy``) in its signature; :func:`render_scenario_run`
#: passes through only what fits and falls back to the generic summary
#: when an unsupported override was requested.
PAPER_RENDERERS: Dict[str, Callable[..., int]] = {}


def paper_renderer(name: str) -> Callable[
    [Callable[..., int]], Callable[..., int]
]:
    """Register a figure/table renderer for a scenario name."""

    def register(fn: Callable[..., int]) -> Callable[..., int]:
        PAPER_RENDERERS[name] = fn
        return fn

    return register


@paper_renderer("fig7")
def render_fig7(
    nodes: Optional[int] = None,
    rounds: Optional[int] = None,
    execution_policy: Optional[ExecutionPolicy] = None,
) -> int:
    pag = get_scenario("fig7", nodes=nodes, rounds=rounds).run(
        execution_policy
    )
    acting = get_scenario("fig7-acting", nodes=nodes, rounds=rounds).run(
        execution_policy
    )
    spec = pag.spec
    print(f"Fig. 7 — bandwidth CDF ({spec.nodes} nodes, 300 Kbps)")
    print(f"{'CDF %':>6} {'AcTinG':>8} {'PAG':>8}")
    acting_cdf = acting.cdf()
    pag_cdf = pag.cdf()
    for target in range(10, 101, 20):
        a = next(v for v, p in acting_cdf if p >= target)
        g = next(v for v, p in pag_cdf if p >= target)
        print(f"{target:>5}% {a:>8.0f} {g:>8.0f}")
    print(
        f"means: AcTinG {acting.mean_kbps:.0f}, PAG {pag.mean_kbps:.0f} "
        "(paper: 460 / 1050)"
    )
    return 0


@paper_renderer("fig8")
def render_fig8() -> int:
    from repro.analysis.bandwidth import PagBandwidthModel
    from repro.core import PagConfig

    print("Fig. 8 — bandwidth vs update size (1000 nodes, 300 Kbps)")
    print(f"{'update kb':>10} {'Kbps':>8}")
    for kb in (1, 2, 5, 10, 20, 50, 100):
        config = PagConfig.for_system_size(
            1000, stream_rate_kbps=300.0, update_bytes=int(kb * 125)
        )
        print(
            f"{kb:>10} "
            f"{PagBandwidthModel(config=config).total_kbps():>8.0f}"
        )
    return 0


@paper_renderer("fig9")
def render_fig9() -> int:
    from repro.analysis.bandwidth import (
        ActingBandwidthModel,
        PagBandwidthModel,
    )

    print("Fig. 9 — scalability with a 300 Kbps stream")
    print(f"{'nodes':>9} {'PAG':>8} {'AcTinG':>8}")
    for n in (10**3, 10**4, 10**5, 10**6):
        pag = PagBandwidthModel.for_system(n, 300.0).total_kbps()
        acting = ActingBandwidthModel.for_system(n, 300.0).total_kbps()
        print(f"{n:>9} {pag:>8.0f} {acting:>8.0f}")
    print("(paper anchors: PAG 2500 / AcTinG 840 at 10^6)")
    return 0


@paper_renderer("fig10")
def render_fig10() -> int:
    from repro.analysis.privacy import figure10_series

    print("Fig. 10 — interactions discovered vs attacker fraction")
    print(
        f"{'attackers':>9} {'AcTinG':>8} {'PAG-3':>7} {'PAG-5':>7} "
        f"{'min':>7}"
    )
    for p in figure10_series([i / 10 for i in range(11)]):
        print(
            f"{p.attacker_fraction:>8.0%} {p.acting:>8.1%} "
            f"{p.pag_3_monitors:>7.1%} {p.pag_5_monitors:>7.1%} "
            f"{p.theoretical_minimum:>7.1%}"
        )
    return 0


@paper_renderer("table1")
def render_table1() -> int:
    from repro.analysis.costs import table1_rows

    print("Table I — crypto operations per second per node")
    print(f"{'quality':>8} {'payload':>8} {'sigs/s':>7} {'hashes/s':>9}")
    for row in table1_rows():
        print(
            f"{row.quality:>8} {row.payload_kbps:>8.0f} "
            f"{row.rsa_signatures_per_s:>7.0f} "
            f"{row.homomorphic_hashes_per_s:>9.0f}"
        )
    return 0


@paper_renderer("table2")
def render_table2() -> int:
    from repro.analysis.quality import table2

    print("Table II — sustainable quality per link (1000 nodes)")
    for protocol, cells in table2().items():
        print(
            f"  {protocol:<7}: "
            + " | ".join(cell.render() for cell in cells)
        )
    return 0


@paper_renderer("detect")
def render_detect(
    nodes: Optional[int] = None,
    rounds: Optional[int] = None,
    strategy: Optional[str] = None,
    execution_policy: Optional[ExecutionPolicy] = None,
) -> int:
    """Run the detection demo: one deviant mid-ring, print verdicts.

    Exit status is conviction-based: 0 when exactly the deviant is
    convicted, 1 otherwise (the old ``repro detect`` contract).
    """
    from repro.scenarios.spec import SELFISH_STRATEGIES

    spec = get_scenario("detect", nodes=nodes, rounds=rounds)
    chosen = strategy if strategy is not None else "free-rider"
    deviant = spec.nodes // 2
    spec = dataclasses.replace(
        spec, node_strategies=((deviant, chosen),)
    )
    result = spec.run(execution_policy)
    print(
        f"deviant node {deviant} runs {SELFISH_STRATEGIES[chosen]} among "
        f"{spec.nodes - 1} correct nodes"
    )
    for verdict in result.session.all_verdicts()[:8]:
        print(
            f"  round {verdict.exchange_round:>2}: node {verdict.node} "
            f"GUILTY of {verdict.reason.value} — {verdict.evidence[:70]}"
        )
    convicted = set(result.convicted)
    print(f"convicted: {sorted(convicted)} (expected: [{deviant}])")
    return 0 if convicted == {deviant} else 1


def render_scenario_run(
    name: str,
    nodes: Optional[int] = None,
    rounds: Optional[int] = None,
    rate: Optional[float] = None,
    execution_policy: Optional[ExecutionPolicy] = None,
    json_out: Optional[str] = None,
    population: Optional[int] = None,
    strategy: Optional[str] = None,
) -> int:
    """Run any registered scenario and print its measurement summary.

    When ``name`` has a registered paper renderer and every supplied
    override fits that renderer's signature, the renderer is
    dispatched instead — ``repro run --scenario fig8`` prints the
    paper's update-size sweep, exactly like the deprecated ``repro
    fig8`` verb.  ``--json``/``--population`` (and any override the
    renderer doesn't take) force the generic measurement path, which
    is what the CI scenario matrix records.

    Args:
        json_out: optional path; writes the machine-readable summary
            (plus the measured wall clock and the Fig-7-style CDF) as
            JSON — the CI scenario-matrix job collects these into its
            ``BENCH_ci_scenarios.json`` artifact.
        population: population-tier override (see ``ScenarioSpec``);
            lets CI cap a million-node scenario to smoke scale.
        strategy: deviant strategy pass-through for renderers that
            accept one (the ``detect`` scenario).
    """
    import json
    import time

    renderer = PAPER_RENDERERS.get(name)
    if renderer is not None and json_out is None and population is None:
        supplied = {
            "nodes": nodes,
            "rounds": rounds,
            "rate": rate,
            "strategy": strategy,
            "execution_policy": execution_policy,
        }
        accepted = inspect.signature(renderer).parameters
        if all(
            value is None or key in accepted
            for key, value in supplied.items()
        ):
            return renderer(**{
                key: value
                for key, value in supplied.items()
                if key in accepted
            })
    if strategy is not None:
        raise SystemExit(
            f"error: --strategy does not apply to scenario {name!r} "
            "with these flags (it is a paper-renderer override)"
        )

    spec = get_scenario(
        name,
        nodes=nodes,
        rounds=rounds,
        stream_rate_kbps=rate,
        population=population,
    )
    start = time.perf_counter()
    result = spec.run(execution_policy)
    wall = time.perf_counter() - start
    if json_out is not None:
        payload = result.summary()
        payload["wall_seconds"] = round(wall, 4)
        payload["cdf"] = [
            (round(value, 6), round(percent, 6))
            for value, percent in result.cdf()
        ]
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(
        f"scenario {spec.name!r} [{spec.protocol}]: {spec.nodes} nodes, "
        f"{spec.rounds} rounds, {spec.stream_rate_kbps:.0f} Kbps stream"
    )
    if spec.paper_reference:
        print(f"paper: {spec.paper_reference}")
    summary = result.summary()
    print(
        f"mean download      : {summary['mean_down_kbps']:.0f} "
        "Kbps per node"
    )
    if result.continuity is not None:
        print(f"mean continuity    : {result.continuity:.1%}")
    print(f"messages           : {result.messages_sent}")
    print(f"verdicts           : {result.verdicts}")
    if result.convicted:
        print(f"convicted          : {list(result.convicted)}")
    deviants = spec.deviant_nodes()
    if deviants:
        print(f"deviants           : {sorted(deviants)}")
    if result.crypto_hashes is not None:
        print(f"homomorphic hashes : {result.crypto_hashes}")
    if spec.population:
        print(f"population         : {summary['population']}")
        print(
            "population mean    : "
            f"{summary['population_mean_down_kbps']:.0f} Kbps per node"
        )
        print(f"peak RSS           : {summary['peak_rss_mb']:.0f} MiB")
    return 0
