"""Registry of the paper's named scenarios.

Every reproduction entry point — ``repro run --scenario NAME``, the
``repro fig7``..``table2`` subcommands, the ``benchmarks/bench_fig*``
suite, and the integration tests — resolves its workload here, so the
paper's evaluation matrix is declared exactly once.  Registering a new
scenario (``register_scenario(ScenarioSpec(name="my-workload", ...))``)
immediately makes it runnable from the CLI and the benchmarks.

Specs carry an execution ``policy`` knob (serial / sharded / parallel —
all bit-identical; see :mod:`repro.sim.execution`), so a scenario can
declare that it defaults to the worker-pool backend; ``repro run
--policy`` and an explicit policy passed to ``run_scenario`` both
override it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.scenarios.spec import (
    AdversaryGroup,
    ChurnEvent,
    JoinEvent,
    RateStep,
    ScenarioResult,
    ScenarioSpec,
)
from repro.sim.execution import ExecutionPolicy
from repro.sim.faults import (
    CorruptionFault,
    DelayFault,
    LossFault,
    OutageFault,
)

__all__ = [
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "run_scenario",
]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    spec: ScenarioSpec, replace: bool = False
) -> ScenarioSpec:
    """Add a spec under its name; refuses silent redefinition."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str, **overrides: Any) -> ScenarioSpec:
    """Look up a named spec, optionally overriding fields.

    ``None`` overrides are ignored (CLI flags pass through untouched).
    """
    try:
        spec = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None
    return spec.with_overrides(**overrides)


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    return [_REGISTRY[name] for name in scenario_names()]


def run_scenario(
    name: str,
    execution_policy: Optional[ExecutionPolicy] = None,
    **overrides: Any,
) -> ScenarioResult:
    """Resolve, build, run, and measure a named scenario."""
    return get_scenario(name, **overrides).run(execution_policy)


# ---------------------------------------------------------------------------
# The paper's evaluation matrix (section VII).  Membership defaults are
# simulator-friendly; the paper-scale values are one override away
# (``repro run --scenario fig7 --nodes 432``).
# ---------------------------------------------------------------------------

register_scenario(ScenarioSpec(
    name="fig7",
    description="bandwidth CDF of a full PAG session (vs fig7-acting)",
    paper_reference=(
        "Fig. 7: 432 nodes, 300 Kbps, 3 monitors — PAG ~1050 Kbps mean, "
        "AcTinG ~460"
    ),
    nodes=60,
    rounds=12,
    warmup_rounds=4,
))

register_scenario(ScenarioSpec(
    name="fig7-acting",
    description="the AcTinG comparator run of Fig. 7",
    paper_reference="Fig. 7: AcTinG nodes consume ~460 Kbps on average",
    protocol="acting",
    nodes=60,
    rounds=12,
    warmup_rounds=4,
    seed=2014,  # the AcTinG baseline's historical seed
))

register_scenario(ScenarioSpec(
    name="fig8",
    description="packet-level anchor for the update-size sweep",
    paper_reference=(
        "Fig. 8: 1000 nodes, 300 Kbps — ~1900 Kbps at 1 kb updates "
        "falling below ~400 at 100 kb (sweep itself is closed-form)"
    ),
    nodes=40,
    rounds=12,
    warmup_rounds=4,
))

register_scenario(ScenarioSpec(
    name="fig9",
    description="scalability anchor: the simulator run validating the model",
    paper_reference=(
        "Fig. 9: PAG ~1 Mbps at 10^3 nodes to 2.5 Mbps at 10^6 "
        "(large N from the validated closed form)"
    ),
    nodes=120,
    rounds=15,
    warmup_rounds=4,
))

register_scenario(ScenarioSpec(
    name="fig9-parallel",
    description="fig9 on the worker-pool execution backend (2 shards)",
    paper_reference=(
        "Fig. 9 anchor run; execution-policy equivalence means the "
        "numbers match fig9 bit for bit (tests/differential)"
    ),
    nodes=120,
    rounds=15,
    warmup_rounds=4,
    policy="parallel",
    workers=2,
))

register_scenario(ScenarioSpec(
    name="fig9-1m",
    description=(
        "fig9 at deployment scale: a million-node population tier over "
        "a 120-node full-fidelity cohort"
    ),
    paper_reference=(
        "Fig. 9: PAG ~2.5 Mbps per node at 10^6 nodes; the vectorised "
        "honest plane is calibrated against the sampled cohort "
        "(see PERFORMANCE.md for the validation methodology)"
    ),
    nodes=120,
    rounds=60,
    warmup_rounds=4,
    population=1_000_000,
    policy="population",
))

register_scenario(ScenarioSpec(
    name="fig10",
    description="coalition privacy topology (Monte-Carlo + closed form)",
    paper_reference=(
        "Fig. 10: interactions discovered vs attacker fraction; PAG "
        "tracks the theoretical minimum"
    ),
    nodes=300,
    rounds=3,
    warmup_rounds=1,
    monitors_per_node=3,
    fanout=3,
))

register_scenario(ScenarioSpec(
    name="table1",
    description="crypto-operation counting run (signatures, hashes)",
    paper_reference=(
        "Table I: 33 RSA signatures/s/node at f = fm = 3; hashes linear "
        "in the chunk rate"
    ),
    nodes=40,
    rounds=12,
    warmup_rounds=4,
    fanout=3,
    monitors_per_node=3,
))

register_scenario(ScenarioSpec(
    name="table2",
    description="sustainable-quality anchor (quality matrix is closed-form)",
    paper_reference=(
        "Table II: PAG 144p on 1.5 Mbps links up to 1080p from 100 Mbps"
    ),
    nodes=40,
    rounds=12,
    warmup_rounds=4,
))

register_scenario(ScenarioSpec(
    name="selfish",
    description="one free-rider among correct nodes (detection demo)",
    paper_reference=(
        "Section VI: a free-riding node is convicted by its monitors"
    ),
    nodes=20,
    rounds=12,
    warmup_rounds=2,
    adversaries=(AdversaryGroup(strategy="free-rider", count=1),),
))

register_scenario(ScenarioSpec(
    name="detect",
    description="one mid-ring deviant node (the CLI detection demo)",
    paper_reference=(
        "Section VI: a deviant consumer is convicted by its monitors; "
        "the strategy is swappable (repro run --scenario detect "
        "--strategy silent-receiver)"
    ),
    nodes=20,
    rounds=12,
    warmup_rounds=2,
    node_strategies=((10, "free-rider"),),
))

register_scenario(ScenarioSpec(
    name="coalition-third",
    description="a third of the consumers free-ride in concert",
    paper_reference=(
        "Section VII-B: collective deviations are detected node by node"
    ),
    nodes=24,
    rounds=16,
    warmup_rounds=4,
    adversaries=(AdversaryGroup(strategy="free-rider", fraction=0.34),),
))

register_scenario(ScenarioSpec(
    name="churn",
    description="two nodes crash mid-stream with traffic in flight",
    paper_reference=(
        "Section IV-A: omission handling; a crashed node is convicted "
        "as unresponsive, the stream keeps playing"
    ),
    nodes=24,
    rounds=16,
    warmup_rounds=4,
    churn=(ChurnEvent(after_round=6, node_id=5),
           ChurnEvent(after_round=9, node_id=11)),
))

register_scenario(ScenarioSpec(
    name="join-churn",
    description="nodes join mid-session; monitor duties are reassigned",
    paper_reference=(
        "Section II-A/VII: dynamic memberships — arrivals are announced "
        "ahead (stable monitor sets, section V-C), excluded from "
        "successor draws until present, and enter the declaration "
        "rotation the round they arrive; one original node also crashes"
    ),
    nodes=20,
    rounds=14,
    warmup_rounds=4,
    arrivals=(JoinEvent(after_round=2, node_id=7),
              JoinEvent(after_round=5, node_id=13)),
    churn=(ChurnEvent(after_round=8, node_id=4),),
))

register_scenario(ScenarioSpec(
    name="coalition-mixed",
    description="a coalition mixing per-node selfish strategies",
    paper_reference=(
        "Section VI-B: every deviation maps to one behaviour hook; a "
        "coalition whose members cheat differently is still convicted "
        "node by node"
    ),
    nodes=21,
    rounds=14,
    warmup_rounds=4,
    node_strategies=(
        (3, "free-rider"),
        (8, "partial-forwarder"),
        (15, "declaration-skipper"),
    ),
    adversaries=(AdversaryGroup(strategy="silent-receiver", count=2),),
))

register_scenario(ScenarioSpec(
    name="rate-ramp",
    description="the source ramps its send rate mid-stream (150->300->600)",
    paper_reference=(
        "Table I quality ladder: adaptive sources switch rates; "
        "bandwidth and crypto load must track the ramp, detection "
        "stays quiet"
    ),
    nodes=20,
    rounds=12,
    warmup_rounds=4,
    stream_rate_kbps=150.0,
    rate_schedule=(RateStep(from_round=4, rate_kbps=300.0),
                   RateStep(from_round=8, rate_kbps=600.0)),
))

register_scenario(ScenarioSpec(
    name="fault-fuzz",
    description="mixed fault schedule (loss, delay, corruption, outage)",
    paper_reference=(
        "Section VI-B robustness: lossy links, one-round message "
        "delays, in-flight corruption and a crashed node leave every "
        "correct node unconvicted, while the seeded free-rider is "
        "still caught through the accusation path"
    ),
    nodes=18,
    rounds=10,
    warmup_rounds=3,
    node_strategies=((5, "free-rider"),),
    fault_schedule=(
        LossFault(
            probability=0.05,
            kinds=("key_request", "key_response", "serve",
                   "attestation", "ack"),
        ),
        DelayFault(
            probability=0.05, triggers=6,
            kinds=("serve", "attestation", "ack", "declaration_ack"),
        ),
        CorruptionFault(
            probability=1.0, max_corruptions=2,
            kinds=("serve", "ack"),
        ),
        OutageFault(node_id=11, first_round=2, last_round=3),
    ),
))
