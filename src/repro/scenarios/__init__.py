"""Declarative scenario subsystem.

The paper's evaluation is a matrix of named workloads; this package
declares them once (:mod:`repro.scenarios.registry`), describes each as
pure data (:class:`~repro.scenarios.spec.ScenarioSpec`) and gives the
CLI, the benchmarks and the tests a single way to build, run, and
measure them.  Start with::

    from repro.scenarios import run_scenario
    result = run_scenario("fig7", nodes=240)
    result.cdf()          # the Fig. 7 series
"""

from __future__ import annotations

from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.spec import (
    RESULT_SCHEMA_VERSION,
    SELFISH_STRATEGIES,
    AdversaryGroup,
    ChurnEvent,
    JoinEvent,
    RateStep,
    ScenarioResult,
    ScenarioSpec,
)

__all__ = [
    "AdversaryGroup",
    "RESULT_SCHEMA_VERSION",
    "ChurnEvent",
    "JoinEvent",
    "RateStep",
    "ScenarioResult",
    "ScenarioSpec",
    "SELFISH_STRATEGIES",
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
