"""Declarative simulation scenarios.

The paper's evaluation is a matrix of named workloads — membership
sizes, monitor counts, adversary mixes, churn, stream rates (Figs.
7-10, Tables I-II).  A :class:`ScenarioSpec` captures one cell of that
matrix as data: what to build, how long to run it, and which window to
measure.  Everything that used to be hand-wired per call site (CLI
subcommands, ``benchmarks/bench_fig*.py``, integration tests) builds
from a spec instead, so a new workload is one declaration, not another
copy of the session plumbing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.sim.execution import ExecutionPolicy, make_policy
from repro.sim.metrics import cdf_points

if TYPE_CHECKING:
    from repro.core import PagSession
    from repro.core.config import PagConfig

__all__ = [
    "AdversaryGroup",
    "ChurnEvent",
    "JoinEvent",
    "RateStep",
    "RESULT_SCHEMA_VERSION",
    "ScenarioSpec",
    "ScenarioResult",
    "SELFISH_STRATEGIES",
]

#: Version stamp of the :meth:`ScenarioResult.summary` payload (the
#: ``repro run --json`` output).  Consumers branch on this, so it is
#: golden-locked (``tests/scenarios/test_result_schema.py``): bump it
#: whenever a key is added, removed or changes meaning, and document
#: the change in ``docs/RESULTS.md``.
RESULT_SCHEMA_VERSION = 1

#: CLI-friendly name -> class name in :mod:`repro.adversary.selfish`.
SELFISH_STRATEGIES = {
    "free-rider": "FreeRider",
    "partial-forwarder": "PartialForwarder",
    "silent-receiver": "SilentReceiver",
    "declaration-skipper": "DeclarationSkipper",
    "contact-avoider": "ContactAvoider",
    "lying-monitor": "LyingMonitor",
    "stealthy-free-rider": "StealthyFreeRider",
}


@dataclass(frozen=True)
class AdversaryGroup:
    """A block of deviant nodes sharing one strategy.

    Args:
        strategy: key of :data:`SELFISH_STRATEGIES`.
        count: absolute number of deviants; used when non-zero.
        fraction: deviant share of the consumer population (rounded
            down), used when ``count`` is zero.
    """

    strategy: str
    count: int = 0
    fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.strategy not in SELFISH_STRATEGIES:
            raise ValueError(
                f"unknown adversary strategy {self.strategy!r}; expected "
                f"one of {sorted(SELFISH_STRATEGIES)}"
            )
        if self.count < 0 or not (0.0 <= self.fraction <= 1.0):
            raise ValueError("adversary count/fraction out of range")

    def size(self, n_consumers: int) -> int:
        if self.count:
            return min(self.count, n_consumers)
        return int(n_consumers * self.fraction)


@dataclass(frozen=True)
class ChurnEvent:
    """One node leaving the system after a given round completes."""

    after_round: int
    node_id: int

    def __post_init__(self) -> None:
        if self.after_round < 0:
            raise ValueError("churn round must be non-negative")


@dataclass(frozen=True)
class JoinEvent:
    """One node arriving after a given round completes.

    The node is announced in the directory from session start (so its
    stable monitor set exists immediately) but excluded from successor
    draws and absent from the engine until round ``after_round``
    finishes; it first participates in round ``after_round + 1``.
    """

    after_round: int
    node_id: int

    def __post_init__(self) -> None:
        if self.after_round < 0:
            raise ValueError("join round must be non-negative")


@dataclass(frozen=True)
class RateStep:
    """One step of a per-round send-rate schedule: from ``from_round``
    on, the source streams at ``rate_kbps``."""

    from_round: int
    rate_kbps: float

    def __post_init__(self) -> None:
        if self.from_round < 0:
            raise ValueError("rate step round must be non-negative")
        if self.rate_kbps <= 0:
            raise ValueError("rate step must set a positive rate")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the paper's evaluation matrix, as data.

    Attributes:
        name: registry key (``fig7``, ``table2``, ...).
        description: one line for ``repro scenarios`` listings.
        paper_reference: the figure/table and reported values reproduced.
        protocol: ``"pag"`` or ``"acting"`` (the baseline comparator).
        nodes: membership size including the source.
        rounds: rounds to simulate.
        warmup_rounds: rounds excluded from steady-state measurements.
        stream_rate_kbps / update_bytes: the source workload.
        fanout: successors per node; None picks the paper's
            size-dependent default (~log10 N).
        monitors_per_node: monitor-set size; None mirrors the fanout.
        adversaries: deviant node blocks, placed deterministically
            (evenly spaced over the consumer ids).
        node_strategies: explicit per-node strategy map, as
            ``(node_id, strategy)`` pairs — mixed coalitions pin each
            member's deviation exactly (the ``coalition-mixed``
            scenario).  Map entries claim their ids first; adversary
            *groups* then fill the remaining consumers.
        churn: nodes leaving after given rounds.
        arrivals: nodes joining after given rounds (PAG protocol only);
            see :class:`JoinEvent` for the membership semantics.
        rate_schedule: per-round send-rate ramp for the source, as
            :class:`RateStep` entries with strictly increasing rounds
            (PAG protocol only); ``stream_rate_kbps`` applies before
            the first step.
        fault_schedule: declarative fault injectors
            (:class:`~repro.sim.faults.FaultSpec` entries: ``LossFault``,
            ``DelayFault``, ``PartitionFault``, ``OutageFault``,
            ``LinkCutFault``, ``CorruptionFault``, ``BudgetFault``),
            built at session construction with rng streams derived from
            ``seed`` and installed on the parent network only — replica
            workers run in capture mode, so every execution policy sees
            the identical fault schedule (PAG protocol only).
        detection_enabled: run the monitoring state machine.
        seed: root seed for all session randomness.
        policy: default execution policy name (``"serial"``,
            ``"sharded"``, ``"parallel"``, ``"population"``,
            ``"daemon"`` — the loopback wire-codec path); None lets
            the engine default (serial) apply.  An explicit policy
            passed to :meth:`run` always wins.  All policies are
            bit-identical — this knob selects an execution backend,
            never a different schedule.
        population: total system size of the population tier; 0 (the
            default) disables it.  When set, ``nodes`` becomes the
            full-fidelity cohort (the sampled honest nodes plus every
            deviant) and ids ``nodes..population-1`` run as the
            vectorised honest plane (see :mod:`repro.sim.population`).
            The plane attaches to the engine, not the policy, so a
            population spec runs under every execution policy.
        population_spill_dir: directory for the plane's columnar
            per-round spill files; None uses an owned temporary
            directory (removed at collection).
        workers: shard/worker count for the sharded and parallel
            policies (ignored by serial).
        batch_verify: override for ``PagConfig.batch_verify`` (None
            keeps the config default).  Spec-level so replica workers of
            a parallel run rebuild with the same fold strategy as the
            parent; like the policy knob it never changes results, only
            how the monitor obligation fold is computed.
    """

    name: str
    description: str = ""
    paper_reference: str = ""
    protocol: str = "pag"
    nodes: int = 30
    rounds: int = 15
    warmup_rounds: int = 4
    stream_rate_kbps: float = 300.0
    update_bytes: int = 938
    fanout: Optional[int] = None
    monitors_per_node: Optional[int] = None
    adversaries: Tuple[AdversaryGroup, ...] = ()
    node_strategies: Tuple[Tuple[int, str], ...] = ()
    churn: Tuple[ChurnEvent, ...] = ()
    arrivals: Tuple[JoinEvent, ...] = ()
    rate_schedule: Tuple[RateStep, ...] = ()
    fault_schedule: Tuple[object, ...] = ()
    detection_enabled: bool = True
    seed: int = 20160627
    policy: Optional[str] = None
    workers: int = 4
    batch_verify: Optional[bool] = None
    population: int = 0
    population_spill_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.policy not in (
            None,
            "serial",
            "sharded",
            "parallel",
            "population",
            "daemon",
        ):
            raise ValueError(
                f"unknown execution policy {self.policy!r}; expected "
                "'serial', 'sharded', 'parallel', 'population' or "
                "'daemon'"
            )
        self._validate_population()
        if self.workers < 1:
            raise ValueError("worker count must be at least 1")
        if self.protocol not in ("pag", "acting"):
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                "expected 'pag' or 'acting'"
            )
        if self.nodes < 2:
            raise ValueError("a scenario needs a source and a consumer")
        if self.rounds < 1:
            raise ValueError("a scenario must run at least one round")
        if not 0 <= self.warmup_rounds < self.rounds:
            raise ValueError(
                f"warmup ({self.warmup_rounds}) must leave measurable "
                f"rounds (have {self.rounds})"
            )
        for event in self.churn:
            if event.node_id <= 0 or event.node_id >= self.nodes:
                raise ValueError(
                    f"churn names node {event.node_id}, outside the "
                    f"consumer ids 1..{self.nodes - 1}"
                )
            if event.after_round >= self.rounds - 1:
                raise ValueError(
                    f"churn after round {event.after_round} never takes "
                    f"effect in a {self.rounds}-round scenario"
                )
        if self.arrivals and self.protocol != "pag":
            raise ValueError(
                "join churn (arrivals) is modelled for the PAG protocol "
                "only"
            )
        if self.rate_schedule and self.protocol != "pag":
            raise ValueError(
                "rate schedules are modelled for the PAG protocol only"
            )
        joins: Dict[int, int] = {}
        for event in self.arrivals:
            if event.node_id <= 0 or event.node_id >= self.nodes:
                raise ValueError(
                    f"arrival names node {event.node_id}, outside the "
                    f"consumer ids 1..{self.nodes - 1}"
                )
            if event.node_id in joins:
                raise ValueError(
                    f"node {event.node_id} has two arrival events"
                )
            if event.after_round >= self.rounds - 1:
                raise ValueError(
                    f"arrival after round {event.after_round} never takes "
                    f"effect in a {self.rounds}-round scenario"
                )
            joins[event.node_id] = event.after_round
        for event in self.churn:
            joined = joins.get(event.node_id)
            if joined is not None and event.after_round <= joined:
                raise ValueError(
                    f"node {event.node_id} leaves after round "
                    f"{event.after_round} but only joins after round "
                    f"{joined}"
                )
        if self.rate_schedule:
            from repro.gossip.source import validate_rate_steps

            validate_rate_steps(
                (step.from_round, step.rate_kbps)
                for step in self.rate_schedule
            )
            for step in self.rate_schedule:
                if step.from_round >= self.rounds:
                    raise ValueError(
                        f"rate step at round {step.from_round} never takes "
                        f"effect in a {self.rounds}-round scenario"
                    )
        if self.fault_schedule:
            if self.protocol != "pag":
                raise ValueError(
                    "fault schedules are modelled for the PAG protocol "
                    "only"
                )
            from repro.core.messages import wire_kinds
            from repro.sim.faults import FaultSpec

            known_kinds = wire_kinds()
            for index, fault in enumerate(self.fault_schedule):
                if not isinstance(fault, FaultSpec):
                    raise ValueError(
                        f"fault_schedule[{index}] must be a FaultSpec "
                        f"declaration, got {fault!r}"
                    )
                fault.validate_for(self.nodes, self.rounds)
                unknown = set(getattr(fault, "kinds", ())) - known_kinds
                if unknown:
                    raise ValueError(
                        f"fault_schedule[{index}] names unknown message "
                        f"kinds {sorted(unknown)}"
                    )
        n_consumers = self.nodes - 1
        mapped: Dict[int, str] = {}
        for node_id, strategy in self.node_strategies:
            if strategy not in SELFISH_STRATEGIES:
                raise ValueError(
                    f"unknown strategy {strategy!r} for node {node_id}; "
                    f"expected one of {sorted(SELFISH_STRATEGIES)}"
                )
            if node_id <= 0 or node_id >= self.nodes:
                raise ValueError(
                    f"strategy map names node {node_id}, outside the "
                    f"consumer ids 1..{self.nodes - 1}"
                )
            if node_id in mapped:
                raise ValueError(
                    f"node {node_id} appears twice in the strategy map"
                )
            mapped[node_id] = strategy
        total_deviants = len(mapped) + sum(
            group.size(n_consumers) for group in self.adversaries
        )
        if total_deviants > n_consumers:
            raise ValueError(
                f"adversary groups and the strategy map claim "
                f"{total_deviants} nodes but the scenario has only "
                f"{n_consumers} consumers"
            )

    def _validate_population(self) -> None:
        """Population-tier knob validation (clear errors, fail early)."""
        if self.policy == "population" and self.population <= 0:
            raise ValueError(
                "policy 'population' needs population set above the "
                "cohort size"
            )
        if self.population_spill_dir is not None and self.population <= 0:
            raise ValueError(
                "population_spill_dir is a population-tier knob; set "
                "population first"
            )
        if self.population <= 0:
            return
        if self.protocol != "pag":
            raise ValueError(
                "the population tier is modelled for the PAG protocol "
                "only"
            )
        if self.population <= self.nodes:
            raise ValueError(
                f"population ({self.population}) must exceed the "
                f"full-fidelity cohort sample ({self.nodes} nodes); "
                "the sample size must be smaller than the population"
            )
        if self.fault_schedule:
            raise ValueError(
                "fault schedules are not modelled in the population "
                "tier (the calibrated plane assumes an unfaulted "
                "honest majority)"
            )
        if self.population_spill_dir is not None:
            import os

            spill = self.population_spill_dir
            if not os.path.isdir(spill):
                raise ValueError(
                    f"population_spill_dir {spill!r} is not an "
                    "existing directory"
                )
            if not os.access(spill, os.W_OK):
                raise ValueError(
                    f"population_spill_dir {spill!r} is not writable"
                )
        # Deviants must live inside the full-fidelity cohort: the plane
        # is honest by construction.  Group *sizes* are checked against
        # the cohort consumers in __post_init__; explicit id maps
        # (node_strategies, churn, arrivals) are range-checked there
        # too, so anything naming an id >= nodes already failed.

    # -- derived construction ----------------------------------------------

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with fields replaced (``nodes=240``, ``rounds=60``...).

        ``None`` values are ignored so CLI flags can be passed through
        unconditionally.
        """
        cleaned = {k: v for k, v in overrides.items() if v is not None}
        return dataclasses.replace(self, **cleaned) if cleaned else self

    def build_config(self, **config_overrides: Any) -> "PagConfig":
        """The :class:`~repro.core.config.PagConfig` this spec implies."""
        from repro.core.config import PagConfig

        overrides = dict(
            stream_rate_kbps=self.stream_rate_kbps,
            update_bytes=self.update_bytes,
            detection_enabled=self.detection_enabled,
            seed=self.seed,
        )
        if self.rate_schedule:
            overrides["rate_schedule"] = tuple(
                (step.from_round, step.rate_kbps)
                for step in self.rate_schedule
            )
        if self.fanout is not None:
            overrides["fanout"] = self.fanout
        elif self.population > 0:
            # The cohort samples a population-sized deployment: its
            # membership views use the *population's* size-dependent
            # fanout (~log10 N of a million, not of the cohort).
            from repro.membership.views import default_fanout

            overrides["fanout"] = default_fanout(self.population)
        if self.monitors_per_node is not None:
            overrides["monitors_per_node"] = self.monitors_per_node
        if self.batch_verify is not None:
            overrides["batch_verify"] = self.batch_verify
        overrides.update(config_overrides)
        return PagConfig.for_system_size(self.nodes, **overrides)

    def deviant_nodes(self) -> Dict[int, str]:
        """Node id -> strategy name, placed evenly over the consumers.

        Placement is deterministic (a function of the spec alone): the
        explicit ``node_strategies`` map claims its ids first, then
        each group's deviants are spread across the consumer id range
        so coalitions do not cluster around the source, skipping ids
        already claimed by the map or earlier groups.
        """
        n_consumers = self.nodes - 1
        taken: Dict[int, str] = dict(self.node_strategies)
        for group in self.adversaries:
            size = group.size(n_consumers)
            if size == 0:
                continue
            stride = max(1, n_consumers // size)
            placed = 0
            candidate = 1 + stride // 2
            while placed < size:
                node_id = (candidate - 1) % n_consumers + 1
                if node_id not in taken:
                    taken[node_id] = group.strategy
                    placed += 1
                    candidate += stride
                else:
                    candidate += 1
        return taken

    def build(
        self, execution_policy: Optional[ExecutionPolicy] = None
    ) -> Any:
        """Instantiate the session (PAG or AcTinG) this spec describes.

        Churn events are wired as round hooks on the simulator, so
        ``session.run(spec.rounds)`` replays the whole schedule.
        """
        if self.protocol == "acting":
            return self._build_acting(execution_policy)
        return self._build_pag(execution_policy)

    def build_pag_with(
        self,
        execution_policy: Optional[ExecutionPolicy] = None,
        **config_overrides: Any,
    ) -> "PagSession":
        """PAG session with extra :class:`PagConfig` overrides.

        For ablation sweeps over knobs the spec does not model
        (``buffermap_depth=2``, ``monitor_cross_checks=True``, ...).
        """
        return self._build_pag(execution_policy, **config_overrides)

    def _build_pag(
        self,
        execution_policy: Optional[ExecutionPolicy],
        **config_overrides: Any,
    ) -> "PagSession":
        import repro.adversary.selfish as selfish
        from repro.core import PagSession

        behaviors = {
            node_id: getattr(selfish, SELFISH_STRATEGIES[strategy])()
            for node_id, strategy in self.deviant_nodes().items()
        }
        arrivals = {
            event.node_id: event.after_round + 1 for event in self.arrivals
        }
        session = PagSession.create(
            self.nodes,
            config=self.build_config(**config_overrides),
            behaviors=behaviors or None,
            execution_policy=execution_policy,
            arrivals=arrivals or None,
        )
        self._wire_membership(session.simulator, session)
        self._wire_faults(session)
        self._bind_policy(execution_policy, session)
        if self.population > 0:
            from repro.sim.population import wire_population

            wire_population(self, session)
        return session

    def _build_acting(
        self, execution_policy: Optional[ExecutionPolicy]
    ) -> Any:
        import math

        from repro.baselines.acting import ActingConfig, ActingSession

        # Mirror ActingSession.create's size-dependent defaults, then
        # apply the spec's explicit choices field by field.
        default = max(3, round(math.log10(self.nodes)))
        fanout = self.fanout if self.fanout is not None else default
        monitors = (
            self.monitors_per_node
            if self.monitors_per_node is not None
            else fanout
        )
        config = ActingConfig(
            fanout=fanout,
            monitors_per_node=monitors,
            stream_rate_kbps=self.stream_rate_kbps,
            update_bytes=self.update_bytes,
            seed=self.seed,
        )
        selfish_ids = set(self.deviant_nodes())
        session = ActingSession.create(
            self.nodes, config=config, selfish_nodes=selfish_ids or None
        )
        if execution_policy is not None:
            session.simulator.policy = execution_policy
        self._wire_membership(session.simulator, session)
        self._bind_policy(execution_policy, session)
        return session

    def cohort_equivalent(self) -> "ScenarioSpec":
        """The cohort-sized full-fidelity spec this population spec samples.

        Strips the population knobs while pinning the population's
        derived fanout (and through it the mirrored monitor count), so
        the resulting spec builds the *same cohort* — the bit-identity
        oracle the differential suite checks, and the bootstrap replica
        workers rebuild from.  For non-population specs this is just
        the spec with the policy knob stripped.
        """
        if self.population <= 0:
            return dataclasses.replace(self, policy=None)
        fanout = self.fanout
        if fanout is None:
            from repro.membership.views import default_fanout

            fanout = default_fanout(self.population)
        return dataclasses.replace(
            self,
            policy=None,
            population=0,
            population_spill_dir=None,
            fanout=fanout,
        )

    def _bind_policy(
        self,
        execution_policy: Optional[ExecutionPolicy],
        session: Any,
    ) -> None:
        """Hand a replica-capable policy its session bootstrap.

        Worker-backed policies rebuild the session inside each worker
        from this spec (stripped of its own policy field and population
        knobs — replicas run the plain serial engine path over the
        cohort; the plane lives on the parent engine only).
        """
        binder = getattr(execution_policy, "bind_scenario", None)
        if binder is not None:
            binder(self.cohort_equivalent(), session)

    def _wire_faults(self, session: Any) -> None:
        """Build the fault schedule onto the session's network.

        Each declaration gets its own rng stream, derived from the spec
        seed and the entry's position — the same spec always produces
        the same fault schedule.  Rules are installed on the parent
        network; replica workers rebuilt from this spec install their
        own copies but never evaluate them (captures bypass drop rules),
        so the parent's merge-time evaluation is the single authority
        under every execution policy.
        """
        if not self.fault_schedule:
            return
        from repro.sim.rng import SeedSequence

        simulator = session.simulator
        network = simulator.network
        streams = SeedSequence(self.seed)
        for index, fault in enumerate(self.fault_schedule):
            rule = fault.build(
                rng=streams.stream("fault", index, fault.kind),
                network=network,
                round_seconds=simulator.round_seconds,
                label=f"{fault.kind}[{index}]",
            )
            network.add_drop_rule(rule)

    def _wire_membership(self, simulator: Any, session: Any) -> None:
        """Round hooks replaying the spec's join/leave schedule.

        Admissions run before removals within one hook, in sorted id
        order — the same order the execution policy mirrors them onto
        worker replicas, so membership stays deterministic everywhere.
        """
        if not self.churn and not self.arrivals:
            return
        leaves_by_round: Dict[int, List[int]] = {}
        for event in self.churn:
            leaves_by_round.setdefault(
                event.after_round, []
            ).append(event.node_id)
        joins_by_round: Dict[int, List[int]] = {}
        for event in self.arrivals:
            joins_by_round.setdefault(
                event.after_round, []
            ).append(event.node_id)
        remove = getattr(session, "remove_node", None)

        def on_round(round_no: int) -> None:
            for node_id in sorted(joins_by_round.get(round_no, ())):
                session.admit_node(node_id)
            for node_id in sorted(leaves_by_round.get(round_no, ())):
                if remove is not None:
                    remove(node_id)
                else:
                    # Sessions without a churn API (the acting baseline):
                    # drop the node from the engine and the session's
                    # own membership so reporting only sees live nodes.
                    simulator.remove_node(node_id)
                    session.nodes.pop(node_id, None)

        # Tagged so the service supervisor's manual-membership mode can
        # strip this hook and replay the same schedule through operator
        # control ops (the differential oracle for `repro ctl`).
        setattr(on_round, "membership_hook", True)
        simulator.add_round_hook(on_round)

    def make_policy(self) -> Optional[ExecutionPolicy]:
        """The execution policy this spec's ``policy`` knob names."""
        if self.policy is None:
            return None
        return make_policy(
            self.policy, shards=self.workers, workers=self.workers
        )

    def run(
        self, execution_policy: Optional[ExecutionPolicy] = None
    ) -> "ScenarioResult":
        """Build, run the full schedule, and collect the measurements.

        An explicit ``execution_policy`` wins over the spec's own
        ``policy`` knob.  Worker-backed policies are synced (reporting
        state pulled from the workers) before collection and closed
        afterwards, so callers never see half-run sessions or leaked
        pools.
        """
        policy = execution_policy
        if policy is None:
            policy = self.make_policy()
        session = None
        collected = False
        try:
            session = self.build(policy)
            session.run(self.rounds)
            if policy is not None:
                policy.sync_session(session)
            result = ScenarioResult.collect(self, session)
            if getattr(session.simulator, "planes", None):
                from repro.sim.population import (
                    build_population_result,
                )

                result = build_population_result(self, session, result)
            collected = True
            return result
        finally:
            if policy is not None:
                policy.close()
            # A run that died mid-flight still owns its population
            # planes (and their spill directories); collection closes
            # them on the success path, so only the failure path cleans
            # up here.
            if not collected and session is not None:
                for plane in getattr(session.simulator, "planes", ()):
                    try:
                        plane.close()
                    except Exception:
                        pass


@dataclass
class ScenarioResult:
    """Measurements of one scenario run, in the paper's units."""

    spec: ScenarioSpec
    session: object = field(repr=False)
    #: per-node steady-state download Kbps (the Fig. 7-9 unit).
    node_kbps: Dict[int, float] = field(default_factory=dict)
    mean_kbps: float = 0.0
    messages_sent: int = 0
    total_bytes: int = 0
    verdicts: int = 0
    convicted: Tuple[int, ...] = ()
    continuity: Optional[float] = None
    crypto_hashes: Optional[int] = None
    messages_dropped: int = 0
    messages_delayed: int = 0
    #: per-injector counters (``{"loss[0]": {"dropped": 12}, ...}``).
    fault_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: summed accusation-path counters across all monitor engines.
    accusations: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def collect(
        cls, spec: ScenarioSpec, session: Any
    ) -> "ScenarioResult":
        meter = session.simulator.network.meter
        node_ids = sorted(session.nodes)
        node_kbps = meter.all_node_kbps(
            node_ids,
            round_seconds=session.simulator.round_seconds,
            first_round=spec.warmup_rounds,
            direction="down",
        )
        mean = (
            sum(node_kbps.values()) / len(node_kbps) if node_kbps else 0.0
        )
        verdicts = session.all_verdicts()
        continuity = None
        hashes = None
        if spec.protocol == "pag":
            continuity = session.mean_continuity()
            hashes = session.context.hasher.operations
        total = sum(
            traffic.bytes_up for traffic in meter.totals.values()
        )
        network = session.simulator.network
        accusation_report = getattr(session, "accusation_report", None)
        return cls(
            spec=spec,
            session=session,
            node_kbps=node_kbps,
            mean_kbps=mean,
            messages_sent=network.messages_sent,
            total_bytes=total,
            verdicts=len(verdicts),
            convicted=tuple(sorted({v.node for v in verdicts})),
            continuity=continuity,
            crypto_hashes=hashes,
            messages_dropped=network.messages_dropped,
            messages_delayed=network.messages_delayed,
            fault_stats=(
                network.fault_report() if network.drop_rules else {}
            ),
            accusations=(
                accusation_report() if accusation_report else {}
            ),
        )

    def cdf(self) -> List[Tuple[float, float]]:
        """Fig. 7-style CDF of the per-node steady-state bandwidth."""
        return cdf_points(self.node_kbps)

    def summary(self) -> Dict[str, object]:
        """Flat dict for printing/JSON export."""
        out: Dict[str, object] = {
            "schema": RESULT_SCHEMA_VERSION,
            "scenario": self.spec.name,
            "protocol": self.spec.protocol,
            "nodes": self.spec.nodes,
            "rounds": self.spec.rounds,
            "mean_down_kbps": round(self.mean_kbps, 1),
            "messages": self.messages_sent,
            "total_bytes": self.total_bytes,
            "verdicts": self.verdicts,
            "convicted": list(self.convicted),
        }
        if self.continuity is not None:
            out["continuity"] = round(self.continuity, 4)
        if self.crypto_hashes is not None:
            out["homomorphic_hashes"] = self.crypto_hashes
        if self.spec.fault_schedule:
            out["messages_dropped"] = self.messages_dropped
            out["messages_delayed"] = self.messages_delayed
            out["faults"] = {
                label: dict(stats)
                for label, stats in self.fault_stats.items()
            }
            out["accusations"] = dict(self.accusations)
        return out
