"""Fault & adversary fuzzing harness.

Draws random :class:`~repro.scenarios.spec.ScenarioSpec` instances —
fault schedules x adversary mixes x churn — runs each under every
execution policy, and checks three invariants on every draw:

1. **No false convictions**: every convicted node is a seeded deviant,
   a churned node (leaving is indistinguishable from refusing), or an
   outaged node (a crash is indistinguishable from a refusal, section
   VI-B).  Verdicts *detected by* an outaged monitor are discounted —
   its case files are built on traffic it never saw.
2. **No missed deviants**: every seeded deviant is eventually convicted
   by a non-outaged detector, even when faults disturb the evidence
   chain (the accusation path must route around them).
3. **Bit-identity across execution policies**: serial, sharded and
   parallel runs of the same spec produce identical traffic counts,
   crypto-operation counts, verdicts, per-injector fault tallies and
   accusation counters.

The generator confines faults to the *invariant-safe envelope* (see
:mod:`repro.sim.faults`): the accountability plane is never faulted,
losses stay on the five exchange kinds whose recovery runs through the
accusation path, delays touch at most one stage of the
exchange-to-declaration chain (two consecutive boundary crossings would
outrun the one-round redeclaration budget), and corruption of the
declaration seam is budgeted to one hit so a retry always lands in
time.  Everything in the envelope must survive; a violation is a bug.

Failures shrink greedily to a minimal still-failing spec and serialise
to JSON (:func:`spec_to_json` / :func:`spec_from_json`), so a nightly
CI failure replays locally with ``repro fuzz --replay report.json``.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.scenarios.spec import ChurnEvent, ScenarioSpec
from repro.sim.faults import (
    FAULT_SPEC_TYPES,
    BudgetFault,
    CorruptionFault,
    DelayFault,
    FaultSpec,
    LinkCutFault,
    LossFault,
    OutageFault,
    PartitionFault,
)

__all__ = [
    "EXCHANGE_KINDS",
    "FUZZ_STRATEGIES",
    "FuzzConfig",
    "draw_spec",
    "run_fingerprint",
    "evaluate_invariants",
    "run_iteration",
    "shrink_spec",
    "run_fuzz",
    "spec_to_json",
    "spec_from_json",
]

#: The five kinds of the Fig. 5 exchange.  Loss here is always
#: recoverable: a missing serve/ack turns into an accusation, the probe
#: re-delivers the entries, and the ProbeAck/Nack settles the case —
#: no retry of the lost message itself is ever needed.
EXCHANGE_KINDS = (
    "key_request",
    "key_response",
    "serve",
    "attestation",
    "ack",
)

#: Delay kind-sets that cross at most one stage of the
#: exchange -> declaration chain.  A delayed message is released at the
#: next round boundary and bypasses further rules, so a single stage
#: shifts the chain by one round — which the redeclaration budget and
#: the end-of-round obligation checks absorb.  Two *sequential* stages
#: delayed (say key_response, then the serve built from it) would shift
#: by two rounds and falsely convict the receiver.
DELAY_KIND_CHOICES = (
    ("key_request",),
    ("key_response",),
    ("serve", "attestation"),
    ("ack",),
    ("ack_copy", "attestation_relay"),
    ("declaration_ack",),
    ("serve", "attestation", "ack", "declaration_ack"),
)

#: Corruption of the exchange plane is re-served by the probe, so any
#: number of hits recovers; the declaration seam only tolerates one hit
#: per declaration (the redeclaration retry must land untouched).
CORRUPT_EXCHANGE_KINDS = ("serve", "attestation", "ack")
CORRUPT_DECLARATION_KINDS = ("ack_copy", "attestation_relay")

#: Strategies whose conviction is prompt enough for short fuzz runs
#: (8-10 rounds); see tests/core/test_detection.py for the full set.
FUZZ_STRATEGIES = (
    "free-rider",
    "partial-forwarder",
    "silent-receiver",
    "declaration-skipper",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Bounds for one fuzzing campaign."""

    iterations: int = 50
    seed: int = 20160627
    policies: Tuple[str, ...] = ("serial", "sharded", "parallel")
    workers: int = 2
    min_nodes: int = 10
    max_nodes: int = 16
    min_rounds: int = 8
    max_rounds: int = 10
    max_faults: int = 4
    max_violations: int = 3
    shrink: bool = True

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be at least 1")
        if not self.policies:
            raise ValueError("at least one execution policy is required")
        for policy in self.policies:
            if policy not in ("serial", "sharded", "parallel"):
                raise ValueError(f"unknown execution policy {policy!r}")
        if not 3 <= self.min_nodes <= self.max_nodes:
            raise ValueError("node bounds must satisfy 3 <= min <= max")
        if not 6 <= self.min_rounds <= self.max_rounds:
            raise ValueError("round bounds must satisfy 6 <= min <= max")


# ----------------------------------------------------------------------
# Spec generation
# ----------------------------------------------------------------------


def _sample_kinds(
    rng: random.Random, pool: Sequence[str]
) -> Tuple[str, ...]:
    count = rng.randint(1, len(pool))
    return tuple(sorted(rng.sample(list(pool), count)))


def _draw_fault(
    rng: random.Random,
    nodes: int,
    rounds: int,
    pool: List[int],
    allow: Dict[str, bool],
) -> Optional[FaultSpec]:
    """One random fault inside the invariant-safe envelope.

    ``pool`` holds honest, non-churned consumer ids — targeted faults
    (outage, link cut, budget, partition) never select deviants, so a
    fault can not accidentally mask the behaviour invariant 2 must
    convict.  ``allow`` gates the one-per-spec fault families.
    """
    choices = ["loss", "corruption"]
    if allow.get("delay", True):
        choices.append("delay")
    if len(pool) >= 1 and allow.get("outage", True):
        choices.append("outage")
    if len(pool) >= 2:
        choices.extend(["link-cut", "budget"])
    if len(pool) >= 3 and rounds >= 6 and allow.get("partition", True):
        choices.append("partition")
    kind = rng.choice(choices)
    if kind == "loss":
        return LossFault(
            probability=rng.uniform(0.02, 0.12),
            kinds=_sample_kinds(rng, EXCHANGE_KINDS),
        )
    if kind == "delay":
        allow["delay"] = False
        return DelayFault(
            probability=rng.uniform(0.02, 0.10),
            triggers=rng.randint(1, 30),
            kinds=rng.choice(DELAY_KIND_CHOICES),
        )
    if kind == "corruption":
        if rng.random() < 0.7:
            return CorruptionFault(
                probability=rng.uniform(0.3, 1.0),
                max_corruptions=rng.randint(1, 3),
                kinds=_sample_kinds(rng, CORRUPT_EXCHANGE_KINDS),
            )
        return CorruptionFault(
            probability=rng.uniform(0.3, 1.0),
            max_corruptions=1,
            kinds=_sample_kinds(rng, CORRUPT_DECLARATION_KINDS),
        )
    if kind == "outage":
        allow["outage"] = False
        node = rng.choice(pool)
        first = rng.randint(1, max(1, rounds - 3))
        return OutageFault(
            node_id=node,
            first_round=first,
            last_round=min(first + rng.randint(0, 1), rounds - 2),
        )
    if kind == "link-cut":
        a, b = rng.sample(pool, 2)
        return LinkCutFault(
            links=((a, b), (b, a)),
            kinds=_sample_kinds(rng, EXCHANGE_KINDS),
        )
    if kind == "budget":
        count = min(len(pool), rng.randint(1, 2))
        return BudgetFault(
            node_kbps=tuple(
                (node, round(rng.uniform(180.0, 400.0), 1))
                for node in sorted(rng.sample(pool, count))
            )
        )
    allow["partition"] = False
    group = tuple(sorted(rng.sample(pool, rng.randint(2, 3))))
    first = rng.randint(1, rounds - 4)
    return PartitionFault(
        group=group,
        first_round=first,
        last_round=min(first + rng.randint(0, 1), rounds - 3),
        kinds=_sample_kinds(rng, EXCHANGE_KINDS),
    )


def draw_spec(
    rng: random.Random, index: int, config: FuzzConfig
) -> ScenarioSpec:
    """One random scenario: deviants x churn x fault schedule."""
    nodes = rng.randint(config.min_nodes, config.max_nodes)
    rounds = rng.randint(config.min_rounds, config.max_rounds)
    consumers = list(range(1, nodes))
    n_deviants = rng.randint(0, min(3, max(1, (nodes - 1) // 4)))
    deviants = sorted(rng.sample(consumers, n_deviants))
    strategies = tuple(
        (node, rng.choice(FUZZ_STRATEGIES)) for node in deviants
    )
    honest = [c for c in consumers if c not in set(deviants)]
    churn: List[ChurnEvent] = []
    roll = rng.random()
    if deviants and roll < 0.35:
        # The ISSUE's nastiest case: a deviant leaves just before (or
        # around) its conviction; the accusation path must still settle
        # it — a leaver is indistinguishable from a refuser.
        churn.append(
            ChurnEvent(
                after_round=rng.randint(2, max(2, rounds - 4)),
                node_id=rng.choice(deviants),
            )
        )
    elif roll < 0.55 and honest:
        churn.append(
            ChurnEvent(
                after_round=rng.randint(1, rounds - 2),
                node_id=rng.choice(honest),
            )
        )
    churned = {event.node_id for event in churn}
    pool = [node for node in honest if node not in churned]
    allow: Dict[str, bool] = {}
    faults: List[FaultSpec] = []
    for _ in range(rng.randint(1, config.max_faults)):
        fault = _draw_fault(rng, nodes, rounds, pool, allow)
        if fault is not None:
            faults.append(fault)
    return ScenarioSpec(
        name=f"fuzz-{index}",
        description="randomly drawn fault/adversary scenario",
        nodes=nodes,
        rounds=rounds,
        warmup_rounds=2,
        node_strategies=strategies,
        churn=tuple(churn),
        fault_schedule=tuple(faults),
        seed=rng.randrange(1, 2**31),
    )


# ----------------------------------------------------------------------
# Running and invariants
# ----------------------------------------------------------------------


def run_fingerprint(
    spec: ScenarioSpec, policy: str, workers: int
) -> Dict[str, object]:
    """Run ``spec`` under one policy; a comparable run record.

    Every field is either an exact integer tally or derived from one,
    so equality across policies is the bit-identity invariant — any
    scheduling divergence shows up in the hash-operation count or the
    verdict set long before it would show in aggregate bandwidth.
    """
    result = spec.with_overrides(policy=policy, workers=workers).run()
    verdicts = tuple(
        sorted(
            (v.node, v.reason.name, v.exchange_round, v.detected_by)
            for v in result.session.all_verdicts()
        )
    )
    return {
        "messages_sent": result.messages_sent,
        "messages_dropped": result.messages_dropped,
        "messages_delayed": result.messages_delayed,
        "total_bytes": result.total_bytes,
        "crypto_hashes": result.crypto_hashes,
        "verdicts": verdicts,
        "fault_stats": result.fault_stats,
        "accusations": result.accusations,
        "continuity": result.continuity,
    }


def _excused_nodes(spec: ScenarioSpec) -> Tuple[set, set]:
    """(excused convicts, discounted detectors) for a spec.

    Deviants are convicted by design; churned and outaged nodes are
    legitimately convicted because leaving/crashing is observationally
    identical to refusing (section VI-B).  An outaged node's own
    verdicts are discounted: it judged rounds it never witnessed.
    """
    deviants = set(spec.deviant_nodes())
    churned = {event.node_id for event in spec.churn}
    outaged = {
        fault.node_id
        for fault in spec.fault_schedule
        if isinstance(fault, OutageFault)
    }
    return deviants | churned | outaged, outaged


def evaluate_invariants(
    spec: ScenarioSpec, fingerprint: Dict[str, object]
) -> List[str]:
    """Invariant 1 and 2 violations for one run record."""
    excused, discounted = _excused_nodes(spec)
    deviants = set(spec.deviant_nodes())
    trusted = [
        v for v in fingerprint["verdicts"] if v[3] not in discounted
    ]
    convicted = {v[0] for v in trusted}
    violations = []
    false_positives = sorted(convicted - excused)
    if false_positives:
        violations.append(
            f"invariant 1: honest nodes convicted: {false_positives}"
        )
    missed = sorted(deviants - convicted)
    if missed:
        violations.append(
            f"invariant 2: seeded deviants never convicted: {missed}"
        )
    return violations


def run_iteration(
    spec: ScenarioSpec, config: FuzzConfig
) -> Tuple[List[str], Dict[str, object]]:
    """All three invariants for one spec; (violations, base record)."""
    records = {
        policy: run_fingerprint(spec, policy, config.workers)
        for policy in config.policies
    }
    base_policy = config.policies[0]
    base = records[base_policy]
    violations = []
    for policy in config.policies[1:]:
        if records[policy] != base:
            diverging = sorted(
                key for key in base if records[policy][key] != base[key]
            )
            violations.append(
                f"invariant 3: {policy} diverges from {base_policy} "
                f"on {diverging}"
            )
    violations.extend(evaluate_invariants(spec, base))
    return violations, base


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _shrink_candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Structurally smaller variants, most aggressive first."""
    candidates = []
    for index in range(len(spec.fault_schedule)):
        schedule = (
            spec.fault_schedule[:index] + spec.fault_schedule[index + 1:]
        )
        candidates.append(
            dataclasses.replace(spec, fault_schedule=schedule)
        )
    for index in range(len(spec.churn)):
        churn = spec.churn[:index] + spec.churn[index + 1:]
        candidates.append(dataclasses.replace(spec, churn=churn))
    for index in range(len(spec.node_strategies)):
        strategies = (
            spec.node_strategies[:index]
            + spec.node_strategies[index + 1:]
        )
        candidates.append(
            dataclasses.replace(spec, node_strategies=strategies)
        )
    return candidates


def shrink_spec(
    spec: ScenarioSpec,
    config: FuzzConfig,
    max_runs: int = 30,
) -> ScenarioSpec:
    """Greedily remove faults/churn/deviants while the spec still fails.

    Each probe is a full multi-policy run, so the budget is capped; the
    result is a locally minimal spec — removing any single remaining
    ingredient makes the violation disappear.
    """
    current = spec
    runs = 0
    progress = True
    while progress and runs < max_runs:
        progress = False
        for candidate in _shrink_candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            try:
                violations, _ = run_iteration(candidate, config)
            except Exception:
                continue  # an invalid reduction is not a reduction
            if violations:
                current = candidate
                progress = True
                break
    return current


# ----------------------------------------------------------------------
# Spec (de)serialisation — the replayable repro artifact
# ----------------------------------------------------------------------


def fault_to_json(fault: FaultSpec) -> Dict[str, object]:
    data = dataclasses.asdict(fault)
    data["kind"] = fault.kind
    return data


def fault_from_json(data: Dict[str, object]) -> FaultSpec:
    payload = dict(data)
    kind = payload.pop("kind")
    cls = FAULT_SPEC_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of "
            f"{sorted(FAULT_SPEC_TYPES)}"
        )
    return cls(**{key: _tuplize(value) for key, value in payload.items()})


def _tuplize(value: object) -> object:
    if isinstance(value, list):
        return tuple(_tuplize(item) for item in value)
    return value


def spec_to_json(spec: ScenarioSpec) -> Dict[str, object]:
    """A JSON-safe dict replaying exactly this spec."""
    return {
        "name": spec.name,
        "nodes": spec.nodes,
        "rounds": spec.rounds,
        "warmup_rounds": spec.warmup_rounds,
        "seed": spec.seed,
        "node_strategies": [list(pair) for pair in spec.node_strategies],
        "churn": [
            [event.after_round, event.node_id] for event in spec.churn
        ],
        "fault_schedule": [
            fault_to_json(fault) for fault in spec.fault_schedule
        ],
    }


def spec_from_json(data: Dict[str, object]) -> ScenarioSpec:
    return ScenarioSpec(
        name=str(data.get("name", "fuzz-replay")),
        nodes=int(data["nodes"]),
        rounds=int(data["rounds"]),
        warmup_rounds=int(data.get("warmup_rounds", 2)),
        seed=int(data["seed"]),
        node_strategies=tuple(
            (int(node), str(strategy))
            for node, strategy in data.get("node_strategies", ())
        ),
        churn=tuple(
            ChurnEvent(after_round=int(after), node_id=int(node))
            for after, node in data.get("churn", ())
        ),
        fault_schedule=tuple(
            fault_from_json(entry)
            for entry in data.get("fault_schedule", ())
        ),
    )


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------


def run_fuzz(
    config: FuzzConfig,
    progress: Optional[Callable[[str], None]] = None,
    replay_spec: Optional[ScenarioSpec] = None,
) -> Dict[str, object]:
    """Run a fuzzing campaign; a JSON-ready report.

    ``replay_spec`` short-circuits generation: the single given spec is
    checked once (the ``repro fuzz --replay`` path).  Violating specs
    are shrunk (when configured) and embedded in the report for replay.
    """
    rng = random.Random(config.seed)
    report: Dict[str, object] = {
        "config": dataclasses.asdict(config),
        "iterations": 0,
        "violations": [],
        "totals": {
            "deviants": 0,
            "faults": 0,
            "convictions": 0,
            "messages_dropped": 0,
            "messages_delayed": 0,
        },
    }
    totals = report["totals"]
    iterations = 1 if replay_spec is not None else config.iterations
    for index in range(iterations):
        if replay_spec is not None:
            spec = replay_spec
        else:
            spec = draw_spec(rng, index, config)
        violations, record = run_iteration(spec, config)
        report["iterations"] += 1
        totals["deviants"] += len(spec.deviant_nodes())
        totals["faults"] += len(spec.fault_schedule)
        totals["convictions"] += len(
            {v[0] for v in record["verdicts"]}
        )
        totals["messages_dropped"] += record["messages_dropped"]
        totals["messages_delayed"] += record["messages_delayed"]
        if violations:
            shrunk = spec
            if config.shrink and replay_spec is None:
                if progress is not None:
                    progress(
                        f"iteration {index}: VIOLATION — shrinking..."
                    )
                shrunk = shrink_spec(spec, config)
            report["violations"].append(
                {
                    "iteration": index,
                    "violations": violations,
                    "spec": spec_to_json(shrunk),
                    "original_spec": spec_to_json(spec),
                }
            )
            if progress is not None:
                for line in violations:
                    progress(f"iteration {index}: {line}")
            if len(report["violations"]) >= config.max_violations:
                break
        elif progress is not None and (index + 1) % 10 == 0:
            progress(f"{index + 1}/{iterations} iterations clean")
    report["ok"] = not report["violations"]
    return report
