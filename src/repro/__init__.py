"""Reproduction of "PAG: Private and Accountable Gossip" (ICDCS 2016).

PAG (Decouchant, Ben Mokhtar, Petit, Quéma) is the first gossip
dissemination protocol that is simultaneously accountable (selfish
nodes are provably convicted) and partially privacy-preserving
(monitors verify forwarding through homomorphic hashes without learning
update contents or building interest graphs).

Package map:

* :mod:`repro.core` — the protocol itself (start with
  :class:`repro.core.PagSession`);
* :mod:`repro.scenarios` — the declarative registry of the paper's
  evaluation matrix (start with :func:`repro.scenarios.run_scenario`);
* :mod:`repro.crypto` — primes, RSA, the homomorphic hash;
* :mod:`repro.sim` — the round-synchronous simulation substrate;
* :mod:`repro.membership`, :mod:`repro.gossip`, :mod:`repro.streaming`
  — membership views, dissemination, and the video application layer;
* :mod:`repro.baselines` — AcTinG and RAC, the paper's comparators;
* :mod:`repro.adversary` — selfish strategies, coalitions, the global
  observer;
* :mod:`repro.analysis` — bandwidth/cost/privacy models and the Nash
  check;
* :mod:`repro.verifier` — the Dolev-Yao engine reproducing the ProVerif
  analysis.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
