"""Interest obfuscation — the paper's future-work extension, implemented.

Section IX: "The privacy of nodes could be further enhanced if even the
direct neighbors of nodes could not determine the media content they are
interested in. ... future works include the design of a dissemination
protocol that would improve on the obfuscation approach, which hide the
interests of nodes by making them receive several contents at the same
time."

PAG's P1 hides *which updates* travel from monitors, but a node's
**session membership** is public: whoever appears in the membership of
the "channel 5" session is interested in channel 5.  The obfuscation
approach makes every node join its true session plus ``k - 1`` decoy
sessions, chosen uniformly; an observer of session memberships then
faces a ``1/k`` posterior (before side information) on any node's true
interest.

This module provides:

* :class:`ObfuscationPlan` — decoy assignment with reproducible
  randomness and bandwidth-cost accounting (each extra session costs a
  full dissemination's bandwidth, which is the approach's known
  drawback and the reason the paper calls improving on it future work);
* :func:`interest_posterior` — what an attacker observing memberships
  can infer, with and without per-session popularity priors;
* :func:`anonymity_set_size` — the effective hiding each node enjoys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set

from repro.sim.rng import SeedSequence

__all__ = [
    "ObfuscationPlan",
    "interest_posterior",
    "anonymity_set_size",
]


@dataclass
class ObfuscationPlan:
    """Decoy-session assignment for a population of nodes.

    Attributes:
        sessions: available content sessions (ids).
        true_interest: node -> the session it actually wants.
        cover_factor: total sessions each node joins (k >= 1; k = 1
            means no obfuscation).
        seed: reproducible decoy choice.
    """

    sessions: Sequence[int]
    true_interest: Mapping[int, int]
    cover_factor: int = 2
    seed: int = 0
    memberships: Dict[int, Set[int]] = field(init=False)

    def __post_init__(self) -> None:
        if self.cover_factor < 1:
            raise ValueError("cover factor must be at least 1")
        if self.cover_factor > len(self.sessions):
            raise ValueError(
                "cannot join more sessions than exist "
                f"({self.cover_factor} > {len(self.sessions)})"
            )
        session_set = set(self.sessions)
        for node, interest in self.true_interest.items():
            if interest not in session_set:
                raise ValueError(
                    f"node {node} wants unknown session {interest}"
                )
        self.memberships = self._assign()

    def _assign(self) -> Dict[int, Set[int]]:
        seeds = SeedSequence(self.seed)
        memberships: Dict[int, Set[int]] = {}
        for node, interest in sorted(self.true_interest.items()):
            rng = seeds.stream("decoys", node)
            decoy_pool = [s for s in self.sessions if s != interest]
            decoys = rng.sample(decoy_pool, self.cover_factor - 1)
            memberships[node] = {interest, *decoys}
        return memberships

    # -- what the system pays -------------------------------------------

    def bandwidth_multiplier(self) -> float:
        """Obfuscation's cost: a node pays for every session it joins."""
        return float(self.cover_factor)

    def session_members(self, session: int) -> List[int]:
        return sorted(
            node
            for node, sessions in self.memberships.items()
            if session in sessions
        )

    # -- what the attacker learns ----------------------------------------

    def observer_view(self) -> Dict[int, Set[int]]:
        """Session memberships are public metadata (the attacker's
        input): a copy, to make the information boundary explicit."""
        return {node: set(s) for node, s in self.memberships.items()}


def interest_posterior(
    memberships: Mapping[int, Set[int]],
    popularity: Mapping[int, float] | None = None,
) -> Dict[int, Dict[int, float]]:
    """Attacker's posterior over each node's true interest.

    Args:
        memberships: node -> joined sessions (the public observation).
        popularity: optional prior weight per session (e.g. global view
            counts).  Uniform when omitted.

    Returns:
        node -> {session: probability that it is the true interest}.
    """
    posteriors: Dict[int, Dict[int, float]] = {}
    for node, joined in memberships.items():
        if not joined:
            raise ValueError(f"node {node} joined no session")
        weights = {
            session: (
                popularity.get(session, 0.0) if popularity else 1.0
            )
            for session in joined
        }
        total = sum(weights.values())
        if total <= 0:
            # Degenerate prior: fall back to uniform.
            weights = {session: 1.0 for session in joined}
            total = float(len(joined))
        posteriors[node] = {
            session: weight / total for session, weight in weights.items()
        }
    return posteriors


def anonymity_set_size(
    memberships: Mapping[int, Set[int]],
    popularity: Mapping[int, float] | None = None,
) -> Dict[int, float]:
    """Effective anonymity per node: exp(entropy of the posterior).

    With uniform priors and cover factor k this is exactly k; skewed
    popularity priors shrink it (the known weakness of naive decoys:
    joining a wildly unpopular decoy convinces nobody).
    """
    result: Dict[int, float] = {}
    for node, posterior in interest_posterior(
        memberships, popularity
    ).items():
        entropy = -sum(
            p * math.log(p) for p in posterior.values() if p > 0
        )
        result[node] = math.exp(entropy)
    return result
