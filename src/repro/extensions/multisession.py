"""Concurrent gossip sessions.

Section III: "We assume that several gossip sessions disseminating
different contents can hold simultaneously in the system.  Each content
is generated and signed by its source."

Sessions are protocol-independent — separate sources, separate primes,
separate monitor state — so a node participating in k sessions pays the
per-session costs k times.  The runner executes the sessions (each on
its own engine, as independent protocol instances are) and aggregates
the per-node totals, which is the quantity a multi-content deployment
provisions for.  Combined with :mod:`repro.extensions.obfuscation`, it
prices the paper's future-work proposal: hiding interests by joining
decoy sessions multiplies exactly these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.core.config import PagConfig
from repro.core.session import PagSession

__all__ = ["MultiSessionRunner", "MultiSessionReport"]


@dataclass(frozen=True)
class MultiSessionReport:
    """Aggregate measurements across concurrent sessions."""

    per_session_mean_kbps: Dict[int, float]
    aggregate_mean_kbps: float
    per_session_continuity: Dict[int, float]
    total_verdicts: int

    @property
    def sessions(self) -> int:
        return len(self.per_session_mean_kbps)


@dataclass
class MultiSessionRunner:
    """Run k independent PAG sessions and aggregate their costs.

    Attributes:
        n_nodes: membership size of each session (the paper's model has
            one shared membership; per-session memberships of the same
            size measure the same per-node cost).
        session_configs: one config per session (rates may differ —
            e.g. a 144p channel next to a 1080p channel).
    """

    n_nodes: int
    session_configs: Sequence[PagConfig]
    sessions: Dict[int, PagSession] = field(init=False)

    def __post_init__(self) -> None:
        if not self.session_configs:
            raise ValueError("at least one session required")
        self.sessions = {}
        for index, config in enumerate(self.session_configs):
            # Distinct seeds per session: independent primes, views, and
            # stream schedules.
            distinct = PagConfig(
                **{
                    **config.__dict__,
                    "seed": config.seed + 7919 * (index + 1),
                }
            )
            self.sessions[index] = PagSession.create(
                self.n_nodes, config=distinct
            )

    def run(self, rounds: int) -> None:
        for session in self.sessions.values():
            session.run(rounds)

    def report(self, warmup_rounds: int = 4) -> MultiSessionReport:
        per_session_bw: Dict[int, float] = {}
        per_session_cont: Dict[int, float] = {}
        verdicts = 0
        for index, session in self.sessions.items():
            per_session_bw[index] = session.mean_bandwidth_kbps(
                warmup_rounds, direction="down"
            )
            per_session_cont[index] = session.mean_continuity()
            verdicts += len(session.all_verdicts())
        return MultiSessionReport(
            per_session_mean_kbps=per_session_bw,
            aggregate_mean_kbps=sum(per_session_bw.values()),
            per_session_continuity=per_session_cont,
            total_verdicts=verdicts,
        )
