"""Extensions beyond the paper's core evaluation.

* :mod:`repro.extensions.obfuscation` — the future-work interest-hiding
  scheme sketched in the paper's conclusion, with its privacy gain and
  bandwidth cost quantified;
* :mod:`repro.extensions.multisession` — concurrent gossip sessions
  (section III assumes them; this measures what they cost).
"""

from __future__ import annotations

from repro.extensions.multisession import (
    MultiSessionReport,
    MultiSessionRunner,
)
from repro.extensions.obfuscation import (
    ObfuscationPlan,
    anonymity_set_size,
    interest_posterior,
)

__all__ = [
    "MultiSessionReport",
    "MultiSessionRunner",
    "ObfuscationPlan",
    "anonymity_set_size",
    "interest_posterior",
]
