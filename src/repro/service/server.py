"""Service endpoint: health, event streaming and operator control.

One :class:`ServiceServer` fronts one :class:`SessionSupervisor` over
any :mod:`repro.net.transport` scheme (``tcp://``, ``unix://``,
``mem://``).  All frames are the versioned control messages from
:mod:`repro.net.wire` (kinds 76-81):

* ``HealthRequest`` -> ``HealthReport`` — liveness poll; the
  connection stays open so an observer can poll repeatedly.
* ``SubscribeRequest`` -> stream of ``EventFrame`` — NDJSON event
  payloads with per-batch drop counts; the server closes the
  connection once the run has stopped and the queue is drained, which
  is the end-of-stream signal.
* ``ControlRequest`` -> ``ControlResponse`` — operator ops, applied
  by the supervisor at the next round boundary.

The supervisor's round loop runs on a worker thread (via
``run_in_executor``); the server bridges its thread-side event bus to
the asyncio loop with ``call_soon_threadsafe`` wakers.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Optional, Set

from repro.net import wire
from repro.net.daemon import recv_message, send_message
from repro.net.transport import Connection, Listener, listen
from repro.service.supervisor import ControlOp, SessionSupervisor

if TYPE_CHECKING:
    pass

__all__ = ["ServiceServer"]

#: How long a subscriber stream sleeps between queue checks when no
#: waker fired (also bounds end-of-run detection latency).
_STREAM_POLL_SECONDS = 0.25


class ServiceServer:
    """Serves one supervised session over a transport endpoint."""

    def __init__(
        self, supervisor: SessionSupervisor, endpoint: str
    ) -> None:
        self.supervisor = supervisor
        self.requested_endpoint = endpoint
        self.endpoint: Optional[str] = None
        self._listener: Optional[Listener] = None
        self._run_future: Optional[asyncio.Future] = None
        self._connections: Set[Connection] = set()
        self.run_error: Optional[str] = None

    async def start(self) -> str:
        """Bind the listener and launch the supervised run.

        Returns the resolved endpoint (ephemeral TCP ports filled in).
        """
        self._listener = await listen(
            self.requested_endpoint, self._on_connection
        )
        self.endpoint = self._listener.endpoint
        loop = asyncio.get_running_loop()
        self._run_future = loop.run_in_executor(None, self._run_supervised)
        return self.endpoint

    def _run_supervised(self) -> None:
        try:
            self.supervisor.run()
        except Exception as exc:  # noqa: B902 - surfaced via exit code
            self.run_error = f"{type(exc).__name__}: {exc}"

    async def wait(self) -> int:
        """Block until the run finishes; returns a process exit code."""
        assert self._run_future is not None, "server not started"
        await self._run_future
        # Give subscriber streams a moment to flush the tail of the
        # event queue before the listener goes away.
        await asyncio.sleep(_STREAM_POLL_SECONDS)
        await self.close()
        return 0 if self.supervisor.state == "stopped" else 1

    async def close(self) -> None:
        if self._listener is not None:
            await self._listener.close()
            self._listener = None
        for conn in list(self._connections):
            await conn.close()
        self._connections.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(self, conn: Connection) -> None:
        self._connections.add(conn)
        try:
            while True:
                message = await recv_message(conn)
                if message is None:
                    return
                if isinstance(message, wire.HealthRequest):
                    await send_message(conn, self._health_report())
                elif isinstance(message, wire.ControlRequest):
                    await self._handle_control(conn, message)
                elif isinstance(message, wire.SubscribeRequest):
                    await self._stream_events(conn, message)
                    return
                else:
                    await send_message(
                        conn,
                        wire.ControlResponse(
                            ok=False,
                            detail=(
                                "unexpected frame "
                                f"{type(message).__name__}"
                            ),
                            state=self.supervisor.state,
                        ),
                    )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(conn)
            await conn.close()

    def _health_report(self) -> wire.HealthReport:
        health = self.supervisor.health()
        return wire.HealthReport(
            state=str(health["state"]),
            scenario=str(health["scenario"]),
            current_round=int(health["current_round"]),  # type: ignore[call-overload]
            total_rounds=int(health["total_rounds"]),  # type: ignore[call-overload]
            nodes=int(health["nodes"]),  # type: ignore[call-overload]
            subscribers=int(health["subscribers"]),  # type: ignore[call-overload]
            events_published=int(health["events_published"]),  # type: ignore[call-overload]
            restarts=int(health["restarts"]),  # type: ignore[call-overload]
        )

    async def _handle_control(
        self, conn: Connection, message: wire.ControlRequest
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            op = ControlOp(
                op=message.op, node_id=message.node_id, arg=message.arg
            )
        except ValueError as exc:
            await send_message(
                conn,
                wire.ControlResponse(
                    ok=False, detail=str(exc), state=self.supervisor.state
                ),
            )
            return
        ok, detail = await loop.run_in_executor(
            None, self.supervisor.control, op
        )
        await send_message(
            conn,
            wire.ControlResponse(
                ok=ok, detail=detail, state=self.supervisor.state
            ),
        )

    async def _stream_events(
        self, conn: Connection, request: wire.SubscribeRequest
    ) -> None:
        """Stream ``EventFrame``s until the run stops or the peer hangs
        up; closing the connection is the end-of-stream signal."""
        loop = asyncio.get_running_loop()
        wakeup = asyncio.Event()

        def waker() -> None:
            loop.call_soon_threadsafe(wakeup.set)

        try:
            sub = self.supervisor.bus.subscribe(
                kinds=tuple(request.kinds), waker=waker
            )
        except ValueError as exc:
            await send_message(
                conn,
                wire.ControlResponse(
                    ok=False, detail=str(exc), state=self.supervisor.state
                ),
            )
            return
        try:
            while True:
                events, dropped = sub.drain()
                for event in events:
                    frame = wire.EventFrame(
                        seq=event.seq,
                        payload=event.to_json(),
                        dropped=dropped,
                    )
                    dropped = 0
                    await send_message(conn, frame)
                if not events and self.supervisor.finished:
                    return
                wakeup.clear()
                try:
                    await asyncio.wait_for(
                        wakeup.wait(), timeout=_STREAM_POLL_SECONDS
                    )
                except asyncio.TimeoutError:
                    pass
        finally:
            sub.close()
