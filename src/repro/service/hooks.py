"""Session taps: wire a running session into the service event bus.

A :class:`SessionTap` installs the two observability hooks the core
layers expose —
:attr:`Simulator.event_sink <repro.sim.engine.Simulator.event_sink>`
(one call per completed round) and
:attr:`VerdictLog.sink <repro.core.accusations.VerdictLog.sink>` (one
call per new verdict) — and turns them into bus events:

* ``round``   — the round tick: round number, live node count,
  cumulative message count.
* ``meter``   — per-round byte deltas of the bandwidth meter (up and
  down), plus the cumulative totals.
* ``counters``— per-round deltas of the accusation-path counters
  (:data:`~repro.core.monitor.MONITOR_COUNTER_KEYS` order).
* ``verdict`` — one event per conviction, at the moment the monitor
  records it.

Hooks never mutate session state, and when the bus has no subscriber
the per-round tick returns after a single attribute check — the
zero-cost contract the ``service_hooks`` BENCH section pins down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.monitor import MONITOR_COUNTER_KEYS
from repro.service.events import EventBus

if TYPE_CHECKING:
    from repro.core.accusations import Verdict
    from repro.core.session import PagSession

__all__ = ["SessionTap"]


class SessionTap:
    """Publishes one session's activity onto an :class:`EventBus`."""

    def __init__(self, session: "PagSession", bus: EventBus) -> None:
        self.session = session
        self.bus = bus
        self._attached = False
        self._last_up = 0
        self._last_down = 0
        self._last_messages = 0
        self._last_counters: Dict[str, int] = {
            key: 0 for key in MONITOR_COUNTER_KEYS
        }
        self.verdicts_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Install the engine and verdict hooks (idempotent)."""
        if self._attached:
            return
        self.session.simulator.event_sink = self._on_round_tick
        self.session.attach_verdict_sink(self._on_verdict)
        self._attached = True

    def detach(self) -> None:
        """Remove the hooks, restoring the unobserved fast path."""
        if not self._attached:
            return
        self.session.simulator.event_sink = None
        self.session.attach_verdict_sink(None)
        self._attached = False

    # ------------------------------------------------------------------
    # Hook targets
    # ------------------------------------------------------------------

    def _on_verdict(self, verdict: "Verdict") -> None:
        self.verdicts_seen += 1
        if not self.bus.active:
            return
        self.bus.publish(
            "verdict",
            verdict.exchange_round,
            {
                "node": verdict.node,
                "reason": verdict.reason.value,
                "detected_by": verdict.detected_by,
                "total_verdicts": self.verdicts_seen,
            },
        )

    def _on_round_tick(self, round_no: int) -> None:
        bus = self.bus
        if not bus.active:
            return
        session = self.session
        network = session.simulator.network
        meter = network.meter
        up = 0
        down = 0
        for traffic in meter.totals.values():
            up += traffic.bytes_up
            down += traffic.bytes_down
        messages = network.messages_sent
        bus.publish(
            "round",
            round_no,
            {
                "nodes": len(session.nodes) + 1,
                "pending": len(session.pending),
                "messages": messages,
                "messages_delta": messages - self._last_messages,
            },
        )
        bus.publish(
            "meter",
            round_no,
            {
                "bytes_up": up,
                "bytes_down": down,
                "bytes_up_delta": up - self._last_up,
                "bytes_down_delta": down - self._last_down,
            },
        )
        self._last_up = up
        self._last_down = down
        self._last_messages = messages
        counters = session.accusation_report()
        deltas: Dict[str, object] = {}
        changed = False
        for key in MONITOR_COUNTER_KEYS:
            value = int(counters.get(key, 0))
            delta = value - self._last_counters[key]
            self._last_counters[key] = value
            if delta:
                deltas[key] = delta
                changed = True
        if changed:
            bus.publish("counters", round_no, deltas)

    # ------------------------------------------------------------------
    # Snapshots (the ``snapshot`` control op)
    # ------------------------------------------------------------------

    def snapshot(self, scenario: Optional[str] = None) -> Dict[str, object]:
        """Point-in-time summary of the tapped session.

        Safe to call between rounds only (the supervisor applies it at
        a round boundary, like every control op).
        """
        session = self.session
        network = session.simulator.network
        meter = network.meter
        up = sum(t.bytes_up for t in meter.totals.values())
        down = sum(t.bytes_down for t in meter.totals.values())
        verdicts = session.all_verdicts()
        report = session.accusation_report()
        out: Dict[str, object] = {
            "round": session.current_round,
            "nodes": len(session.nodes) + 1,
            "pending": sorted(session.pending),
            "messages": network.messages_sent,
            "bytes_up": up,
            "bytes_down": down,
            "verdicts": len(verdicts),
            "convicted": sorted({v.node for v in verdicts}),
            "accusations": {
                key: int(report.get(key, 0))
                for key in MONITOR_COUNTER_KEYS
            },
        }
        if scenario is not None:
            out["scenario"] = scenario
        return out
