"""Terminal dashboard for ``repro watch``.

The formatting core is :func:`render_event` — a pure function from one
decoded event dict to one output line — so the dashboard's look is
unit-testable without a server.  :func:`run_watch` wires it to a live
subscription.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, IO, Optional, Tuple

from repro.service.client import ServiceClient

__all__ = ["render_event", "run_watch"]


def _kib(value: Any) -> str:
    return f"{int(value) / 1024:.1f}"


def _signed(value: Any) -> str:
    return f"{int(value):+d}"


def render_event(event: Dict[str, Any]) -> str:
    """One human-readable line for one decoded event."""
    kind = event.get("kind", "?")
    round_no = event.get("round", "?")
    if kind == "state":
        line = (
            f"state    {event.get('state', '?')}"
            f" | scenario {event.get('scenario', '?')}"
        )
        if event.get("restarts"):
            line += f" | restarts {event['restarts']}"
        if "error" in event:
            line += f" | error: {event['error']}"
    elif kind == "round":
        line = (
            f"round {round_no:>4} | nodes {event.get('nodes', '?')}"
            f" | pending {event.get('pending', 0)}"
            f" | msgs {event.get('messages', '?')}"
            f" ({_signed(event.get('messages_delta', 0))})"
        )
    elif kind == "meter":
        line = (
            f"meter {round_no:>4}"
            f" | up {_kib(event.get('bytes_up', 0))} KiB"
            f" ({_signed(event.get('bytes_up_delta', 0))} B)"
            f" | down {_kib(event.get('bytes_down', 0))} KiB"
            f" ({_signed(event.get('bytes_down_delta', 0))} B)"
        )
    elif kind == "counters":
        deltas = ", ".join(
            f"{key} {_signed(value)}"
            for key, value in sorted(event.items())
            if key not in ("kind", "round", "seq", "dropped")
        )
        line = f"count {round_no:>4} | {deltas}"
    elif kind == "verdict":
        line = (
            f"VERDICT  node {event.get('node', '?')}"
            f" ({event.get('reason', '?')})"
            f" detected by {event.get('detected_by', '?')}"
            f" at round {round_no}"
            f" | total {event.get('total_verdicts', '?')}"
        )
    else:
        line = json.dumps(event, sort_keys=True)
    if event.get("dropped"):
        line = f"[dropped {event['dropped']} events]\n{line}"
    return line


async def _watch(
    endpoint: str,
    kinds: Tuple[str, ...],
    raw: bool,
    out: IO[str],
    max_events: Optional[int],
) -> int:
    seen = 0
    async with ServiceClient(endpoint) as client:
        async for event in client.subscribe(kinds):
            if raw:
                out.write(
                    json.dumps(
                        event, sort_keys=True, separators=(",", ":")
                    )
                    + "\n"
                )
            else:
                out.write(render_event(event) + "\n")
            out.flush()
            seen += 1
            if max_events is not None and seen >= max_events:
                break
    return 0


def run_watch(
    endpoint: str,
    kinds: Tuple[str, ...] = (),
    raw: bool = False,
    out: Optional[IO[str]] = None,
    max_events: Optional[int] = None,
) -> int:
    """Stream events from ``endpoint`` and print one line per event.

    ``raw`` prints NDJSON instead of the human layout; ``max_events``
    detaches after that many events (the CI smoke hook).  Returns a
    process exit code.
    """
    return asyncio.run(
        _watch(
            endpoint,
            tuple(kinds),
            raw,
            out if out is not None else sys.stdout,
            max_events,
        )
    )
