"""In-process event bus for the supervised service mode.

The engine and monitor layers publish through lightweight hooks
(:attr:`Simulator.event_sink <repro.sim.engine.Simulator.event_sink>`,
:attr:`VerdictLog.sink <repro.core.accusations.VerdictLog.sink>`); the
service server subscribes and streams the events to observers as
NDJSON frames.  Two properties drive the design:

* **Zero cost without subscribers** — :attr:`EventBus.active` is one
  attribute read; the hook layer checks it before assembling any event
  payload, so an unobserved run pays a pointer check per round.
* **Backpressure never blocks the engine** — each subscriber owns a
  bounded deque; when a slow consumer falls behind, its *oldest*
  queued events are dropped (and counted), and :meth:`EventBus.publish`
  returns without ever waiting.

The bus is thread-safe: the supervisor publishes from its round-loop
thread while the asyncio server drains subscriptions on the event
loop.  A subscriber may hand over a ``waker`` callback, invoked after
a publish *outside* the bus lock (the server passes
``loop.call_soon_threadsafe``).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["Event", "EventBus", "Subscription", "EVENT_KINDS"]

#: The event vocabulary, in the order the hook layer emits per round.
EVENT_KINDS: Tuple[str, ...] = (
    "state", "round", "meter", "counters", "verdict",
)

#: Default per-subscriber queue bound.  Small enough that a stalled
#: observer cannot hold a long run's full event history in memory.
DEFAULT_QUEUE_BOUND = 1024


class Event:
    """One published event: a kind, a round, and a flat payload."""

    __slots__ = ("seq", "kind", "round_no", "data")

    def __init__(
        self,
        seq: int,
        kind: str,
        round_no: int,
        data: Dict[str, object],
    ) -> None:
        self.seq = seq
        self.kind = kind
        self.round_no = round_no
        self.data = data

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "round": self.round_no,
        }
        out.update(self.data)
        return out

    def to_json(self) -> bytes:
        """Canonical single-line JSON (the NDJSON stream payload)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(seq={self.seq}, kind={self.kind!r}, "
            f"round={self.round_no})"
        )


class Subscription:
    """One subscriber's bounded view of the event stream.

    Created via :meth:`EventBus.subscribe`; drained with
    :meth:`drain`; detached with :meth:`close`.  All mutation happens
    under the owning bus's lock.
    """

    def __init__(
        self,
        bus: "EventBus",
        kinds: Tuple[str, ...],
        maxlen: int,
        waker: Optional[Callable[[], None]],
    ) -> None:
        self._bus = bus
        self.kinds = kinds
        self._queue: Deque[Event] = deque()
        self._maxlen = maxlen
        self._waker = waker
        #: events dropped since the last drain (reported to the
        #: consumer so it can tell its view has gaps).
        self._dropped_pending = 0
        #: lifetime drop count (surfaced in tests and health output).
        self.dropped_total = 0
        self.delivered_total = 0
        self.closed = False

    def _offer(self, event: Event) -> None:
        """Enqueue under the bus lock; drop-oldest when full."""
        if self.kinds and event.kind not in self.kinds:
            return
        if len(self._queue) >= self._maxlen:
            self._queue.popleft()
            self._dropped_pending += 1
            self.dropped_total += 1
        self._queue.append(event)

    def drain(self) -> Tuple[List[Event], int]:
        """Take every queued event plus the drop count since last time."""
        with self._bus._lock:
            events = list(self._queue)
            self._queue.clear()
            dropped = self._dropped_pending
            self._dropped_pending = 0
            self.delivered_total += len(events)
        return events, dropped

    def close(self) -> None:
        self._bus.unsubscribe(self)


class EventBus:
    """Thread-safe fan-out of session events to bounded subscribers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: List[Subscription] = []
        self._seq = 0
        self.published = 0

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached.

        The hook layer's cheap guard: no subscriber, no event
        assembly.  Reading a list's truthiness is atomic under the
        GIL, so this needs no lock.
        """
        return bool(self._subscribers)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def subscribe(
        self,
        kinds: Tuple[str, ...] = (),
        maxlen: int = DEFAULT_QUEUE_BOUND,
        waker: Optional[Callable[[], None]] = None,
    ) -> Subscription:
        """Attach a subscriber; ``kinds`` empty means every kind.

        ``maxlen`` bounds the queue (drop-oldest beyond it); ``waker``
        is called after each publish that enqueued something for this
        subscriber, outside the bus lock.
        """
        if maxlen < 1:
            raise ValueError("subscription queue bound must be >= 1")
        unknown = set(kinds) - set(EVENT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown event kinds {sorted(unknown)}; expected a "
                f"subset of {list(EVENT_KINDS)}"
            )
        sub = Subscription(self, tuple(kinds), maxlen, waker)
        with self._lock:
            self._subscribers.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach; safe to call twice and from any thread."""
        with self._lock:
            sub.closed = True
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def publish(
        self, kind: str, round_no: int, data: Dict[str, object]
    ) -> Optional[Event]:
        """Fan one event out to every matching subscriber.

        Never blocks: a full subscriber queue drops its oldest entry.
        Returns the event (or ``None`` when no subscriber existed, in
        which case nothing was assembled or sequenced).
        """
        wakers: List[Callable[[], None]] = []
        with self._lock:
            if not self._subscribers:
                return None
            event = Event(self._seq, kind, round_no, data)
            self._seq += 1
            self.published += 1
            for sub in self._subscribers:
                before = len(sub._queue)
                sub._offer(event)
                if len(sub._queue) != before or sub._dropped_pending:
                    if sub._waker is not None:
                        wakers.append(sub._waker)
        for waker in wakers:
            waker()
        return event
