"""Client side of the service protocol: health, control, streaming.

:class:`ServiceClient` is the asyncio client the dashboard builds on;
the module-level helpers (:func:`request_health`,
:func:`request_control`) wrap one-shot exchanges in ``asyncio.run``
for synchronous callers like ``repro ctl``.
"""

from __future__ import annotations

import asyncio
import json
from typing import (
    Any,
    AsyncIterator,
    Dict,
    Optional,
    Tuple,
)

from repro.net import wire
from repro.net.daemon import recv_message, send_message
from repro.net.transport import Connection, connect

__all__ = [
    "ServiceClient",
    "ServiceProtocolError",
    "request_control",
    "request_health",
]


class ServiceProtocolError(Exception):
    """The server answered with an unexpected frame (or hung up)."""


class ServiceClient:
    """One connection to a ``repro serve`` endpoint."""

    def __init__(self, endpoint: str) -> None:
        self.endpoint = endpoint
        self._conn: Optional[Connection] = None

    async def __aenter__(self) -> "ServiceClient":
        await self.open()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def open(self) -> None:
        if self._conn is None:
            self._conn = await connect(self.endpoint)

    async def close(self) -> None:
        if self._conn is not None:
            await self._conn.close()
            self._conn = None

    @property
    def _live(self) -> Connection:
        if self._conn is None:
            raise ServiceProtocolError("client is not connected")
        return self._conn

    async def health(self) -> wire.HealthReport:
        """One health poll; the connection stays usable afterwards."""
        await send_message(self._live, wire.HealthRequest())
        reply = await recv_message(self._live)
        if not isinstance(reply, wire.HealthReport):
            raise ServiceProtocolError(
                f"expected HealthReport, got {type(reply).__name__}"
            )
        return reply

    async def control(
        self, op: str, node_id: Optional[int] = None, arg: str = ""
    ) -> wire.ControlResponse:
        """Submit one operator op and await its boundary application."""
        await send_message(
            self._live,
            wire.ControlRequest(op=op, node_id=node_id, arg=arg),
        )
        reply = await recv_message(self._live)
        if reply is None:
            raise ServiceProtocolError(
                "server hung up before answering the control request"
            )
        if not isinstance(reply, wire.ControlResponse):
            raise ServiceProtocolError(
                f"expected ControlResponse, got {type(reply).__name__}"
            )
        return reply

    async def subscribe(
        self, kinds: Tuple[str, ...] = ()
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield decoded events until the server ends the stream.

        Each yielded dict is the event payload (``seq``/``kind``/
        ``round`` plus kind-specific fields); when the server had to
        drop events for this (slow) subscriber, the next event carries
        a ``"dropped"`` count.  The connection is single-purpose after
        this call.
        """
        await send_message(
            self._live, wire.SubscribeRequest(kinds=tuple(kinds))
        )
        while True:
            frame = await recv_message(self._live)
            if frame is None:
                return
            if isinstance(frame, wire.ControlResponse):
                raise ServiceProtocolError(
                    f"subscription refused: {frame.detail}"
                )
            if not isinstance(frame, wire.EventFrame):
                raise ServiceProtocolError(
                    f"expected EventFrame, got {type(frame).__name__}"
                )
            event: Dict[str, Any] = json.loads(frame.payload)
            if frame.dropped:
                event["dropped"] = frame.dropped
            yield event


async def _one_shot_health(endpoint: str) -> Dict[str, Any]:
    async with ServiceClient(endpoint) as client:
        report = await client.health()
    return {
        "state": report.state,
        "scenario": report.scenario,
        "current_round": report.current_round,
        "total_rounds": report.total_rounds,
        "nodes": report.nodes,
        "subscribers": report.subscribers,
        "events_published": report.events_published,
        "restarts": report.restarts,
    }


def request_health(endpoint: str) -> Dict[str, Any]:
    """Synchronous one-shot health poll (the ``repro ctl health`` path)."""
    return asyncio.run(_one_shot_health(endpoint))


async def _one_shot_control(
    endpoint: str, op: str, node_id: Optional[int], arg: str
) -> Tuple[bool, str, str]:
    async with ServiceClient(endpoint) as client:
        reply = await client.control(op, node_id=node_id, arg=arg)
    return reply.ok, reply.detail, reply.state


def request_control(
    endpoint: str, op: str, node_id: Optional[int] = None, arg: str = ""
) -> Tuple[bool, str, str]:
    """Synchronous one-shot control op (the ``repro ctl`` path).

    Returns ``(ok, detail, server_state)``.
    """
    return asyncio.run(_one_shot_control(endpoint, op, node_id, arg))
