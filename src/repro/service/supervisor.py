"""Session supervisor: lifecycle, operator control, crash containment.

A :class:`SessionSupervisor` owns one scenario run end to end::

    INIT -> RUNNING <-> PAUSED -> DRAINING -> STOPPED
                 \\-> FAILED (crash with no restart budget left)

The round loop is synchronous (driven by :meth:`run`, typically on a
worker thread under the asyncio server); operator control arrives from
any thread via :meth:`control` and is applied **only at round
boundaries** — after ``run_round`` returns and before the next round
begins.  Nothing in the engine executes between its round hooks and
the next round's start, so a dynamic op at boundary ``r + 1`` is
bit-identical to the same event declared statically in the spec
(``ChurnEvent(after_round=r)`` / ``JoinEvent`` / ``node_strategies``)
— the differential suite pins this equivalence down.

Crash containment: an exception out of ``run_round`` marks the run
``failed`` unless restart budget remains, in which case the session is
rebuilt from the spec and the *op journal* — every control op applied
so far, stamped with its boundary — is replayed to the crash point.
Replica-from-spec determinism makes the rebuilt session byte-identical
to the lost one.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.service.events import EventBus
from repro.service.hooks import SessionTap

if TYPE_CHECKING:
    from repro.scenarios.spec import ScenarioResult, ScenarioSpec

__all__ = ["ControlOp", "SessionSupervisor", "SupervisorError", "STATES"]

#: The lifecycle vocabulary, as reported in health frames and ``state``
#: events.
STATES: Tuple[str, ...] = (
    "init", "running", "paused", "draining", "stopped", "failed",
)

#: Control operations the supervisor accepts (the wire-level
#: ``ControlRequest.op`` vocabulary).
CONTROL_OPS: Tuple[str, ...] = (
    "pause", "resume", "churn", "admit", "strategy", "snapshot", "drain",
)

#: Execution policies whose node schedule runs in this process.  The
#: supervisor rejects worker-replica policies (sharded/parallel/
#: population): their node lifecycles live in worker processes, so
#: boundary ops and live hooks cannot reach them.
_SERIAL_SCHEDULE_POLICIES = (None, "serial", "daemon")


class SupervisorError(Exception):
    """Unsupported spec or an operation in the wrong lifecycle state."""


@dataclass(frozen=True)
class ControlOp:
    """One operator action.

    ``after_round`` schedules the op: it applies at the boundary right
    after that round completes (mirroring
    :class:`~repro.scenarios.spec.ChurnEvent` semantics); ``-1``
    applies before the first round, and ``None`` — the live-operator
    default — applies at the next boundary the loop reaches.
    """

    op: str
    node_id: Optional[int] = None
    arg: str = ""
    after_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.op not in CONTROL_OPS:
            raise ValueError(
                f"unknown control op {self.op!r}; expected one of "
                f"{list(CONTROL_OPS)}"
            )


@dataclass
class _PendingOp:
    """A queued op plus its completion signal."""

    op: ControlOp
    done: threading.Event = field(default_factory=threading.Event)
    ok: bool = False
    detail: str = ""


class SessionSupervisor:
    """Owns one supervised scenario run.

    Args:
        spec: the scenario to run.  Must use a serial-schedule
            execution policy (serial or the loopback daemon policy).
        schedule: scripted operator ops (each needs ``after_round``);
            the determinism oracle replays a live operator session
            through this.
        bus: event bus to publish on (one is created when omitted).
        max_restarts: crash-containment budget; 0 fails fast.
        round_delay: seconds to sleep between rounds (live-observation
            throttle for ``repro serve``; keep 0 for batch runs).
    """

    def __init__(
        self,
        spec: "ScenarioSpec",
        schedule: Tuple[ControlOp, ...] = (),
        bus: Optional[EventBus] = None,
        max_restarts: int = 0,
        round_delay: float = 0.0,
        manual_membership: bool = False,
    ) -> None:
        if spec.policy not in _SERIAL_SCHEDULE_POLICIES:
            raise SupervisorError(
                f"the service supervisor needs a serial-schedule "
                f"execution policy, not {spec.policy!r}; worker-replica "
                "policies run node lifecycles out of process"
            )
        if spec.population:
            raise SupervisorError(
                "population-tier scenarios are batch workloads; the "
                "service supervisor does not run them"
            )
        for op in schedule:
            if op.after_round is None:
                raise ValueError(
                    f"scripted op {op.op!r} needs after_round (use -1 "
                    "for before the first round)"
                )
            if op.op == "snapshot":
                raise ValueError(
                    "snapshot is a live-operator query, not a "
                    "schedulable op"
                )
        self.spec = spec
        self.bus = bus if bus is not None else EventBus()
        self.max_restarts = max_restarts
        self.round_delay = round_delay
        #: strip the spec's static membership hook: the operator (or
        #: the scripted schedule) replays joins/leaves via control ops
        #: instead.  Announcement (directory, stable monitor sets,
        #: ``active_from`` views) still comes from the spec's declared
        #: arrivals, so a manual replay at the declared boundaries is
        #: bit-identical to the static schedule.
        self.manual_membership = manual_membership
        self.state = "init"
        self.restarts = 0
        self.rounds_completed = 0
        self.session: Optional[object] = None
        self.tap: Optional[SessionTap] = None
        self.result: Optional["ScenarioResult"] = None
        self.error: Optional[str] = None
        self._policy = None
        self._schedule: Dict[int, List[ControlOp]] = {}
        for op in schedule:
            boundary = op.after_round + 1  # type: ignore[operator]
            self._schedule.setdefault(boundary, []).append(op)
        #: applied ops by boundary — the restart replay journal.
        self._journal: List[Tuple[int, ControlOp]] = []
        self._pending: List[_PendingOp] = []
        self._cond = threading.Condition()
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _set_state(self, state: str) -> None:
        self.state = state
        data: Dict[str, object] = {
            "state": state,
            "scenario": self.spec.name,
            "restarts": self.restarts,
        }
        if self.error is not None:
            data["error"] = self.error
        self.bus.publish("state", self.rounds_completed, data)

    def start(self) -> None:
        """Build the session and enter ``running`` (idempotent)."""
        if self.state != "init":
            return
        self._policy = self.spec.make_policy()
        self.session = self._build_session()
        self.tap = SessionTap(self.session, self.bus)
        self.tap.attach()
        self._set_state("running")

    def _build_session(self) -> object:
        session = self.spec.build(self._policy)
        if self.manual_membership:
            simulator = session.simulator
            simulator.round_hooks = [
                hook
                for hook in simulator.round_hooks
                if not getattr(hook, "membership_hook", False)
            ]
        return session

    def run(self) -> "ScenarioResult":
        """Run the full supervised schedule; blocks until stopped.

        Returns the collected :class:`ScenarioResult`; raises
        :class:`SupervisorError` if the run ultimately failed.
        """
        self.start()
        try:
            while True:
                self._apply_boundary_ops()
                with self._cond:
                    if (
                        self._stop_requested
                        or self.rounds_completed >= self.spec.rounds
                    ):
                        break
                    if self.state == "paused":
                        self._cond.wait(timeout=0.1)
                        continue
                try:
                    self.session.run(1)
                except Exception as exc:  # noqa: B902 - crash containment
                    if not self._attempt_restart(exc):
                        raise SupervisorError(self.error) from exc
                    continue
                self.rounds_completed += 1
                if self.round_delay > 0:
                    time.sleep(self.round_delay)
            self._set_state("draining")
            self._collect()
            self._set_state("stopped")
            return self.result  # type: ignore[return-value]
        finally:
            self._fail_pending("supervisor is no longer running")
            if self.state not in ("stopped", "failed"):
                self.error = self.error or "run aborted"
                self._set_state("failed")
            if self._policy is not None:
                self._policy.close()
                self._policy = None

    def stop(self) -> None:
        """Request a clean drain at the next round boundary."""
        with self._cond:
            self._stop_requested = True
            self._cond.notify_all()

    @property
    def finished(self) -> bool:
        return self.state in ("stopped", "failed")

    def _collect(self) -> None:
        import dataclasses

        from repro.scenarios.spec import ScenarioResult

        if self.tap is not None:
            self.tap.detach()
        if self._policy is not None:
            self._policy.sync_session(self.session)
        spec = self.spec
        if self.rounds_completed < spec.rounds:
            # Drained early: the declared steady-state window may not
            # have started yet, so clamp the warmup to the rounds that
            # actually ran and measure those.
            warmup = min(
                spec.warmup_rounds, max(self.rounds_completed - 1, 0)
            )
            spec = dataclasses.replace(spec, warmup_rounds=warmup)
        if self.rounds_completed == 0:
            # Drained before the first round: nothing to measure.
            self.result = ScenarioResult(spec=spec, session=self.session)
            return
        self.result = ScenarioResult.collect(spec, self.session)

    # ------------------------------------------------------------------
    # Crash containment
    # ------------------------------------------------------------------

    def _attempt_restart(self, exc: Exception) -> bool:
        self.error = (
            f"round {self.rounds_completed} crashed: "
            f"{type(exc).__name__}: {exc}"
        )
        if self.restarts >= self.max_restarts:
            self._set_state("failed")
            return False
        self.restarts += 1
        self._set_state("init")
        if self.tap is not None:
            self.tap.detach()
        replay_to = self.rounds_completed
        journal = list(self._journal)
        self.session = self._build_session()
        self.rounds_completed = 0
        # Replay without publishing: observers see a single 'running'
        # transition once the rebuilt session has caught up.
        for boundary, op in (j for j in journal if j[0] == 0):
            self._apply_op(op, journaled=False)
        for round_no in range(replay_to):
            self.session.run(1)
            self.rounds_completed += 1
            for _, op in (
                j for j in journal if j[0] == self.rounds_completed
            ):
                self._apply_op(op, journaled=False)
        self.tap = SessionTap(self.session, self.bus)
        self.tap.attach()
        self.error = None
        self._set_state("running")
        return True

    # ------------------------------------------------------------------
    # Operator control
    # ------------------------------------------------------------------

    def control(
        self, op: ControlOp, timeout: float = 30.0
    ) -> Tuple[bool, str]:
        """Submit one live op; blocks until the loop applies it.

        Thread-safe.  Returns ``(ok, detail)``; ``detail`` carries the
        snapshot JSON for the ``snapshot`` op.
        """
        if self.finished:
            return False, f"supervisor already {self.state}"
        pending = _PendingOp(op=op)
        with self._cond:
            self._pending.append(pending)
            self._cond.notify_all()
        if not pending.done.wait(timeout=timeout):
            return False, "control op timed out awaiting a round boundary"
        return pending.ok, pending.detail

    def _fail_pending(self, reason: str) -> None:
        with self._cond:
            pending, self._pending = self._pending, []
        for entry in pending:
            entry.ok = False
            entry.detail = reason
            entry.done.set()

    def _apply_boundary_ops(self) -> None:
        """Apply scheduled + live ops at the current boundary."""
        boundary = self.rounds_completed
        for op in self._schedule.pop(boundary, ()):  # scripted first
            ok, detail = self._apply_op(op)
            if not ok:
                raise SupervisorError(
                    f"scripted op {op.op!r} at boundary {boundary} "
                    f"failed: {detail}"
                )
        with self._cond:
            pending, self._pending = self._pending, []
        for entry in pending:
            entry.ok, entry.detail = self._apply_op(entry.op)
            entry.done.set()

    def _apply_op(
        self, op: ControlOp, journaled: bool = True
    ) -> Tuple[bool, str]:
        try:
            detail = self._dispatch_op(op)
        except Exception as exc:  # noqa: B902 - op errors are replies
            return False, f"{type(exc).__name__}: {exc}"
        if journaled and op.op not in ("snapshot",):
            self._journal.append((self.rounds_completed, op))
        return True, detail

    def _dispatch_op(self, op: ControlOp) -> str:
        session = self.session
        assert session is not None
        if op.op == "pause":
            if self.state == "running":
                self._set_state("paused")
            return "paused"
        if op.op == "resume":
            if self.state == "paused":
                self._set_state("running")
                with self._cond:
                    self._cond.notify_all()
            return "running"
        if op.op == "drain":
            self.stop()
            return "draining at the next boundary"
        if op.op == "snapshot":
            assert self.tap is not None
            return json.dumps(
                self.tap.snapshot(scenario=self.spec.name),
                sort_keys=True,
            )
        if op.op == "churn":
            self._require_node(op)
            session.remove_node(op.node_id)
            return f"node {op.node_id} removed"
        if op.op == "admit":
            self._require_node(op)
            session.admit_node(op.node_id)
            return f"node {op.node_id} admitted"
        if op.op == "strategy":
            self._require_node(op)
            session.set_behavior(
                op.node_id, _make_behavior(op.arg)
            )
            return f"node {op.node_id} now runs {op.arg!r}"
        raise ValueError(f"unknown control op {op.op!r}")

    @staticmethod
    def _require_node(op: ControlOp) -> None:
        if op.node_id is None:
            raise ValueError(f"op {op.op!r} needs a node id")

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """The liveness snapshot served as a ``HealthReport`` frame."""
        nodes = 0
        if self.session is not None:
            nodes = len(self.session.nodes) + 1
        return {
            "state": self.state,
            "scenario": self.spec.name,
            "current_round": self.rounds_completed,
            "total_rounds": self.spec.rounds,
            "nodes": nodes,
            "subscribers": self.bus.subscriber_count,
            "events_published": self.bus.published,
            "restarts": self.restarts,
        }


def _make_behavior(strategy: str) -> object:
    """Resolve a strategy name to a behaviour instance.

    ``"correct"`` restores :class:`~repro.core.behavior
    .CorrectBehavior`; anything else resolves through
    :data:`~repro.scenarios.spec.SELFISH_STRATEGIES`.
    """
    from repro.core.behavior import CorrectBehavior
    from repro.scenarios.spec import SELFISH_STRATEGIES

    if strategy in ("", "correct"):
        return CorrectBehavior()
    if strategy not in SELFISH_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected 'correct' or one "
            f"of {sorted(SELFISH_STRATEGIES)}"
        )
    import repro.adversary.selfish as selfish

    return getattr(selfish, SELFISH_STRATEGIES[strategy])()
