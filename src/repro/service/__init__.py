"""Supervised service mode: live observability over running sessions.

The package splits into five small layers:

* :mod:`repro.service.events` — thread-safe bounded event bus.
* :mod:`repro.service.hooks` — :class:`SessionTap`, bridging the
  engine/monitor hooks onto the bus.
* :mod:`repro.service.supervisor` — session lifecycle, operator
  control at round boundaries, crash containment.
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  wire endpoint (kinds 76-81 in :mod:`repro.net.wire`) over
  ``tcp://``, ``unix://`` and ``mem://`` transports.
* :mod:`repro.service.dashboard` — the ``repro watch`` terminal view.
"""

from repro.service.events import (
    EVENT_KINDS,
    Event,
    EventBus,
    Subscription,
)
from repro.service.hooks import SessionTap
from repro.service.supervisor import (
    STATES,
    ControlOp,
    SessionSupervisor,
    SupervisorError,
)
from repro.service.server import ServiceServer
from repro.service.client import (
    ServiceClient,
    ServiceProtocolError,
    request_control,
    request_health,
)
from repro.service.dashboard import render_event, run_watch

__all__ = [
    "EVENT_KINDS",
    "STATES",
    "ControlOp",
    "Event",
    "EventBus",
    "ServiceClient",
    "ServiceProtocolError",
    "ServiceServer",
    "SessionSupervisor",
    "SessionTap",
    "Subscription",
    "SupervisorError",
    "render_event",
    "request_control",
    "request_health",
    "run_watch",
]
