"""Unified programmatic facade over the reproduction.

One import surface for scripts, notebooks, benchmarks and CI — the
same entry points the CLI verbs are built on, without argparse in
between::

    from repro import api

    result = api.run_scenario("fig7", nodes=24, rounds=10)
    result = api.run_scenario("fig9", policy="parallel", workers=4)
    report = api.fuzz(iterations=20, seed=7)
    result = api.serve("fig7", "tcp://127.0.0.1:0",
                       on_listening=print)

``scenario`` arguments accept either a registry name or a
:class:`~repro.scenarios.spec.ScenarioSpec` instance, so ad-hoc specs
and registered workloads go through the same functions.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Optional,
    Sequence,
    Union,
)

from repro.scenarios.spec import ScenarioResult, ScenarioSpec

__all__ = [
    "run_scenario",
    "supervise",
    "serve",
    "fuzz",
    "ScenarioResult",
    "ScenarioSpec",
]

#: A scenario argument: registry name or an explicit spec.
Scenario = Union[str, ScenarioSpec]


def _resolve(scenario: Scenario, overrides: Dict[str, Any]) -> ScenarioSpec:
    if isinstance(scenario, ScenarioSpec):
        return scenario.with_overrides(**overrides)
    from repro.scenarios.registry import get_scenario

    return get_scenario(scenario, **overrides)


def run_scenario(
    scenario: Scenario,
    *,
    policy: Optional[Union[str, Any]] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    **overrides: Any,
) -> ScenarioResult:
    """Build, run and measure a scenario; the library ``run`` verb.

    Args:
        scenario: registry name (``"fig7"``) or a ``ScenarioSpec``.
        policy: execution policy — ``None`` (the spec's own knob, else
            serial), a policy name (``"serial"``, ``"sharded"``,
            ``"parallel"``, ``"daemon"``), or a ready
            :class:`~repro.sim.execution.ExecutionPolicy` instance.
        shards / workers: worker-pool sizing when ``policy`` is a name.
        **overrides: any ``ScenarioSpec`` field (``nodes``, ``rounds``,
            ``seed``, ...); ``None`` values are ignored.
    """
    spec = _resolve(scenario, overrides)
    if policy is None or isinstance(policy, str):
        if policy is not None:
            spec = dataclasses.replace(spec, policy=None)
            from repro.sim.execution import make_policy

            return spec.run(make_policy(
                policy,
                shards=shards if shards is not None else (workers or 4),
                workers=workers,
            ))
        return spec.run()
    return spec.run(policy)


def supervise(
    scenario: Scenario,
    *,
    schedule: Sequence[Any] = (),
    manual_membership: bool = False,
    max_restarts: int = 0,
    round_delay: float = 0.0,
    bus: Optional[Any] = None,
    **overrides: Any,
) -> ScenarioResult:
    """Run a scenario under the service supervisor, without a network
    endpoint.

    ``schedule`` is a sequence of
    :class:`~repro.service.supervisor.ControlOp` applied at their
    declared round boundaries — the scripted-operator form of ``repro
    ctl``.  Returns the collected result; the differential suite pins
    its bit-identity to the equivalent static spec.
    """
    from repro.service.supervisor import SessionSupervisor

    spec = _resolve(scenario, overrides)
    supervisor = SessionSupervisor(
        spec,
        schedule=tuple(schedule),
        bus=bus,
        max_restarts=max_restarts,
        round_delay=round_delay,
        manual_membership=manual_membership,
    )
    return supervisor.run()


def serve(
    scenario: Scenario,
    endpoint: str,
    *,
    schedule: Sequence[Any] = (),
    manual_membership: bool = False,
    max_restarts: int = 0,
    round_delay: float = 0.0,
    on_listening: Optional[Callable[[str], None]] = None,
    **overrides: Any,
) -> ScenarioResult:
    """Run a scenario behind a live service endpoint; the ``repro
    serve`` verb as a blocking library call.

    Serves health, the NDJSON event stream and operator control on
    ``endpoint`` (``tcp://host:port``, ``unix:///path``,
    ``mem://name``) until the run drains.  ``on_listening`` receives
    the resolved endpoint (ephemeral TCP ports filled in) once the
    listener is bound.
    """
    import asyncio

    from repro.service.server import ServiceServer
    from repro.service.supervisor import (
        SessionSupervisor,
        SupervisorError,
    )

    spec = _resolve(scenario, overrides)
    if spec.policy not in (None, "serial", "daemon"):
        spec = dataclasses.replace(spec, policy=None)

    async def _serve() -> ScenarioResult:
        supervisor = SessionSupervisor(
            spec,
            schedule=tuple(schedule),
            max_restarts=max_restarts,
            round_delay=round_delay,
            manual_membership=manual_membership,
        )
        server = ServiceServer(supervisor, endpoint)
        resolved = await server.start()
        if on_listening is not None:
            on_listening(resolved)
        await server.wait()
        if server.run_error is not None:
            raise SupervisorError(server.run_error)
        assert supervisor.result is not None
        return supervisor.result

    return asyncio.run(_serve())


def fuzz(
    *,
    iterations: int = 50,
    seed: int = 20160627,
    policies: Iterable[str] = ("serial", "sharded", "parallel"),
    workers: int = 2,
    shrink: bool = True,
    replay_spec: Optional[ScenarioSpec] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the fault/adversary fuzzing campaign; the ``repro fuzz``
    verb as a library call.  Returns the campaign report dict
    (``report["ok"]``, ``report["violations"]``, ...).
    """
    from repro.scenarios.fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(
        iterations=iterations,
        seed=seed,
        policies=tuple(policies),
        workers=workers,
        shrink=shrink,
    )
    return run_fuzz(config, progress=progress, replay_spec=replay_spec)
