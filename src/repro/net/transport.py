"""Byte-stream transports for the node daemon.

Three schemes share one asyncio-friendly interface:

* ``tcp://host:port`` — localhost or LAN deployments (``port`` 0 binds
  an ephemeral port; the listener reports the resolved endpoint).
* ``unix:///path/to.sock`` — same-host daemons without the IP stack.
* ``mem://name`` — in-process loopback backed by queues, for tests and
  the single-process coordinator; no sockets, no event-loop I/O.

A :class:`Connection` moves whole *payloads* (the un-prefixed
``[version][kind][body]`` unit of :mod:`repro.net.wire`): socket-backed
connections add/strip the 4-byte length prefix internally via
:class:`~repro.net.wire.FrameAssembler`; the in-memory transport passes
payload bytes through a queue untouched.  ``recv()`` returns ``None``
on clean EOF and raises :class:`TransportError` on a mid-frame cut.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, Tuple

from repro.net.wire import MAX_FRAME_BYTES, FrameAssembler, frame

__all__ = [
    "TransportError",
    "Connection",
    "Listener",
    "connect",
    "listen",
    "reset_memory_transport",
]


class TransportError(Exception):
    """Connection-layer failure: refused dial, mid-frame EOF, bad URL."""


def _split_endpoint(endpoint: str) -> Tuple[str, str]:
    scheme, sep, rest = endpoint.partition("://")
    if not sep or scheme not in ("tcp", "unix", "mem"):
        raise TransportError(
            f"endpoint {endpoint!r} is not tcp://, unix:// or mem://"
        )
    return scheme, rest


class Connection:
    """One ordered, framed, bidirectional peer link."""

    def __init__(self, endpoint: str) -> None:
        self.endpoint = endpoint
        self.closed = False

    async def send(self, payload: bytes) -> None:
        raise NotImplementedError

    async def recv(self) -> Optional[bytes]:
        raise NotImplementedError

    async def close(self) -> None:
        raise NotImplementedError


class _StreamConnection(Connection):
    """TCP / UNIX-socket connection over asyncio streams."""

    def __init__(
        self,
        endpoint: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        super().__init__(endpoint)
        self._reader = reader
        self._writer = writer
        self._assembler = FrameAssembler()
        self._ready: list = []

    async def send(self, payload: bytes) -> None:
        if self.closed:
            raise TransportError(f"connection {self.endpoint} is closed")
        self._writer.write(frame(payload))
        await self._writer.drain()

    async def recv(self) -> Optional[bytes]:
        while not self._ready:
            chunk = await self._reader.read(1 << 16)
            if not chunk:
                if self._assembler.buffered:
                    raise TransportError(
                        f"peer {self.endpoint} closed mid-frame with "
                        f"{self._assembler.buffered} bytes pending"
                    )
                return None
            self._ready.extend(self._assembler.feed(chunk))
        return self._ready.pop(0)

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class _MemoryConnection(Connection):
    """Queue-backed loopback half; two halves form a duplex pipe."""

    def __init__(self, endpoint: str) -> None:
        super().__init__(endpoint)
        self._inbox: asyncio.Queue = asyncio.Queue()
        self.peer: Optional["_MemoryConnection"] = None

    async def send(self, payload: bytes) -> None:
        if self.closed or self.peer is None or self.peer.closed:
            raise TransportError(f"connection {self.endpoint} is closed")
        if len(payload) > MAX_FRAME_BYTES:
            raise TransportError("payload exceeds the frame bound")
        await self.peer._inbox.put(bytes(payload))

    async def recv(self) -> Optional[bytes]:
        if self.closed:
            return None
        item = await self._inbox.get()
        return item  # None is the peer's EOF marker

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.peer is not None and not self.peer.closed:
            await self.peer._inbox.put(None)


class Listener:
    """An accepting endpoint; ``endpoint`` is the resolved address
    (ephemeral TCP ports are filled in after bind)."""

    def __init__(self, endpoint: str) -> None:
        self.endpoint = endpoint

    async def close(self) -> None:
        raise NotImplementedError


class _StreamListener(Listener):
    def __init__(self, endpoint: str, server: asyncio.AbstractServer) -> None:
        super().__init__(endpoint)
        self._server = server

    async def close(self) -> None:
        self._server.close()
        await self._server.wait_closed()


class _MemoryListener(Listener):
    def __init__(
        self,
        endpoint: str,
        name: str,
        on_connection: Callable[[Connection], Awaitable[None]],
    ) -> None:
        super().__init__(endpoint)
        self._name = name
        self.on_connection = on_connection

    async def close(self) -> None:
        _MEMORY_LISTENERS.pop(self._name, None)


#: mem:// accept table — name -> listener, process-local by design.
_MEMORY_LISTENERS: Dict[str, _MemoryListener] = {}


def reset_memory_transport() -> None:
    """Drop all mem:// listeners (test isolation)."""
    _MEMORY_LISTENERS.clear()


async def listen(
    endpoint: str,
    on_connection: Callable[[Connection], Awaitable[None]],
) -> Listener:
    """Accept connections on ``endpoint``; each accepted
    :class:`Connection` is handed to ``on_connection`` as a task."""
    scheme, rest = _split_endpoint(endpoint)
    if scheme == "mem":
        if rest in _MEMORY_LISTENERS:
            raise TransportError(f"mem://{rest} is already listening")
        listener = _MemoryListener(endpoint, rest, on_connection)
        _MEMORY_LISTENERS[rest] = listener
        return listener

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _StreamConnection(endpoint, reader, writer)
        await on_connection(conn)

    if scheme == "tcp":
        host, _, port_text = rest.rpartition(":")
        if not host:
            raise TransportError(f"tcp endpoint {endpoint!r} needs host:port")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise TransportError(
                f"bad tcp port in {endpoint!r}"
            ) from exc
        server = await asyncio.start_server(handle, host, port)
        bound_port = server.sockets[0].getsockname()[1]
        return _StreamListener(f"tcp://{host}:{bound_port}", server)

    server = await asyncio.start_unix_server(handle, path=rest)
    return _StreamListener(endpoint, server)


async def connect(endpoint: str) -> Connection:
    """Dial ``endpoint`` and return the connected :class:`Connection`."""
    scheme, rest = _split_endpoint(endpoint)
    if scheme == "mem":
        listener = _MEMORY_LISTENERS.get(rest)
        if listener is None:
            raise TransportError(f"nothing listening on mem://{rest}")
        client = _MemoryConnection(endpoint)
        server_side = _MemoryConnection(endpoint)
        client.peer = server_side
        server_side.peer = client
        asyncio.get_running_loop().create_task(
            listener.on_connection(server_side)
        )
        return client
    try:
        if scheme == "tcp":
            host, _, port_text = rest.rpartition(":")
            reader, writer = await asyncio.open_connection(
                host, int(port_text)
            )
        else:
            reader, writer = await asyncio.open_unix_connection(path=rest)
    except (ConnectionError, OSError, ValueError) as exc:
        raise TransportError(f"cannot connect to {endpoint}: {exc}") from exc
    return _StreamConnection(endpoint, reader, writer)
