"""Asyncio node daemon and session coordinator.

The simulator runs a whole deployment in one process; this module
splits it across real processes.  A :class:`NodeDaemon` listens on a
transport endpoint and hosts one *shard* of a scenario's nodes; a
:class:`SessionCoordinator` connects to every daemon, ships the
scenario spec in the join handshake, and drives the round-synchronous
schedule as a sequence of barrier steps.

Determinism model — *replica from spec*: every daemon rebuilds the
**full** session from the canonical spec JSON (same seeds, same keys,
same membership views) but executes only its owned nodes,
``sorted(ids)[shard::shards]``.  Node state is a pure function of the
ordered lifecycle calls a node receives, and every message crosses
shards as v1 wire bytes, so the shards jointly execute one PAG
deployment: verdicts are reached by the monitors that own them and the
coordinator merges the shard reports (deduplicated on
``(node, reason, round)`` exactly like a single session would).

One round runs as a BSP superstep loop:

1. coordinator broadcasts ``RoundStart`` — each daemon runs
   ``begin_round`` for its owned nodes (deferred monitor traffic and
   the source's stream enter the local queue);
2. each *step*, a daemon drains its pending queue: messages for remote
   nodes are encoded and sent on the peer link (attestation relays to
   one monitor optionally coalesce into a single signed
   :class:`~repro.core.messages.AttestationRelayBatch` — the fm>1
   batched fold on the wire), then a ``StepMark`` barrier frame chases
   them; per-link FIFO means awaiting every peer's mark guarantees all
   of this step's payloads have arrived.  Remote arrivals (by peer
   shard order) and then the local batch are delivered to owned nodes;
3. daemons report ``StepDone`` with their queue depth; the coordinator
   answers ``StepGo`` until every shard is quiescent — the distributed
   equivalent of the engine's drain-to-quiescence loop;
4. after the rounds, ``CollectRequest`` gathers per-shard JSON reports
   and ``Shutdown`` closes the links.

Scenarios with churn, arrivals, fault schedules or a population plane
are rejected at join time — those are simulator-tier features; the
daemon runs the plain protocol schedule.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.core.messages import (
    AttestationRelay,
    AttestationRelayBatch,
    RelayPair,
)
from repro.net import wire
from repro.net.transport import Connection, TransportError, connect, listen

if TYPE_CHECKING:
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "DaemonError",
    "NodeDaemon",
    "SessionCoordinator",
    "run_coordinated_session",
    "recv_message",
    "send_message",
    "spec_to_json",
    "spec_from_json",
    "spec_digest",
    "validate_daemon_spec",
]


class DaemonError(Exception):
    """Protocol violation or unsupported scenario on the daemon path."""


async def recv_message(conn: Connection) -> Any:
    """Receive and decode one wire message; ``None`` on clean EOF.

    The shared inbound seam of every control link — coordinator,
    daemon, and the supervised-service runtime all speak the same
    framed v1 payloads, so decode happens exactly once, here.
    """
    payload = await conn.recv()
    if payload is None:
        return None
    return wire.decode_message(payload)


async def send_message(conn: Connection, message: Any) -> int:
    """Encode and send one wire message; returns the payload length."""
    payload = wire.encode_message(message)
    await conn.send(payload)
    return len(payload)


# ---------------------------------------------------------------------------
# Spec transfer: canonical JSON both sides rebuild from
# ---------------------------------------------------------------------------

_SPEC_FIELDS = (
    "name",
    "description",
    "paper_reference",
    "protocol",
    "nodes",
    "rounds",
    "warmup_rounds",
    "stream_rate_kbps",
    "update_bytes",
    "fanout",
    "monitors_per_node",
    "adversaries",
    "node_strategies",
    "rate_schedule",
    "detection_enabled",
    "seed",
    "batch_verify",
)


def validate_daemon_spec(spec: ScenarioSpec) -> None:
    """Reject scenario features the daemon runtime does not model."""
    if spec.protocol != "pag":
        raise DaemonError(
            f"the daemon runtime speaks the PAG protocol only, "
            f"not {spec.protocol!r}"
        )
    for feature in ("churn", "arrivals", "fault_schedule"):
        if getattr(spec, feature):
            raise DaemonError(
                f"scenario {spec.name!r} uses {feature}, which is a "
                "simulator-tier feature the daemon runtime does not run"
            )
    if spec.population:
        raise DaemonError(
            "population-tier scenarios do not run on the daemon runtime"
        )


def spec_to_json(spec: ScenarioSpec) -> bytes:
    """Canonical JSON of a daemon-runnable :class:`ScenarioSpec`."""
    validate_daemon_spec(spec)
    payload = {}
    for name in _SPEC_FIELDS:
        value = getattr(spec, name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = dataclasses.asdict(value)
        elif isinstance(value, tuple):
            value = [
                dataclasses.asdict(item)
                if dataclasses.is_dataclass(item)
                else list(item)
                if isinstance(item, tuple)
                else item
                for item in value
            ]
        payload[name] = value
    return json.dumps(payload, sort_keys=True, indent=None).encode()


def spec_from_json(data: bytes) -> ScenarioSpec:
    """Rebuild the :class:`ScenarioSpec` a coordinator shipped."""
    from repro.scenarios.spec import AdversaryGroup, RateStep, ScenarioSpec

    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DaemonError(f"undecodable scenario spec: {exc}") from exc
    unknown = set(payload) - set(_SPEC_FIELDS)
    if unknown:
        raise DaemonError(
            f"scenario spec carries unknown fields {sorted(unknown)}"
        )
    kwargs = dict(payload)
    kwargs["adversaries"] = tuple(
        AdversaryGroup(**group) for group in kwargs.get("adversaries", ())
    )
    kwargs["node_strategies"] = tuple(
        (int(node_id), strategy)
        for node_id, strategy in kwargs.get("node_strategies", ())
    )
    kwargs["rate_schedule"] = tuple(
        RateStep(**step) for step in kwargs.get("rate_schedule", ())
    )
    try:
        spec = ScenarioSpec(**kwargs)
    except (TypeError, ValueError) as exc:
        raise DaemonError(f"invalid scenario spec: {exc}") from exc
    validate_daemon_spec(spec)
    return spec


def spec_digest(data: bytes) -> str:
    """Digest the coordinator and every daemon agree on."""
    return hashlib.sha256(data).hexdigest()[:16]


def owned_node_ids(
    all_ids: Iterable[int], shard: int, shards: int
) -> List[int]:
    """The ids shard ``shard`` executes: ``sorted(ids)[shard::shards]``."""
    return sorted(all_ids)[shard::shards]


# ---------------------------------------------------------------------------
# Peer links
# ---------------------------------------------------------------------------


class _PeerLink:
    """One daemon-to-daemon connection plus its reordering state.

    The reader task splits the inbound stream into session payloads
    (buffered until the owning step delivers them) and ``StepMark``
    barriers (queued for the step loop to await).  Per-link FIFO makes
    the mark a delivery barrier for everything sent before it.
    """

    def __init__(self, shard: int, conn: Connection) -> None:
        self.shard = shard
        self.conn = conn
        self.payloads: List[object] = []
        self.marks: asyncio.Queue = asyncio.Queue()
        self.reader: Optional[asyncio.Task] = None

    def start_reader(self) -> None:
        self.reader = asyncio.get_running_loop().create_task(self._read())

    async def _read(self) -> None:
        while True:
            try:
                message = await recv_message(self.conn)
            except (TransportError, asyncio.CancelledError):
                return
            if message is None:
                return
            if isinstance(message, wire.StepMark):
                await self.marks.put(message)
            else:
                self.payloads.append(message)

    def take_payloads(self) -> List[object]:
        taken = self.payloads
        self.payloads = []
        return taken

    async def close(self) -> None:
        if self.reader is not None:
            self.reader.cancel()
        await self.conn.close()


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class NodeDaemon:
    """Hosts one shard of a scenario behind a transport endpoint.

    Lifecycle: :meth:`start` binds the listener (resolving ephemeral
    ports), a coordinator connects and sends ``JoinRequest``, the
    daemon builds its session replica, dials every lower-numbered peer,
    acknowledges with ``JoinAccept`` and then obeys the coordinator's
    round/collect/shutdown schedule.  :meth:`serve_forever` returns
    after a clean ``Shutdown``.
    """

    def __init__(self, endpoint: str) -> None:
        self.requested_endpoint = endpoint
        self.endpoint = endpoint
        self._listener = None
        self._join: Optional[wire.JoinRequest] = None
        self._control: Optional[Connection] = None
        self._join_ready = asyncio.Event()
        self._peers: Dict[int, _PeerLink] = {}
        self._peers_changed = asyncio.Event()
        self._done = asyncio.Event()
        self._conns: List[Connection] = []
        # Wire counters, reported at collection.
        self.frames_sent = 0
        self.bytes_sent = 0
        self.relay_batches = 0
        self.relays_batched = 0

    async def start(self) -> str:
        """Bind the listener; returns the resolved endpoint."""
        self._listener = await listen(self.requested_endpoint, self._accept)
        self.endpoint = self._listener.endpoint
        return self.endpoint

    async def serve_forever(self) -> None:
        """Block until the coordinator shuts this daemon down."""
        if self._listener is None:
            await self.start()
        await self._join_ready.wait()
        try:
            await self._run_session()
        finally:
            await self._shutdown()

    async def _accept(self, conn: Connection) -> None:
        """First frame decides the link type: coordinator or peer."""
        self._conns.append(conn)
        try:
            message = await recv_message(conn)
        except TransportError:
            return
        if message is None:
            return
        if isinstance(message, wire.JoinRequest):
            if self._join is not None:
                await self._send(conn, wire.JoinReject(
                    reason="daemon already joined a session"
                ))
                return
            self._join = message
            self._control = conn
            self._join_ready.set()
        elif isinstance(message, wire.PeerHello):
            link = _PeerLink(message.shard, conn)
            self._peers[message.shard] = link
            link.start_reader()
            self._peers_changed.set()
        else:
            raise DaemonError(
                f"unexpected first frame {type(message).__name__} on a "
                "new connection"
            )

    async def _send(self, conn: Connection, message: Any) -> None:
        sent = await send_message(conn, message)
        self.frames_sent += 1
        self.bytes_sent += sent + 4

    # -- session ------------------------------------------------------------

    async def _run_session(self) -> None:
        join = self._join
        control = self._control
        assert join is not None and control is not None
        try:
            spec = spec_from_json(join.spec_json)
        except DaemonError as exc:
            await self._send(control, wire.JoinReject(reason=str(exc)))
            return
        self.shard = join.shard
        self.shards = join.shards
        self.batch_relays = join.batch_relays
        session = spec.build(None)
        simulator = session.simulator
        all_ids = sorted(simulator.nodes)
        owned = owned_node_ids(all_ids, join.shard, join.shards)
        self._owned = set(owned)
        self._shard_of = {
            node_id: index % join.shards
            for index, node_id in enumerate(all_ids)
        }
        self._session = session
        self._spec = spec

        await self._connect_peers(join)
        await self._send(control, wire.JoinAccept(
            shard=join.shard,
            nodes_owned=len(owned),
            spec_digest=spec_digest(join.spec_json),
        ))

        while True:
            message = await recv_message(control)
            if message is None:
                return
            if isinstance(message, wire.RoundStart):
                await self._run_round(message.round_no)
            elif isinstance(message, wire.CollectRequest):
                await self._send(control, wire.SessionReport(
                    payload=json.dumps(self._report()).encode()
                ))
            elif isinstance(message, wire.Shutdown):
                return
            else:
                raise DaemonError(
                    f"unexpected control frame {type(message).__name__}"
                )

    async def _connect_peers(self, join: wire.JoinRequest) -> None:
        """Dial every lower shard; await dial-ins from higher shards."""
        if len(join.peers) != join.shards:
            raise DaemonError(
                f"join names {len(join.peers)} peer endpoints for "
                f"{join.shards} shards"
            )
        for shard in range(join.shard):
            conn = await connect(join.peers[shard])
            await self._send(conn, wire.PeerHello(shard=join.shard))
            link = _PeerLink(shard, conn)
            self._peers[shard] = link
            link.start_reader()
        while len(self._peers) < join.shards - 1:
            self._peers_changed.clear()
            await self._peers_changed.wait()

    async def _run_round(self, round_no: int) -> None:
        session = self._session
        simulator = session.simulator
        network = simulator.network
        control = self._control
        network.begin_round(round_no)
        for node in simulator._ordered_nodes():
            if node.node_id in self._owned:
                node.begin_round(round_no)
        step = 0
        while True:
            batch = network.take_pending()
            local: List[object] = []
            remote: Dict[int, List[object]] = {}
            for message in batch:
                target = self._shard_of.get(message.recipient)
                if target is None or target == self.shard:
                    local.append(message)
                else:
                    remote.setdefault(target, []).append(message)
            sent_remote = 0
            for target in sorted(remote):
                link = self._peers[target]
                for message in self._coalesce(remote[target]):
                    await self._send(link.conn, message)
                    sent_remote += 1
            for shard in sorted(self._peers):
                await self._send(
                    self._peers[shard].conn,
                    wire.StepMark(round_no=round_no, step=step),
                )
            arrivals: List[object] = []
            for shard in sorted(self._peers):
                link = self._peers[shard]
                mark = await link.marks.get()
                if mark.round_no != round_no or mark.step != step:
                    raise DaemonError(
                        f"peer {shard} at step {mark.round_no}/"
                        f"{mark.step}, expected {round_no}/{step}"
                    )
                arrivals.extend(link.take_payloads())
            delivered = 0
            for message in arrivals:
                node = simulator.nodes.get(message.recipient)
                if node is not None:
                    node.on_message(message)
                    delivered += 1
            for message in local:
                node = simulator.nodes.get(message.recipient)
                if node is not None:
                    node.on_message(message)
                    delivered += 1
            await self._send(control, wire.StepDone(
                round_no=round_no,
                step=step,
                delivered=delivered,
                sent_remote=sent_remote,
                pending_local=network.pending(),
            ))
            go = await recv_message(control)
            if go is None:
                raise DaemonError("coordinator vanished mid-round")
            if not isinstance(go, wire.StepGo):
                raise DaemonError(
                    f"expected StepGo, got {type(go).__name__}"
                )
            if not go.proceed:
                break
            step += 1
        for node in simulator._ordered_nodes():
            if node.node_id in self._owned:
                node.end_round(round_no)
        simulator.current_round = round_no + 1
        await self._send(control, wire.RoundDone(round_no=round_no))

    def _coalesce(self, messages: List[object]) -> List[object]:
        """Fold same-destination attestation relays into signed batches.

        Relays from one declarer to one monitor in one round collapse
        into a single :class:`AttestationRelayBatch` carrying the raw
        (hash, cofactor) pairs under ONE signature by the declarer —
        the receiving monitor verifies that signature and folds the
        pairs through its round :class:`BatchVerifier`.  The batch
        replaces the group's first relay, preserving relative order;
        singleton groups stay plain relays.
        """
        if not self.batch_relays:
            return messages
        groups: Dict[Tuple[int, int, int], List[int]] = {}
        for index, message in enumerate(messages):
            if isinstance(message, AttestationRelay):
                key = (message.sender, message.recipient, message.round_no)
                groups.setdefault(key, []).append(index)
        replaced: Dict[int, object] = {}
        dropped = set()
        signer = self._session.context.signer
        for (sender, recipient, round_no), indices in groups.items():
            if len(indices) < 2:
                continue
            pairs = tuple(
                RelayPair(
                    attestation=messages[i].attestation,
                    cofactor=messages[i].cofactor,
                    cofactor_prime_count=messages[i].cofactor_prime_count,
                )
                for i in indices
            )
            batch = AttestationRelayBatch(
                sender=sender,
                recipient=recipient,
                round_no=round_no,
                declarer=sender,
                pairs=pairs,
                signature=0,
            )
            batch.signature = signer.sign(sender, batch.payload_desc())
            replaced[indices[0]] = batch
            dropped.update(indices[1:])
            self.relay_batches += 1
            self.relays_batched += len(indices)
        if not replaced:
            return messages
        out: List[object] = []
        for index, message in enumerate(messages):
            if index in dropped:
                continue
            out.append(replaced.get(index, message))
        return out

    def _report(self) -> dict:
        session = self._session
        spec = self._spec
        network = session.simulator.network
        verdicts = sorted(
            (v.node, v.reason.value, v.exchange_round, v.detected_by)
            for v in session.all_verdicts()
        )
        continuity = {}
        for node_id in sorted(self._owned):
            if node_id == 0:
                continue
            report = session.playback_report(
                node_id, warmup_rounds=spec.warmup_rounds
            )
            if report.chunks_due:
                continuity[str(node_id)] = report.continuity
        return {
            "shard": self.shard,
            "owned": sorted(self._owned),
            "verdicts": verdicts,
            "messages_sent": network.messages_sent,
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "relay_batches": self.relay_batches,
            "relays_batched": self.relays_batched,
            "continuity": continuity,
        }

    async def _shutdown(self) -> None:
        for link in self._peers.values():
            await link.close()
        for conn in self._conns:
            await conn.close()
        if self._listener is not None:
            await self._listener.close()
        self._done.set()


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class SessionCoordinator:
    """Drives a scenario across a fleet of daemons.

    Connects to every endpoint, ships the spec, runs the BSP round
    schedule, merges the shard reports and shuts the fleet down.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        endpoints: List[str],
        batch_relays: bool = True,
    ) -> None:
        if len(endpoints) < 1:
            raise ValueError("a session needs at least one daemon")
        validate_daemon_spec(spec)
        self.spec = spec
        self.endpoints = list(endpoints)
        self.batch_relays = batch_relays

    async def run(self) -> dict:
        spec_json = spec_to_json(self.spec)
        digest = spec_digest(spec_json)
        conns: List[Connection] = []
        try:
            for endpoint in self.endpoints:
                conns.append(await connect(endpoint))
            for shard, conn in enumerate(conns):
                await self._send(conn, wire.JoinRequest(
                    shard=shard,
                    shards=len(conns),
                    spec_json=spec_json,
                    peers=tuple(self.endpoints),
                    batch_relays=self.batch_relays,
                ))
            for shard, conn in enumerate(conns):
                reply = await self._recv(conn)
                if isinstance(reply, wire.JoinReject):
                    raise DaemonError(
                        f"daemon {shard} rejected the session: "
                        f"{reply.reason}"
                    )
                if not isinstance(reply, wire.JoinAccept):
                    raise DaemonError(
                        f"daemon {shard} answered "
                        f"{type(reply).__name__}, expected JoinAccept"
                    )
                if reply.spec_digest != digest:
                    raise DaemonError(
                        f"daemon {shard} rebuilt spec digest "
                        f"{reply.spec_digest}, coordinator has {digest}"
                    )
            for round_no in range(self.spec.rounds):
                await self._run_round(conns, round_no)
            for conn in conns:
                await self._send(conn, wire.CollectRequest())
            reports = []
            for shard, conn in enumerate(conns):
                reply = await self._recv(conn)
                if not isinstance(reply, wire.SessionReport):
                    raise DaemonError(
                        f"daemon {shard} answered "
                        f"{type(reply).__name__}, expected SessionReport"
                    )
                reports.append(json.loads(reply.payload.decode()))
            for conn in conns:
                await self._send(conn, wire.Shutdown())
            return self._merge(reports)
        finally:
            for conn in conns:
                await conn.close()

    async def _send(self, conn: Connection, message: Any) -> None:
        await send_message(conn, message)

    async def _recv(self, conn: Connection) -> Any:
        message = await recv_message(conn)
        if message is None:
            raise DaemonError("a daemon hung up mid-session")
        return message

    async def _run_round(
        self, conns: List[Connection], round_no: int
    ) -> None:
        for conn in conns:
            await self._send(conn, wire.RoundStart(round_no=round_no))
        step = 0
        while True:
            pending = 0
            for shard, conn in enumerate(conns):
                done = await self._recv(conn)
                if not isinstance(done, wire.StepDone) or (
                    done.round_no != round_no or done.step != step
                ):
                    raise DaemonError(
                        f"daemon {shard}: expected StepDone "
                        f"{round_no}/{step}, got {done}"
                    )
                pending += done.pending_local
            proceed = pending > 0
            for conn in conns:
                await self._send(conn, wire.StepGo(
                    round_no=round_no, step=step, proceed=proceed
                ))
            if not proceed:
                break
            step += 1
        for shard, conn in enumerate(conns):
            done = await self._recv(conn)
            if not isinstance(done, wire.RoundDone):
                raise DaemonError(
                    f"daemon {shard}: expected RoundDone, got {done}"
                )

    def _merge(self, reports: List[dict]) -> dict:
        """Union of the shard reports, verdicts deduplicated exactly as
        :meth:`PagSession.all_verdicts` does: by (node, reason, round)."""
        seen = set()
        verdicts = []
        for report in reports:
            for node, reason, exchange_round, detected_by in report[
                "verdicts"
            ]:
                key = (node, reason, exchange_round)
                if key in seen:
                    continue
                seen.add(key)
                verdicts.append(
                    (node, reason, exchange_round, detected_by)
                )
        verdicts.sort()
        continuity = {}
        for report in reports:
            continuity.update(report.get("continuity", {}))
        mean_continuity = (
            sum(continuity.values()) / len(continuity)
            if continuity
            else None
        )
        return {
            "scenario": self.spec.name,
            "shards": len(reports),
            "rounds": self.spec.rounds,
            "verdicts": verdicts,
            "convicted": sorted({v[0] for v in verdicts}),
            "mean_continuity": mean_continuity,
            "messages_sent": sum(r["messages_sent"] for r in reports),
            "frames_sent": sum(r["frames_sent"] for r in reports),
            "bytes_on_wire": sum(r["bytes_sent"] for r in reports),
            "relay_batches": sum(r["relay_batches"] for r in reports),
            "relays_batched": sum(r["relays_batched"] for r in reports),
            "per_shard": reports,
        }


async def run_coordinated_session(
    spec: ScenarioSpec,
    shards: int = 2,
    scheme: str = "mem",
    batch_relays: bool = True,
) -> dict:
    """Spin up ``shards`` daemons plus a coordinator in this event loop.

    ``scheme`` picks the transport: ``"mem"`` (loopback queues, tests),
    ``"tcp"`` (real localhost sockets) or ``"unix"``.  Returns the
    merged session report.
    """
    import os
    import tempfile

    daemons: List[NodeDaemon] = []
    endpoints: List[str] = []
    tmpdir = None
    if scheme == "unix":
        tmpdir = tempfile.mkdtemp(prefix="repro-daemon-")
    try:
        for shard in range(shards):
            if scheme == "mem":
                endpoint = f"mem://daemon-{id(object())}-{shard}"
            elif scheme == "tcp":
                endpoint = "tcp://127.0.0.1:0"
            elif scheme == "unix":
                endpoint = f"unix://{tmpdir}/daemon-{shard}.sock"
            else:
                raise ValueError(f"unknown transport scheme {scheme!r}")
            daemon = NodeDaemon(endpoint)
            endpoints.append(await daemon.start())
            daemons.append(daemon)
        servers = [
            asyncio.get_running_loop().create_task(d.serve_forever())
            for d in daemons
        ]
        coordinator = SessionCoordinator(
            spec, endpoints, batch_relays=batch_relays
        )
        result = await coordinator.run()
        await asyncio.gather(*servers)
        return result
    finally:
        if tmpdir is not None:
            import shutil

            shutil.rmtree(tmpdir, ignore_errors=True)
