"""Real-process deployment runtime: wire protocol, transports, daemon.

The simulator executes the paper's message sequence in one process;
this package promotes it to a deployable peer protocol (ROADMAP item
1): a versioned binary wire codec over every PAG message kind
(:mod:`repro.net.wire`), a :class:`Transport` abstraction with TCP,
UNIX-socket and in-memory loopback implementations
(:mod:`repro.net.transport`), and an asyncio :class:`NodeDaemon`
hosting a shard of a session's nodes behind a join handshake
(:mod:`repro.net.daemon`).

The in-process ``DaemonPolicy`` (:mod:`repro.sim.execution`) drives
every delivered message through this codec and is held bit-identical
to ``SerialPolicy`` by the differential suite; the multi-process
daemon path is held to verdict parity.
"""

from __future__ import annotations

from repro.net.wire import (
    WIRE_VERSION,
    FrameAssembler,
    WireError,
    WireTruncatedError,
    WireUnknownKindError,
    WireValidationError,
    WireVersionError,
    decode_message,
    encodable,
    encode_message,
    frame,
)

__all__ = [
    "WIRE_VERSION",
    "FrameAssembler",
    "WireError",
    "WireTruncatedError",
    "WireUnknownKindError",
    "WireValidationError",
    "WireVersionError",
    "decode_message",
    "encodable",
    "encode_message",
    "frame",
]
