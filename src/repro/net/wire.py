"""Versioned binary wire codec for the PAG deployment runtime.

Every frame is::

    [u32 big-endian payload length][payload]
    payload = [u8 version][u8 kind][body]

The codec is *deterministic* — one message has exactly one encoding —
and *validated at the boundary*: every bounds check (negative ids,
oversized frames, zero-length pair lists, non-canonical integers,
trailing bytes) rejects with a crisp :class:`WireError` subclass
before any crypto work happens downstream.  Unknown kind bytes raise
:class:`WireUnknownKindError`, short reads :class:`WireTruncatedError`,
and a foreign protocol version :class:`WireVersionError`.

Primitive layer:

* ``varint`` — unsigned LEB128, at most 10 bytes, canonical (no
  redundant trailing zero groups).
* ``id`` — a zigzag-encoded varint; decode rejects negative values, so
  a crafted frame smuggling ``-1`` ids fails here, not in the engine.
* ``bigint`` — varint byte length + big-endian magnitude, canonical
  (no leading zero byte; zero is the empty string).  Hashes, primes,
  cofactors and signatures are arbitrary-precision integers.

The ``attestation_relay`` kind carries a *pair list*: one entry
round-trips to the simulator's :class:`AttestationRelay`, two or more
decode to an :class:`AttestationRelayBatch` — the signed
(hash, cofactor) pair list the fm>1 batched fold consumes (one outer
signature, one wire message, one multi-exponentiation at the monitor).

Kind bytes < 64 are session traffic (:mod:`repro.core.messages`);
bytes >= 64 are control frames defined at the bottom of this module:
64-75 the daemon runtime (join handshake, round barriers), 76-81 the
supervised service (health, event stream, operator control).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.messages import (
    Accusation,
    Ack,
    AckCopy,
    AckRelay,
    Attestation,
    AttestationRelay,
    AttestationRelayBatch,
    Confirm,
    DeclarationAck,
    InvestigateRequest,
    InvestigateResponse,
    KeyRequest,
    KeyResponse,
    MonitorBroadcast,
    MonitorProbe,
    Nack,
    ProbeAck,
    RelayPair,
    SelfCheck,
    Serve,
    ServeEntry,
    SignedAck,
    SignedAttestation,
)
from repro.gossip.updates import Update

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "WireTruncatedError",
    "WireVersionError",
    "WireUnknownKindError",
    "WireValidationError",
    "encode_message",
    "decode_message",
    "encodable",
    "frame",
    "FrameAssembler",
    "registered_kinds",
    "JoinRequest",
    "JoinAccept",
    "JoinReject",
    "PeerHello",
    "RoundStart",
    "StepMark",
    "StepDone",
    "StepGo",
    "RoundDone",
    "CollectRequest",
    "SessionReport",
    "Shutdown",
    "HealthRequest",
    "HealthReport",
    "SubscribeRequest",
    "EventFrame",
    "ControlRequest",
    "ControlResponse",
]

#: Protocol version byte; frames from any other version are rejected.
WIRE_VERSION = 1

#: Hard frame ceiling — an oversized length prefix is rejected before
#: a single payload byte is read (no attacker-controlled allocation).
MAX_FRAME_BYTES = 1 << 20

# Structural bounds, enforced at decode before anything touches crypto.
_MAX_BIGINT_BYTES = 4096
_MAX_ENTRIES = 1 << 16
_MAX_BUFFERMAP = 1 << 20
_MAX_PAIRS = 1 << 12
_MAX_PRIME_COUNT = 1 << 20
_MAX_COUNT = 1 << 16
_MAX_STRING_BYTES = 1 << 16
#: Node ids, round numbers and update uids — and the queue-depth
#: tallies of the barrier protocol — are bounded integers.  Ids may
#: carry sharded-uid payloads up to 48 bits; a zigzag id doubles, so
#: the raw varint fits 49 bits.
_MAX_ID_RAW = 1 << 49
_MAX_SESSION = 1 << 16
_MAX_TALLY = 1 << 32


class WireError(Exception):
    """Base class for every codec failure."""


class WireTruncatedError(WireError):
    """The frame or a field ends before its declared length."""


class WireVersionError(WireError):
    """The payload's protocol-version byte is not ours."""


class WireUnknownKindError(WireError):
    """The payload's kind byte maps to no registered schema."""


class WireValidationError(WireError):
    """A structurally complete frame carries out-of-bounds values."""


# ---------------------------------------------------------------------------
# Primitive readers/writers
# ---------------------------------------------------------------------------


class _Writer:
    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def u8(self, value: int) -> None:
        self._parts.append(bytes((value,)))

    def varint(self, value: int) -> None:
        if value < 0:
            raise WireValidationError(
                f"cannot encode negative varint {value}"
            )
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))

    def id(self, value: int) -> None:
        """Zigzag varint; encode refuses negatives (ids are >= 0 on the
        wire — the in-memory ``-1`` defaults never travel)."""
        if value < 0:
            raise WireValidationError(f"cannot encode negative id {value}")
        self.varint(value << 1)

    def bool(self, value: bool) -> None:
        self.u8(1 if value else 0)

    def bigint(self, value: int) -> None:
        if value < 0:
            raise WireValidationError(
                f"cannot encode negative integer {value}"
            )
        raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
        if len(raw) > _MAX_BIGINT_BYTES:
            raise WireValidationError(
                f"integer of {len(raw)} bytes exceeds the "
                f"{_MAX_BIGINT_BYTES}-byte wire bound"
            )
        self.varint(len(raw))
        self._parts.append(raw)

    def string(self, value: str) -> None:
        raw = value.encode("utf-8")
        if len(raw) > _MAX_STRING_BYTES:
            raise WireValidationError("string exceeds the wire bound")
        self.varint(len(raw))
        self._parts.append(raw)

    def blob(self, value: bytes) -> None:
        if len(value) > MAX_FRAME_BYTES:
            raise WireValidationError("blob exceeds the frame bound")
        self.varint(len(value))
        self._parts.append(bytes(value))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireTruncatedError(
                f"field needs {n} bytes at offset {self.pos}, "
                f"payload has {len(self.data) - self.pos} left"
            )
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def varint(self, bound: Optional[int] = None) -> int:
        result = 0
        shift = 0
        for _ in range(10):
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                if byte == 0 and shift:
                    raise WireValidationError(
                        "non-canonical varint (redundant trailing zero)"
                    )
                if bound is not None and result > bound:
                    raise WireValidationError(
                        f"varint {result} exceeds bound {bound}"
                    )
                return result
            shift += 7
        raise WireValidationError("varint longer than 10 bytes")

    def id(self) -> int:
        raw = self.varint(bound=_MAX_ID_RAW)
        value = (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
        if value < 0:
            raise WireValidationError(f"negative id {value} on the wire")
        return value

    def bool(self) -> bool:
        value = self.u8()
        if value not in (0, 1):
            raise WireValidationError(f"boolean byte must be 0/1, got {value}")
        return bool(value)

    def bigint(self) -> int:
        length = self.varint(bound=_MAX_BIGINT_BYTES)
        raw = self._take(length)
        if length and raw[0] == 0:
            raise WireValidationError(
                "non-canonical integer (leading zero byte)"
            )
        return int.from_bytes(raw, "big")

    def string(self) -> str:
        length = self.varint(bound=_MAX_STRING_BYTES)
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireValidationError(f"invalid utf-8 string: {exc}") from exc

    def blob(self) -> bytes:
        length = self.varint(bound=MAX_FRAME_BYTES)
        return bytes(self._take(length))

    def expect_end(self) -> None:
        if self.pos != len(self.data):
            raise WireValidationError(
                f"{len(self.data) - self.pos} trailing bytes after body"
            )


# ---------------------------------------------------------------------------
# Shared sub-object schemas
# ---------------------------------------------------------------------------


def _put_update(w: _Writer, update: Update) -> None:
    w.id(update.uid)
    w.id(update.round_created)
    w.id(update.expiry_round)
    w.varint(update.payload_bytes)
    w.varint(update.session)


def _get_update(r: _Reader) -> Update:
    return Update(
        uid=r.id(),
        round_created=r.id(),
        expiry_round=r.id(),
        payload_bytes=r.varint(bound=1 << 30),
        session=r.varint(bound=_MAX_SESSION),
    )


def _put_entry(w: _Writer, entry: ServeEntry) -> None:
    _put_update(w, entry.update)
    w.varint(entry.count)
    w.u8((1 if entry.has_payload else 0) | (2 if entry.ack_only else 0))


def _get_entry(r: _Reader) -> ServeEntry:
    update = _get_update(r)
    count = r.varint(bound=_MAX_COUNT)
    if count < 1:
        raise WireValidationError("serve entry count must be positive")
    flags = r.u8()
    if flags > 3:
        raise WireValidationError(f"unknown serve entry flags {flags:#x}")
    return ServeEntry(
        update=update,
        count=count,
        has_payload=bool(flags & 1),
        ack_only=bool(flags & 2),
    )


def _put_entries(w: _Writer, entries: Tuple[ServeEntry, ...]) -> None:
    w.varint(len(entries))
    for entry in entries:
        _put_entry(w, entry)


def _get_entries(r: _Reader) -> Tuple[ServeEntry, ...]:
    return tuple(
        _get_entry(r) for _ in range(r.varint(bound=_MAX_ENTRIES))
    )


def _put_signed_ack(w: _Writer, ack: SignedAck) -> None:
    if ack is None:
        raise WireValidationError("message carries no SignedAck")
    w.id(ack.round_no)
    w.id(ack.receiver)
    w.id(ack.server)
    w.bigint(ack.hash_total)
    w.varint(ack.key_prime_count)
    w.bigint(ack.signature)


def _get_signed_ack(r: _Reader) -> SignedAck:
    return SignedAck(
        round_no=r.id(),
        receiver=r.id(),
        server=r.id(),
        hash_total=r.bigint(),
        key_prime_count=r.varint(bound=_MAX_PRIME_COUNT),
        signature=r.bigint(),
    )


def _put_attestation(w: _Writer, att: SignedAttestation) -> None:
    if att is None:
        raise WireValidationError("message carries no SignedAttestation")
    w.id(att.round_no)
    w.id(att.server)
    w.id(att.receiver)
    w.bigint(att.hash_forward)
    w.bigint(att.hash_ack_only)
    w.bigint(att.signature)


def _get_attestation(r: _Reader) -> SignedAttestation:
    return SignedAttestation(
        round_no=r.id(),
        server=r.id(),
        receiver=r.id(),
        hash_forward=r.bigint(),
        hash_ack_only=r.bigint(),
        signature=r.bigint(),
    )


# ---------------------------------------------------------------------------
# Schema registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Schema:
    kind_byte: int
    cls: Type
    encode: Callable  # (writer, message) -> None
    decode: Callable  # (reader, sender, recipient, round_no) -> message
    control: bool = False


_BY_BYTE: Dict[int, _Schema] = {}
_BY_CLASS: Dict[Type, _Schema] = {}

#: Encoder half of a codec pair: ``(writer, message) -> None``.
_EncodeFn = Callable[..., None]
#: Decoder half: ``(reader[, sender, recipient, round_no]) -> message``.
_DecodeFn = Callable[..., Any]
#: A builder producing one ``(encode, decode)`` pair.
_BuildFn = Callable[[], Tuple[_EncodeFn, _DecodeFn]]


def _register(schema: _Schema) -> None:
    if schema.kind_byte in _BY_BYTE:
        raise ValueError(f"duplicate kind byte {schema.kind_byte}")
    _BY_BYTE[schema.kind_byte] = schema
    _BY_CLASS[schema.cls] = schema


def _session(
    kind_byte: int, cls: Type
) -> Callable[[_BuildFn], _BuildFn]:
    """Register a session-message schema from a builder returning
    ``(encode, decode)``."""

    def wrap(build: _BuildFn) -> _BuildFn:
        encode, decode = build()
        _register(_Schema(kind_byte, cls, encode, decode))
        return build

    return wrap


# -- messages 1-5 -----------------------------------------------------------


@_session(1, KeyRequest)
def _key_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: KeyRequest) -> None:
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> KeyRequest:
        return KeyRequest(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            signature=r.bigint(),
        )

    return encode, decode



@_session(2, KeyResponse)
def _key_response() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: KeyResponse) -> None:
        w.bigint(m.prime)
        # Buffermap members are *encrypted* uids (section V-A), i.e.
        # wide integers; sorted order makes the encoding canonical.
        uids = sorted(m.buffermap)
        w.varint(len(uids))
        for uid in uids:
            w.bigint(uid)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> KeyResponse:
        prime = r.bigint()
        count = r.varint(bound=_MAX_BUFFERMAP)
        uids = []
        last = -1
        for _ in range(count):
            uid = r.bigint()
            if uid <= last:
                raise WireValidationError(
                    "buffermap uids must be strictly increasing"
                )
            uids.append(uid)
            last = uid
        return KeyResponse(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            prime=prime,
            buffermap=frozenset(uids),
            signature=r.bigint(),
        )

    return encode, decode



@_session(3, Serve)
def _serve() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Serve) -> None:
        w.bigint(m.key_prev)
        w.varint(m.key_prime_count)
        _put_entries(w, m.entries)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> Serve:
        return Serve(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            key_prev=r.bigint(),
            key_prime_count=r.varint(bound=_MAX_PRIME_COUNT),
            entries=_get_entries(r),
            signature=r.bigint(),
        )

    return encode, decode



@_session(4, Attestation)
def _attestation() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Attestation) -> None:
        _put_attestation(w, m.attestation)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> Attestation:
        return Attestation(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            attestation=_get_attestation(r),
        )

    return encode, decode



@_session(5, Ack)
def _ack() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Ack) -> None:
        _put_signed_ack(w, m.ack)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> Ack:
        return Ack(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            ack=_get_signed_ack(r),
        )

    return encode, decode



# -- messages 6-9 and the declaration seam ----------------------------------


@_session(6, AckCopy)
def _ack_copy() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: AckCopy) -> None:
        _put_signed_ack(w, m.ack)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> AckCopy:
        return AckCopy(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            ack=_get_signed_ack(r),
        )

    return encode, decode



def _put_relay_pair(w: _Writer, pair: RelayPair) -> None:
    _put_attestation(w, pair.attestation)
    if pair.cofactor < 1:
        raise WireValidationError("relay cofactor must be positive")
    w.bigint(pair.cofactor)
    w.varint(pair.cofactor_prime_count)


def _get_relay_pair(r: _Reader) -> RelayPair:
    attestation = _get_attestation(r)
    cofactor = r.bigint()
    if cofactor < 1:
        raise WireValidationError("relay cofactor must be positive")
    return RelayPair(
        attestation=attestation,
        cofactor=cofactor,
        cofactor_prime_count=r.varint(bound=_MAX_PRIME_COUNT),
    )


def _encode_relay(w: _Writer, m: AttestationRelay) -> None:
    w.id(m.sender)  # the declarer: a lone relay is never forwarded
    w.varint(1)
    _put_relay_pair(
        w,
        RelayPair(
            attestation=m.attestation,
            cofactor=m.cofactor,
            cofactor_prime_count=m.cofactor_prime_count,
        ),
    )
    w.bigint(m.signature)


def _encode_relay_batch(w: _Writer, m: AttestationRelayBatch) -> None:
    if len(m.pairs) < 2:
        raise WireValidationError(
            "a relay batch needs at least two pairs; send a lone pair "
            "as a plain attestation_relay"
        )
    w.id(m.declarer)
    w.varint(len(m.pairs))
    for pair in m.pairs:
        _put_relay_pair(w, pair)
    w.bigint(m.signature)


def _decode_relay(
    r: _Reader, sender: int, recipient: int, round_no: int
) -> AttestationRelay | AttestationRelayBatch:
    declarer = r.id()
    count = r.varint(bound=_MAX_PAIRS)
    if count < 1:
        raise WireValidationError("zero-length relay pair list")
    pairs = tuple(_get_relay_pair(r) for _ in range(count))
    signature = r.bigint()
    if count == 1:
        if declarer != sender:
            raise WireValidationError(
                "a single-pair relay must come from its declarer"
            )
        pair = pairs[0]
        return AttestationRelay(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            attestation=pair.attestation,
            cofactor=pair.cofactor,
            cofactor_prime_count=pair.cofactor_prime_count,
            signature=signature,
        )
    return AttestationRelayBatch(
        sender=sender,
        recipient=recipient,
        round_no=round_no,
        declarer=declarer,
        pairs=pairs,
        signature=signature,
    )


_register(_Schema(7, AttestationRelay, _encode_relay, _decode_relay))
_BY_CLASS[AttestationRelayBatch] = _Schema(
    7, AttestationRelayBatch, _encode_relay_batch, _decode_relay
)


@_session(8, MonitorBroadcast)
def _monitor_broadcast() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: MonitorBroadcast) -> None:
        w.id(m.monitored)
        w.id(m.predecessor)
        w.bigint(m.lifted_forward)
        w.bigint(m.lifted_ack_only)
        _put_signed_ack(w, m.ack)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> MonitorBroadcast:
        return MonitorBroadcast(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            monitored=r.id(),
            predecessor=r.id(),
            lifted_forward=r.bigint(),
            lifted_ack_only=r.bigint(),
            ack=_get_signed_ack(r),
            signature=r.bigint(),
        )

    return encode, decode



@_session(9, AckRelay)
def _ack_relay() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: AckRelay) -> None:
        w.id(m.server)
        _put_signed_ack(w, m.ack)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> AckRelay:
        return AckRelay(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            server=r.id(),
            ack=_get_signed_ack(r),
            signature=r.bigint(),
        )

    return encode, decode



@_session(10, DeclarationAck)
def _declaration_ack() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: DeclarationAck) -> None:
        w.id(m.server)
        w.id(m.exchange_round)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> DeclarationAck:
        return DeclarationAck(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            server=r.id(),
            exchange_round=r.id(),
            signature=r.bigint(),
        )

    return encode, decode



@_session(11, SelfCheck)
def _self_check() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: SelfCheck) -> None:
        w.id(m.predecessor)
        w.bigint(m.lifted_forward)
        w.bigint(m.lifted_ack_only)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> SelfCheck:
        return SelfCheck(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            predecessor=r.id(),
            lifted_forward=r.bigint(),
            lifted_ack_only=r.bigint(),
            signature=r.bigint(),
        )

    return encode, decode



# -- accusation path and investigations -------------------------------------


@_session(12, Accusation)
def _accusation() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Accusation) -> None:
        w.id(m.accused)
        w.id(m.exchange_round)
        _put_entries(w, m.entries)
        w.bigint(m.key_prev)
        w.varint(m.key_prime_count)
        w.bool(m.attestation is not None)
        if m.attestation is not None:
            _put_attestation(w, m.attestation)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> Accusation:
        return Accusation(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            accused=r.id(),
            exchange_round=r.id(),
            entries=_get_entries(r),
            key_prev=r.bigint(),
            key_prime_count=r.varint(bound=_MAX_PRIME_COUNT),
            attestation=_get_attestation(r) if r.bool() else None,
            signature=r.bigint(),
        )

    return encode, decode



@_session(13, MonitorProbe)
def _monitor_probe() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: MonitorProbe) -> None:
        w.id(m.accuser)
        w.id(m.exchange_round)
        _put_entries(w, m.entries)
        w.bigint(m.key_prev)
        w.varint(m.key_prime_count)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> MonitorProbe:
        return MonitorProbe(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            accuser=r.id(),
            exchange_round=r.id(),
            entries=_get_entries(r),
            key_prev=r.bigint(),
            key_prime_count=r.varint(bound=_MAX_PRIME_COUNT),
            signature=r.bigint(),
        )

    return encode, decode



@_session(14, ProbeAck)
def _probe_ack() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: ProbeAck) -> None:
        _put_signed_ack(w, m.ack)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> ProbeAck:
        return ProbeAck(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            ack=_get_signed_ack(r),
        )

    return encode, decode



@_session(15, Confirm)
def _confirm() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Confirm) -> None:
        _put_signed_ack(w, m.ack)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> Confirm:
        return Confirm(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            ack=_get_signed_ack(r),
            signature=r.bigint(),
        )

    return encode, decode



@_session(16, Nack)
def _nack() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Nack) -> None:
        w.id(m.accused)
        w.id(m.accuser)
        w.id(m.exchange_round)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> Nack:
        return Nack(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            accused=r.id(),
            accuser=r.id(),
            exchange_round=r.id(),
            signature=r.bigint(),
        )

    return encode, decode



@_session(17, InvestigateRequest)
def _investigate_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: InvestigateRequest) -> None:
        w.id(m.successor)
        w.id(m.exchange_round)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> InvestigateRequest:
        return InvestigateRequest(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            successor=r.id(),
            exchange_round=r.id(),
            signature=r.bigint(),
        )

    return encode, decode



@_session(18, InvestigateResponse)
def _investigate_response() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: InvestigateResponse) -> None:
        w.id(m.successor)
        w.id(m.exchange_round)
        w.bool(m.ack is not None)
        if m.ack is not None:
            _put_signed_ack(w, m.ack)
        w.bool(m.accused_instead)
        w.bigint(m.signature)

    def decode(
        r: _Reader, sender: int, recipient: int, round_no: int
    ) -> InvestigateResponse:
        return InvestigateResponse(
            sender=sender,
            recipient=recipient,
            round_no=round_no,
            successor=r.id(),
            exchange_round=r.id(),
            ack=_get_signed_ack(r) if r.bool() else None,
            accused_instead=r.bool(),
            signature=r.bigint(),
        )

    return encode, decode



# ---------------------------------------------------------------------------
# Daemon control frames (kind bytes >= 64): join handshake + barriers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinRequest:
    """Coordinator -> daemon: host this shard of the scenario.

    ``spec_json`` is the canonical JSON of the ScenarioSpec every
    daemon rebuilds its session from (replica-from-spec determinism);
    ``peers`` are the listen endpoints of all daemons, indexed by
    shard, so daemon ``shard`` dials every lower-numbered peer.
    """

    shard: int
    shards: int
    spec_json: bytes
    peers: Tuple[str, ...]
    batch_relays: bool = True
    kind = "join_request"


@dataclass(frozen=True)
class JoinAccept:
    """Daemon -> coordinator: session built, peer links up."""

    shard: int
    nodes_owned: int
    spec_digest: str
    kind = "join_accept"


@dataclass(frozen=True)
class JoinReject:
    """Daemon -> coordinator: cannot host this scenario."""

    reason: str
    kind = "join_reject"


@dataclass(frozen=True)
class PeerHello:
    """Daemon -> daemon: identifies the dialing shard on a new link."""

    shard: int
    kind = "peer_hello"


@dataclass(frozen=True)
class RoundStart:
    """Coordinator -> daemons: run the begin fan-out of a round."""

    round_no: int
    kind = "round_start"


@dataclass(frozen=True)
class StepMark:
    """Daemon -> peer daemons: all my step-``step`` payload frames for
    this link are ahead of this mark (FIFO barrier)."""

    round_no: int
    step: int
    kind = "step_mark"


@dataclass(frozen=True)
class StepDone:
    """Daemon -> coordinator: step finished; activity counters let the
    coordinator detect global quiescence."""

    round_no: int
    step: int
    delivered: int
    sent_remote: int
    pending_local: int
    kind = "step_done"


@dataclass(frozen=True)
class StepGo:
    """Coordinator -> daemons: run the next step, or (``proceed`` False)
    end the round's drain."""

    round_no: int
    step: int
    proceed: bool
    kind = "step_go"


@dataclass(frozen=True)
class RoundDone:
    """Daemon -> coordinator: end fan-out of the round completed."""

    round_no: int
    kind = "round_done"


@dataclass(frozen=True)
class CollectRequest:
    """Coordinator -> daemons: report your shard's outcomes."""

    kind = "collect"


@dataclass(frozen=True)
class SessionReport:
    """Daemon -> coordinator: JSON outcome payload for the shard."""

    payload: bytes
    kind = "session_report"


@dataclass(frozen=True)
class Shutdown:
    """Coordinator -> daemon: close links and exit cleanly."""

    kind = "shutdown"


# ---------------------------------------------------------------------------
# Service frames (kinds 76-81): health, event stream, operator control
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HealthRequest:
    """Observer -> service: report the supervised session's state."""

    kind = "health_request"


@dataclass(frozen=True)
class HealthReport:
    """Service -> observer: liveness snapshot of the supervised run."""

    state: str
    scenario: str
    current_round: int
    total_rounds: int
    nodes: int
    subscribers: int
    events_published: int
    restarts: int
    kind = "health_report"


@dataclass(frozen=True)
class SubscribeRequest:
    """Observer -> service: switch this link to the event stream.

    ``kinds`` filters by event kind (``round``, ``meter``, ``counters``,
    ``verdict``, ``state``); an empty tuple subscribes to everything.
    """

    kinds: Tuple[str, ...] = ()
    kind = "subscribe"


@dataclass(frozen=True)
class EventFrame:
    """Service -> observer: one NDJSON event, sequence-numbered.

    ``dropped`` counts events this subscriber lost to backpressure
    since the previous delivered frame (bounded queue, drop-oldest), so
    a slow consumer can tell its view has gaps.
    """

    seq: int
    payload: bytes
    dropped: int = 0
    kind = "event"


@dataclass(frozen=True)
class ControlRequest:
    """Operator -> service: one mid-run control operation.

    ``op`` names the operation (``pause``, ``resume``, ``churn``,
    ``admit``, ``strategy``, ``snapshot``, ``drain``); ``node_id``
    targets a node for the membership/strategy ops (``None``
    otherwise) and ``arg`` carries the strategy name.
    """

    op: str
    node_id: Optional[int] = None
    arg: str = ""
    kind = "control_request"


@dataclass(frozen=True)
class ControlResponse:
    """Service -> operator: outcome of one control operation.

    ``detail`` is a human-readable note (or the snapshot JSON for the
    ``snapshot`` op); ``state`` reports the supervisor state after the
    operation was applied.
    """

    ok: bool
    detail: str
    state: str
    kind = "control_response"


def _control(
    kind_byte: int, cls: Type
) -> Callable[[_BuildFn], _BuildFn]:
    def wrap(build: _BuildFn) -> _BuildFn:
        encode, decode = build()
        _register(_Schema(kind_byte, cls, encode, decode, control=True))
        return build

    return wrap


@_control(64, JoinRequest)
def _join_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: JoinRequest) -> None:
        w.varint(m.shard)
        w.varint(m.shards)
        w.blob(m.spec_json)
        w.varint(len(m.peers))
        for peer in m.peers:
            w.string(peer)
        w.bool(m.batch_relays)

    def decode(r: _Reader) -> JoinRequest:
        shard = r.varint(bound=1 << 16)
        shards = r.varint(bound=1 << 16)
        if shards < 1 or shard >= shards:
            raise WireValidationError(
                f"join shard {shard} outside 0..{shards - 1}"
            )
        return JoinRequest(
            shard=shard,
            shards=shards,
            spec_json=r.blob(),
            peers=tuple(
                r.string() for _ in range(r.varint(bound=1 << 16))
            ),
            batch_relays=r.bool(),
        )

    return encode, decode



@_control(65, JoinAccept)
def _join_accept() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: JoinAccept) -> None:
        w.varint(m.shard)
        w.varint(m.nodes_owned)
        w.string(m.spec_digest)

    def decode(r: _Reader) -> JoinAccept:
        return JoinAccept(
            shard=r.varint(bound=1 << 16),
            nodes_owned=r.varint(bound=1 << 32),
            spec_digest=r.string(),
        )

    return encode, decode



@_control(66, JoinReject)
def _join_reject() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: JoinReject) -> None:
        w.string(m.reason)

    def decode(r: _Reader) -> JoinReject:
        return JoinReject(reason=r.string())

    return encode, decode



@_control(67, PeerHello)
def _peer_hello() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: PeerHello) -> None:
        w.varint(m.shard)

    def decode(r: _Reader) -> PeerHello:
        return PeerHello(shard=r.varint(bound=1 << 16))

    return encode, decode



@_control(68, RoundStart)
def _round_start() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: RoundStart) -> None:
        w.varint(m.round_no)

    def decode(r: _Reader) -> RoundStart:
        return RoundStart(round_no=r.varint(bound=1 << 32))

    return encode, decode



@_control(69, StepMark)
def _step_mark() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: StepMark) -> None:
        w.varint(m.round_no)
        w.varint(m.step)

    def decode(r: _Reader) -> StepMark:
        return StepMark(
            round_no=r.varint(bound=1 << 32),
            step=r.varint(bound=1 << 32),
        )

    return encode, decode



@_control(70, StepDone)
def _step_done() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: StepDone) -> None:
        w.varint(m.round_no)
        w.varint(m.step)
        w.varint(m.delivered)
        w.varint(m.sent_remote)
        w.varint(m.pending_local)

    def decode(r: _Reader) -> StepDone:
        return StepDone(
            round_no=r.varint(bound=1 << 32),
            step=r.varint(bound=1 << 32),
            delivered=r.varint(bound=_MAX_TALLY),
            sent_remote=r.varint(bound=_MAX_TALLY),
            pending_local=r.varint(bound=_MAX_TALLY),
        )

    return encode, decode



@_control(71, StepGo)
def _step_go() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: StepGo) -> None:
        w.varint(m.round_no)
        w.varint(m.step)
        w.bool(m.proceed)

    def decode(r: _Reader) -> StepGo:
        return StepGo(
            round_no=r.varint(bound=1 << 32),
            step=r.varint(bound=1 << 32),
            proceed=r.bool(),
        )

    return encode, decode



@_control(72, RoundDone)
def _round_done() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: RoundDone) -> None:
        w.varint(m.round_no)

    def decode(r: _Reader) -> RoundDone:
        return RoundDone(round_no=r.varint(bound=1 << 32))

    return encode, decode



@_control(73, CollectRequest)
def _collect_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: CollectRequest) -> None:
        pass

    def decode(r: _Reader) -> CollectRequest:
        return CollectRequest()

    return encode, decode



@_control(74, SessionReport)
def _session_report() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: SessionReport) -> None:
        w.blob(m.payload)

    def decode(r: _Reader) -> SessionReport:
        return SessionReport(payload=r.blob())

    return encode, decode



@_control(75, Shutdown)
def _shutdown() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: Shutdown) -> None:
        pass

    def decode(r: _Reader) -> Shutdown:
        return Shutdown()

    return encode, decode



@_control(76, HealthRequest)
def _health_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: HealthRequest) -> None:
        pass

    def decode(r: _Reader) -> HealthRequest:
        return HealthRequest()

    return encode, decode



@_control(77, HealthReport)
def _health_report() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: HealthReport) -> None:
        w.string(m.state)
        w.string(m.scenario)
        w.varint(m.current_round)
        w.varint(m.total_rounds)
        w.varint(m.nodes)
        w.varint(m.subscribers)
        w.varint(m.events_published)
        w.varint(m.restarts)

    def decode(r: _Reader) -> HealthReport:
        return HealthReport(
            state=r.string(),
            scenario=r.string(),
            current_round=r.varint(bound=1 << 32),
            total_rounds=r.varint(bound=1 << 32),
            nodes=r.varint(bound=1 << 32),
            subscribers=r.varint(bound=1 << 16),
            events_published=r.varint(bound=_MAX_TALLY),
            restarts=r.varint(bound=1 << 16),
        )

    return encode, decode



@_control(78, SubscribeRequest)
def _subscribe_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: SubscribeRequest) -> None:
        w.varint(len(m.kinds))
        for name in m.kinds:
            w.string(name)

    def decode(r: _Reader) -> SubscribeRequest:
        return SubscribeRequest(
            kinds=tuple(
                r.string() for _ in range(r.varint(bound=1 << 8))
            ),
        )

    return encode, decode



@_control(79, EventFrame)
def _event_frame() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: EventFrame) -> None:
        w.varint(m.seq)
        w.blob(m.payload)
        w.varint(m.dropped)

    def decode(r: _Reader) -> EventFrame:
        return EventFrame(
            seq=r.varint(bound=_MAX_TALLY),
            payload=r.blob(),
            dropped=r.varint(bound=_MAX_TALLY),
        )

    return encode, decode



@_control(80, ControlRequest)
def _control_request() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: ControlRequest) -> None:
        w.string(m.op)
        w.bool(m.node_id is not None)
        if m.node_id is not None:
            w.id(m.node_id)
        w.string(m.arg)

    def decode(r: _Reader) -> ControlRequest:
        return ControlRequest(
            op=r.string(),
            node_id=r.id() if r.bool() else None,
            arg=r.string(),
        )

    return encode, decode



@_control(81, ControlResponse)
def _control_response() -> Tuple[_EncodeFn, _DecodeFn]:
    def encode(w: _Writer, m: ControlResponse) -> None:
        w.bool(m.ok)
        w.string(m.detail)
        w.string(m.state)

    def decode(r: _Reader) -> ControlResponse:
        return ControlResponse(
            ok=r.bool(),
            detail=r.string(),
            state=r.string(),
        )

    return encode, decode



# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def registered_kinds() -> Dict[str, int]:
    """kind string -> kind byte for every registered schema."""
    return {
        schema.cls.kind: schema.kind_byte
        for schema in _BY_CLASS.values()
    }


def schema_table() -> List[Tuple[int, type, bool]]:
    """``(kind_byte, message class, is_control)`` per registered schema.

    Ordered by kind byte then class name.  This is the coverage
    contract the ``repro lint`` wire cross-check verifies: every row
    must have a fixture in ``tests/net/fixtures.py`` and a pinned
    frame in ``tests/net/golden_wire_v1.json``, and every message
    class must appear here.
    """
    return sorted(
        (
            (schema.kind_byte, cls, schema.control)
            for cls, schema in _BY_CLASS.items()
        ),
        key=lambda row: (row[0], row[1].__name__),
    )


def encodable(message: object) -> bool:
    """Does this message type have a wire schema?

    Baseline protocols (the AcTinG comparator, the push baseline)
    define their own message types outside the PAG wire catalogue; the
    loopback policy passes those through unencoded.
    """
    return type(message) in _BY_CLASS


def encode_message(message: Any) -> bytes:
    """Message -> payload bytes (``[version][kind][body]``, unframed)."""
    schema = _BY_CLASS.get(type(message))
    if schema is None:
        raise WireUnknownKindError(
            f"no wire schema for message type {type(message).__name__!r}"
        )
    w = _Writer()
    w.u8(WIRE_VERSION)
    w.u8(schema.kind_byte)
    if schema.control:
        schema.encode(w, message)
    else:
        w.id(message.sender)
        w.id(message.recipient)
        w.id(message.round_no)
        schema.encode(w, message)
    payload = w.getvalue()
    if len(payload) > MAX_FRAME_BYTES:
        raise WireValidationError(
            f"encoded payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return payload


def decode_message(payload: bytes) -> Any:
    """Payload bytes -> message object, fully validated.

    All structural and bounds validation happens here — before any
    signature verification or hash lifting downstream — so a malformed
    or hostile frame never reaches crypto code.
    """
    r = _Reader(payload)
    version = r.u8()
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"protocol version {version}, this build speaks "
            f"{WIRE_VERSION}"
        )
    kind_byte = r.u8()
    schema = _BY_BYTE.get(kind_byte)
    if schema is None:
        raise WireUnknownKindError(f"unknown kind byte {kind_byte}")
    if schema.control:
        message = schema.decode(r)
    else:
        sender = r.id()
        recipient = r.id()
        round_no = r.id()
        message = schema.decode(r, sender, recipient, round_no)
    r.expect_end()
    return message


def frame(payload: bytes) -> bytes:
    """Length-prefix one payload for a byte-stream transport."""
    if len(payload) > MAX_FRAME_BYTES:
        raise WireValidationError(
            f"payload of {len(payload)} bytes exceeds the frame bound"
        )
    return struct.pack(">I", len(payload)) + payload


class FrameAssembler:
    """Incremental splitter of a length-prefixed byte stream.

    Feed arbitrary chunks; complete payloads come back in order.  An
    oversized length prefix raises :class:`WireValidationError`
    immediately — before buffering the body — so a hostile peer cannot
    drive allocation with a forged header.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        payloads: List[bytes] = []
        while True:
            if len(self._buffer) < 4:
                return payloads
            (length,) = struct.unpack_from(">I", self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireValidationError(
                    f"frame of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte bound"
                )
            if len(self._buffer) < 4 + length:
                return payloads
            payloads.append(bytes(self._buffer[4:4 + length]))
            del self._buffer[:4 + length]

    @property
    def buffered(self) -> int:
        """Bytes awaiting a complete frame (0 when drained)."""
        return len(self._buffer)
