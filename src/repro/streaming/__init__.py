"""Live-streaming application layer: quality ladder and playback metrics."""

from __future__ import annotations

from repro.streaming.player import PlaybackReport, evaluate_playback
from repro.streaming.video import (
    LINK_CAPACITIES_KBPS,
    QUALITY_LADDER,
    VideoQuality,
    max_quality_under,
    quality_by_name,
)

__all__ = [
    "LINK_CAPACITIES_KBPS",
    "PlaybackReport",
    "QUALITY_LADDER",
    "VideoQuality",
    "evaluate_playback",
    "max_quality_under",
    "quality_by_name",
]
