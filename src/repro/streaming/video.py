"""Video quality ladder used throughout the paper's evaluation.

Table I fixes the payload rate of each quality level; Table II asks, for
each network link capacity, which quality each protocol can sustain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "VideoQuality",
    "QUALITY_LADDER",
    "quality_by_name",
    "max_quality_under",
    "LINK_CAPACITIES_KBPS",
]


@dataclass(frozen=True)
class VideoQuality:
    """One rung of the quality ladder.

    Attributes:
        name: label used in the paper (e.g. ``480p``).
        payload_kbps: stream bit rate from Table I.
    """

    name: str
    payload_kbps: float

    def updates_per_second(self, update_bytes: int = 938) -> float:
        """Chunks per second at this rate (938 B chunks by default)."""
        return self.payload_kbps * 1000.0 / (update_bytes * 8.0)


#: Table I, rows 1-2: qualities and payload sizes.
QUALITY_LADDER: List[VideoQuality] = [
    VideoQuality("144p", 80.0),
    VideoQuality("240p", 300.0),
    VideoQuality("360p", 750.0),
    VideoQuality("480p", 1000.0),
    VideoQuality("720p", 2500.0),
    VideoQuality("1080p", 4500.0),
]

#: Table II columns: link technologies and their capacity in Kbps.
LINK_CAPACITIES_KBPS: Dict[str, float] = {
    "ADSL Lite (1.5Mbps)": 1_500.0,
    "Ethernet (10Mbps)": 10_000.0,
    "Fast Ethernet (100Mbps)": 100_000.0,
    "Gigabit Ethernet (1Gbps)": 1_000_000.0,
    "10 Gigabit Ethernet (10Gbps)": 10_000_000.0,
}


def quality_by_name(name: str) -> VideoQuality:
    for quality in QUALITY_LADDER:
        if quality.name == name:
            return quality
    raise KeyError(f"unknown video quality {name!r}")


def max_quality_under(
    capacity_kbps: float, cost_of_quality
) -> Optional[VideoQuality]:
    """Highest quality whose protocol cost fits under a link capacity.

    Args:
        capacity_kbps: link capacity.
        cost_of_quality: callable mapping a :class:`VideoQuality` to the
            per-node bandwidth the protocol consumes at that quality.

    Returns:
        The best sustainable quality, or None (the paper's ∅ cells for
        RAC) when even the lowest rung does not fit.
    """
    best: Optional[VideoQuality] = None
    for quality in QUALITY_LADDER:
        if cost_of_quality(quality) <= capacity_kbps:
            best = quality
    return best
