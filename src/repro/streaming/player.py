"""Playback model: did the stream arrive in time to be watched?

The paper's qualitative claim is that PAG "is compatible with the
visualisation of live video content on commodity Internet connections":
chunks are released 10 seconds before their playout deadline, and a
viewer misses a chunk if it has not arrived by then.  This module turns
a node's reception log into the standard live-streaming metrics:
continuity (fraction of chunks on time) and average lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.gossip.updates import Update, UpdateStore

__all__ = ["PlaybackReport", "evaluate_playback"]


@dataclass(frozen=True)
class PlaybackReport:
    """Streaming quality as experienced by one node.

    Attributes:
        chunks_due: chunks whose playout deadline has passed.
        chunks_on_time: of those, how many arrived before the deadline.
        chunks_late: arrived after the deadline (unplayable, but counted
            separately from never-arrived for diagnosis).
        chunks_missing: never arrived at all.
        mean_lag_rounds: average rounds between release and arrival for
            chunks that did arrive.
    """

    chunks_due: int
    chunks_on_time: int
    chunks_late: int
    chunks_missing: int
    mean_lag_rounds: float

    @property
    def continuity(self) -> float:
        """Fraction of due chunks played on time (1.0 = perfect stream)."""
        if self.chunks_due == 0:
            return 1.0
        return self.chunks_on_time / self.chunks_due

    def is_watchable(self, threshold: float = 0.99) -> bool:
        """A stream is considered watchable above a continuity threshold."""
        return self.continuity >= threshold


def evaluate_playback(
    released: Iterable[Update],
    store: UpdateStore,
    current_round: int,
    warmup_rounds: int = 0,
) -> PlaybackReport:
    """Compare a node's receptions against the source's release schedule.

    Args:
        released: all updates the source released.
        store: the node's reception store.
        current_round: evaluation time; only chunks whose deadline passed
            are judged.
        warmup_rounds: ignore chunks released before this round (a node
            that joined at round 0 still needs a few rounds of ramp-up).
    """
    due = 0
    on_time = 0
    late = 0
    missing = 0
    lags: List[int] = []
    for update in released:
        if update.round_created < warmup_rounds:
            continue
        if update.expiry_round >= current_round:
            continue  # deadline not reached yet
        due += 1
        arrival: Optional[int] = store.arrival_round(update.uid)
        if arrival is None:
            missing += 1
            continue
        lags.append(arrival - update.round_created)
        if arrival <= update.expiry_round:
            on_time += 1
        else:
            late += 1
    mean_lag = sum(lags) / len(lags) if lags else 0.0
    return PlaybackReport(
        chunks_due=due,
        chunks_on_time=on_time,
        chunks_late=late,
        chunks_missing=missing,
        mean_lag_rounds=mean_lag,
    )
